"""Tests for the deterministic-order baseline."""

from __future__ import annotations

from repro.baselines.sequential import SequentialOrderBuilder
from repro.util.rng import RngStream


class TestSequential:
    def test_ignores_rng(self, small_problem):
        a = SequentialOrderBuilder().build(small_problem, RngStream(1))
        b = SequentialOrderBuilder().build(small_problem, RngStream(999))
        assert a.satisfied == b.satisfied
        assert a.rejected == b.rejected

    def test_single_phase(self, small_problem, rng):
        phases = list(SequentialOrderBuilder().phases(small_problem, rng))
        assert len(phases) == 1
        assert phases[0][1] == small_problem.all_requests()

    def test_verify(self, small_problem, rng):
        SequentialOrderBuilder().build(small_problem, rng).verify()
