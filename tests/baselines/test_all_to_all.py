"""Tests for the all-to-all unicast baseline."""

from __future__ import annotations

import pytest

from repro.baselines.all_to_all import DirectUnicastBuilder, all_to_all_load
from repro.core.metrics import rejection_ratio
from repro.core.problem import ForestProblem
from repro.core.randomized import RandomJoinBuilder
from repro.session.streams import StreamId
from repro.util.rng import RngStream
from tests.conftest import complete_cost


def star_problem(outbound_source: int) -> ForestProblem:
    """One popular stream, four subscribers, limited source out-degree."""
    return ForestProblem.from_tables(
        cost=complete_cost(5),
        inbound={i: 10 for i in range(5)},
        outbound={0: outbound_source, 1: 10, 2: 10, 3: 10, 4: 10},
        group_members={StreamId(0, 0): {1, 2, 3, 4}},
        latency_bound_ms=10.0,
    )


class TestDirectUnicast:
    def test_all_edges_from_source(self, rng):
        result = DirectUnicastBuilder().build(star_problem(10), rng)
        for _, parent, _ in result.forest.edges():
            assert parent == 0

    def test_source_saturation_rejects_excess(self, rng):
        result = DirectUnicastBuilder().build(star_problem(2), rng)
        assert len(result.satisfied) == 2
        assert len(result.rejected) == 2

    def test_multicast_beats_unicast_on_popular_stream(self, rng):
        problem = star_problem(2)
        unicast = DirectUnicastBuilder().build(problem, rng.spawn("u"))
        overlay = RandomJoinBuilder().build(problem, rng.spawn("o"))
        # The overlay relays through satisfied subscribers and serves all.
        assert rejection_ratio(overlay) < rejection_ratio(unicast)
        assert not overlay.rejected

    def test_latency_bound_respected(self, rng):
        problem = star_problem(10)
        problem.cost[0][4] = 99.0
        result = DirectUnicastBuilder().build(problem, rng)
        rejected = {r.subscriber for r, _ in result.rejected}
        assert 4 in rejected

    def test_verify(self, small_problem, rng):
        DirectUnicastBuilder().build(small_problem, rng).verify()


class TestAllToAllLoad:
    def test_paper_back_of_envelope(self):
        # Sec. 1: ten streams per site, two sites -> each sends 10 streams.
        load = all_to_all_load(n_sites=2, streams_per_site=10)
        assert load["out_streams"] == 10

    def test_scales_with_sites(self):
        load3 = all_to_all_load(n_sites=3, streams_per_site=20)
        load10 = all_to_all_load(n_sites=10, streams_per_site=20)
        assert load10["out_streams"] > load3["out_streams"]
        assert load3["out_streams"] == 40
        assert load10["out_mbps"] == pytest.approx(180 * 7.5)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            all_to_all_load(1, 10)
        with pytest.raises(ValueError):
            all_to_all_load(3, 0)
