"""Unit tests for the CLI argument parser (integration runs elsewhere)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser


class TestParser:
    def test_fig8_defaults(self):
        args = build_parser().parse_args(["fig8"])
        assert args.command == "fig8"
        assert args.workload == "random"
        assert args.nodes == "uniform"
        assert args.samples == 200
        assert args.seed == 42
        assert not args.no_plot

    def test_fig8_options(self):
        args = build_parser().parse_args(
            ["fig8", "--workload", "zipf", "--nodes", "heterogeneous",
             "--samples", "10", "--seed", "3", "--no-plot"]
        )
        assert args.workload == "zipf"
        assert args.nodes == "heterogeneous"
        assert args.samples == 10
        assert args.seed == 3
        assert args.no_plot

    def test_invalid_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig8", "--workload", "gaussian"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize("command", ["fig9", "fig10", "fig11", "all"])
    def test_other_figures_parse(self, command):
        args = build_parser().parse_args([command, "--samples", "5"])
        assert args.command == command
        assert args.samples == 5

    def test_demo_options(self):
        args = build_parser().parse_args(["demo", "--sites", "7", "--seed", "9"])
        assert args.sites == 7
        assert args.seed == 9

    def test_backbone_option(self):
        args = build_parser().parse_args(["fig9", "--backbone", "abilene"])
        assert args.backbone == "abilene"

    def test_audit_flag_on_figures(self):
        args = build_parser().parse_args(["fig8", "--audit"])
        assert args.audit
        args = build_parser().parse_args(["fig8"])
        assert not args.audit


class TestScenarioParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["scenario", "run", "flash-crowd"])
        assert args.command == "scenario"
        assert args.scenario_command == "run"
        assert args.name == "flash-crowd"
        assert args.sites == 8
        assert args.seed == 7
        assert args.audit
        assert not args.strict
        assert args.algorithm is None

    def test_run_options(self):
        args = build_parser().parse_args(
            ["scenario", "run", "mixed-churn", "--sites", "12", "--seed", "3",
             "--algorithm", "co-rj", "--audit", "--strict"]
        )
        assert args.sites == 12
        assert args.seed == 3
        assert args.algorithm == "co-rj"
        assert args.audit
        assert args.strict

    def test_no_audit(self):
        args = build_parser().parse_args(
            ["scenario", "run", "fov-thrash", "--no-audit"]
        )
        assert not args.audit

    def test_audit_and_no_audit_conflict(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["scenario", "run", "fov-thrash", "--audit", "--no-audit"]
            )

    def test_list(self):
        args = build_parser().parse_args(["scenario", "list"])
        assert args.scenario_command == "list"

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_rebuild_policy_default_none(self):
        args = build_parser().parse_args(["scenario", "run", "mass-leave"])
        assert args.rebuild_policy is None

    def test_rebuild_policy_choices(self):
        args = build_parser().parse_args(
            ["scenario", "run", "mass-leave", "--rebuild-policy", "incremental"]
        )
        assert args.rebuild_policy == "incremental"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["scenario", "run", "mass-leave", "--rebuild-policy", "never"]
            )

    def test_async_control_flags(self):
        args = build_parser().parse_args(
            ["scenario", "run", "flash-crowd", "--async-control",
             "--control-delay-ms", "50", "--debounce-ms", "15"]
        )
        assert args.async_control
        assert args.control_delay_ms == 50.0
        assert args.debounce_ms == 15.0

    def test_async_control_defaults_off(self):
        args = build_parser().parse_args(["scenario", "run", "flash-crowd"])
        assert not args.async_control
        assert args.control_delay_ms is None
        assert args.debounce_ms is None

    def test_chaos_flags(self):
        args = build_parser().parse_args(
            ["scenario", "run", "flash-crowd", "--loss-rate", "0.2",
             "--jitter-ms", "8", "--duplicate-rate", "0.05",
             "--partition", "0:600:1100", "--heartbeat-ms", "40",
             "--miss-threshold", "3", "--retransmit-timeout-ms", "60",
             "--max-unrecovered", "0"]
        )
        assert args.loss_rate == 0.2
        assert args.jitter_ms == 8.0
        assert args.duplicate_rate == 0.05
        assert args.partition == ["0:600:1100"]
        assert args.heartbeat_ms == 40.0
        assert args.miss_threshold == 3
        assert args.retransmit_timeout_ms == 60.0
        assert args.max_unrecovered == 0

    def test_chaos_flags_default_none(self):
        args = build_parser().parse_args(["scenario", "run", "flash-crowd"])
        assert args.loss_rate is None
        assert args.heartbeat_ms is None
        assert args.retransmit_timeout_ms is None
        assert args.partition is None
        assert args.max_unrecovered is None

    def test_partition_format_rejected(self):
        from repro.cli import _parse_partition

        with pytest.raises(SystemExit):
            _parse_partition("0:600")
        with pytest.raises(SystemExit):
            _parse_partition("a:b:c")


class TestConvergenceParser:
    def test_defaults(self):
        args = build_parser().parse_args(["convergence"])
        assert args.command == "convergence"
        assert args.scenario == "flash-crowd"
        assert args.delays == "0,20,50,100"
        assert args.sites == 8
        assert args.debounce_ms == 10.0
        assert not args.audit

    def test_options(self):
        args = build_parser().parse_args(
            ["convergence", "--scenario", "mixed-churn", "--delays", "0,80",
             "--sites", "12", "--debounce-ms", "25", "--audit", "--no-plot"]
        )
        assert args.scenario == "mixed-churn"
        assert args.delays == "0,80"
        assert args.sites == 12
        assert args.debounce_ms == 25.0
        assert args.audit
        assert args.no_plot


class TestDisruptionParser:
    def test_defaults(self):
        args = build_parser().parse_args(["disruption"])
        assert args.command == "disruption"
        assert args.scenario == "mixed-churn"
        assert args.sizes == "8,16,32"
        assert args.seed == 7
        assert not args.audit

    def test_options(self):
        args = build_parser().parse_args(
            ["disruption", "--scenario", "mass-leave", "--sizes", "4,6",
             "--seed", "3", "--audit", "--no-plot"]
        )
        assert args.scenario == "mass-leave"
        assert args.sizes == "4,6"
        assert args.audit and args.no_plot


class TestPerfCompareParser:
    def test_ratchet_defaults(self):
        args = build_parser().parse_args(["perf", "compare", "a.json", "b.json"])
        assert not args.ratchet
        assert args.threshold == 2.0

    def test_ratchet_options(self):
        args = build_parser().parse_args(
            ["perf", "compare", "a.json", "b.json", "--ratchet",
             "--threshold", "1.5"]
        )
        assert args.ratchet
        assert args.threshold == 1.5


class TestScenarioCommands:
    def test_list_prints_all(self, capsys):
        from repro.cli import main
        from repro.scenarios import scenario_names

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_run_small_scenario_clean(self, capsys):
        from repro.cli import main

        code = main(
            ["scenario", "run", "flash-crowd", "--sites", "4", "--seed", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 violations" in out
        assert "digest" in out

    def test_run_with_rebuild_policy(self, capsys):
        from repro.cli import main

        code = main(
            ["scenario", "run", "mass-leave", "--sites", "4", "--seed", "2",
             "--rebuild-policy", "incremental"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "overlay maintenance [incremental]" in out
        assert "0 violations" in out


class TestChaosCommands:
    def test_list_prints_chaos_family(self, capsys):
        from repro.cli import main
        from repro.scenarios import chaos_scenario_names

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in chaos_scenario_names():
            assert name in out

    def test_run_chaos_scenario_gated(self, capsys):
        from repro.cli import main

        code = main(
            ["scenario", "run", "lossy-flash-crowd", "--sites", "6",
             "--seed", "2", "--max-unrecovered", "0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "chaos:" in out
        assert "0 violations" in out

    def test_unrecovered_gate_fails_loudly(self, capsys):
        from repro.cli import main

        # An impossible bound: any run with at least one detection
        # cannot satisfy max-unrecovered below zero.
        code = main(
            ["scenario", "run", "flash-crowd", "--sites", "4", "--seed", "2",
             "--async-control", "--max-unrecovered", "-1"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out

    def test_data_chaos_flags_run_the_nack_plane(self, capsys):
        from repro.cli import main

        code = main(
            ["scenario", "run", "flash-crowd", "--sites", "5", "--seed", "3",
             "--data-loss-rate", "0.2", "--data-jitter-ms", "5",
             "--data-nack", "--data-max-repair-attempts", "30",
             "--data-repair-deadline-factor", "20"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "data chaos:" in out
        assert "0 violations" in out
        # Crucially the data knobs did NOT drag in the async control
        # plane (no control chaos, no convergence line).
        assert "async control" not in out

    def test_unrecovered_frames_gate_fails_loudly(self, capsys):
        from repro.cli import main

        # Same impossible-bound trick for the data-plane gate.
        code = main(
            ["scenario", "run", "flash-crowd", "--sites", "4", "--seed", "2",
             "--max-unrecovered-frames", "-1"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out
        assert "unrecovered frame" in out


class TestDisruptionCommand:
    def test_sweep_prints_policy_series(self, capsys):
        from repro.cli import main

        code = main(
            ["disruption", "--scenario", "mass-leave", "--sizes", "4,5",
             "--seed", "3", "--no-plot"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "always" in out
        assert "incremental" in out
        assert "hybrid" in out
