"""Unit tests for the CLI argument parser (integration runs elsewhere)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser


class TestParser:
    def test_fig8_defaults(self):
        args = build_parser().parse_args(["fig8"])
        assert args.command == "fig8"
        assert args.workload == "random"
        assert args.nodes == "uniform"
        assert args.samples == 200
        assert args.seed == 42
        assert not args.no_plot

    def test_fig8_options(self):
        args = build_parser().parse_args(
            ["fig8", "--workload", "zipf", "--nodes", "heterogeneous",
             "--samples", "10", "--seed", "3", "--no-plot"]
        )
        assert args.workload == "zipf"
        assert args.nodes == "heterogeneous"
        assert args.samples == 10
        assert args.seed == 3
        assert args.no_plot

    def test_invalid_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig8", "--workload", "gaussian"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize("command", ["fig9", "fig10", "fig11", "all"])
    def test_other_figures_parse(self, command):
        args = build_parser().parse_args([command, "--samples", "5"])
        assert args.command == command
        assert args.samples == 5

    def test_demo_options(self):
        args = build_parser().parse_args(["demo", "--sites", "7", "--seed", "9"])
        assert args.sites == 7
        assert args.seed == 9

    def test_backbone_option(self):
        args = build_parser().parse_args(["fig9", "--backbone", "abilene"])
        assert args.backbone == "abilene"
