"""Tests for multicast trees and the overlay forest."""

from __future__ import annotations

import pytest

from repro.errors import OverlayError
from repro.core.forest import MulticastTree, OverlayForest
from repro.core.model import RejectionReason, SubscriptionRequest
from repro.session.streams import StreamId


def chain_tree() -> MulticastTree:
    """source 0 -> 1 -> 2, plus leaf 3 under the source."""
    tree = MulticastTree(StreamId(0, 0))
    tree.attach(0, 1, 2.0)
    tree.attach(1, 2, 3.0)
    tree.attach(0, 3, 1.0)
    return tree


class TestMulticastTree:
    def test_initial_state(self):
        tree = MulticastTree(StreamId(4, 2))
        assert tree.source == 4
        assert 4 in tree
        assert tree.members() == [4]
        assert not tree.disseminated
        assert tree.cost_from_source(4) == 0.0

    def test_attach_updates_costs(self):
        tree = chain_tree()
        assert tree.cost_from_source(1) == pytest.approx(2.0)
        assert tree.cost_from_source(2) == pytest.approx(5.0)
        assert tree.cost_from_source(3) == pytest.approx(1.0)

    def test_attach_marks_dissemination(self):
        tree = MulticastTree(StreamId(0, 0))
        tree.attach(0, 1, 1.0)
        assert tree.disseminated

    def test_attach_to_nonmember_rejected(self):
        tree = MulticastTree(StreamId(0, 0))
        with pytest.raises(OverlayError):
            tree.attach(7, 1, 1.0)

    def test_attach_existing_member_rejected(self):
        tree = chain_tree()
        with pytest.raises(OverlayError):
            tree.attach(0, 2, 1.0)

    def test_negative_edge_cost_rejected(self):
        tree = MulticastTree(StreamId(0, 0))
        with pytest.raises(OverlayError):
            tree.attach(0, 1, -1.0)

    def test_parent_children_leaf(self):
        tree = chain_tree()
        assert tree.parent(2) == 1
        assert tree.parent(0) is None
        assert tree.children(0) == [1, 3]
        assert tree.is_leaf(2) and tree.is_leaf(3)
        assert not tree.is_leaf(1)
        assert not tree.is_leaf(99)

    def test_depth(self):
        tree = chain_tree()
        assert tree.depth(0) == 0
        assert tree.depth(2) == 2
        with pytest.raises(OverlayError):
            tree.depth(42)

    def test_receivers_excludes_source(self):
        assert set(chain_tree().receivers()) == {1, 2, 3}

    def test_edges(self):
        assert set(chain_tree().edges()) == {(0, 1), (1, 2), (0, 3)}

    def test_cost_of_nonmember_raises(self):
        with pytest.raises(OverlayError):
            chain_tree().cost_from_source(9)

    def test_validate_ok(self):
        chain_tree().validate()


class TestDetachLeaf:
    def test_detach_returns_parent(self):
        tree = chain_tree()
        assert tree.detach_leaf(2) == 1
        assert 2 not in tree
        assert tree.is_leaf(1)

    def test_detach_source_rejected(self):
        with pytest.raises(OverlayError):
            chain_tree().detach_leaf(0)

    def test_detach_internal_rejected(self):
        with pytest.raises(OverlayError):
            chain_tree().detach_leaf(1)

    def test_detach_nonmember_rejected(self):
        with pytest.raises(OverlayError):
            chain_tree().detach_leaf(9)

    def test_dissemination_recomputed(self):
        tree = MulticastTree(StreamId(0, 0))
        tree.attach(0, 1, 1.0)
        tree.detach_leaf(1)
        assert not tree.disseminated
        assert tree.members() == [0]

    def test_dissemination_kept_with_other_children(self):
        tree = chain_tree()
        tree.detach_leaf(3)
        assert tree.disseminated


class TestOverlayForest:
    def test_tree_created_lazily_once(self):
        forest = OverlayForest()
        a = forest.tree(StreamId(0, 0))
        b = forest.tree(StreamId(0, 0))
        assert a is b
        assert len(forest.trees) == 1

    def test_degrees_across_trees(self):
        forest = OverlayForest()
        t1 = forest.tree(StreamId(0, 0))
        t1.attach(0, 1, 1.0)
        t2 = forest.tree(StreamId(2, 0))
        t2.attach(2, 0, 1.0)
        t2.attach(0, 1, 1.0)
        assert forest.out_degree(0) == 2
        assert forest.in_degree(1) == 2
        assert forest.in_degree(0) == 1

    def test_relay_degree_counts_foreign_streams(self):
        forest = OverlayForest()
        t2 = forest.tree(StreamId(2, 0))
        t2.attach(2, 0, 1.0)
        t2.attach(0, 1, 1.0)  # node 0 relays site 2's stream
        t1 = forest.tree(StreamId(0, 0))
        t1.attach(0, 3, 1.0)  # node 0 sends its own stream
        assert forest.relay_degree(0) == 1

    def test_str_counts(self):
        forest = OverlayForest()
        forest.satisfied.append(SubscriptionRequest(1, StreamId(0, 0)))
        forest.rejected.append(
            (SubscriptionRequest(2, StreamId(0, 0)),
             RejectionReason.TREE_SATURATED)
        )
        text = str(forest)
        assert "satisfied=1" in text and "rejected=1" in text

    def test_validate_delegates(self):
        forest = OverlayForest()
        forest.tree(StreamId(0, 0)).attach(0, 1, 1.0)
        forest.validate()
