"""Tests for the tree-ordered builders (LTF, STF, MCTF)."""

from __future__ import annotations

import pytest

from repro.core.model import MulticastGroup
from repro.core.problem import ForestProblem
from repro.core.tree_order import (
    LargestTreeFirstBuilder,
    MinCapacityTreeFirstBuilder,
    SmallestTreeFirstBuilder,
)
from repro.session.streams import StreamId
from tests.conftest import complete_cost


def sized_problem() -> ForestProblem:
    """Groups of sizes 3, 1, 2 from different sources."""
    return ForestProblem.from_tables(
        cost=complete_cost(4),
        inbound={i: 10 for i in range(4)},
        outbound={i: 10 for i in range(4)},
        group_members={
            StreamId(0, 0): {1, 2, 3},
            StreamId(1, 0): {0},
            StreamId(2, 0): {0, 1},
        },
        latency_bound_ms=10.0,
    )


class TestOrdering:
    def test_ltf_descending_sizes(self):
        sizes = [
            g.size
            for g in LargestTreeFirstBuilder().order_groups(sized_problem())
        ]
        assert sizes == [3, 2, 1]

    def test_stf_ascending_sizes(self):
        sizes = [
            g.size
            for g in SmallestTreeFirstBuilder().order_groups(sized_problem())
        ]
        assert sizes == [1, 2, 3]

    def test_ties_break_by_stream_id(self):
        problem = ForestProblem.from_tables(
            cost=complete_cost(3),
            inbound={i: 5 for i in range(3)},
            outbound={i: 5 for i in range(3)},
            group_members={
                StreamId(1, 1): {0},
                StreamId(0, 0): {1},
                StreamId(0, 1): {2},
            },
            latency_bound_ms=5.0,
        )
        streams = [
            g.stream for g in LargestTreeFirstBuilder().order_groups(problem)
        ]
        assert streams == [StreamId(0, 0), StreamId(0, 1), StreamId(1, 1)]


class TestMctf:
    def test_capacity_aggregates_members(self):
        problem = sized_problem()
        builder = MinCapacityTreeFirstBuilder()
        group = MulticastGroup(StreamId(0, 0), frozenset({1, 2, 3}))
        # Nodes 1, 2 each send one subscribed stream (m=1), node 3 none.
        expected = (10 - 1) + (10 - 1) + (10 - 0)
        assert builder.group_capacity(problem, group) == expected

    def test_include_source_adds_source_capacity(self):
        problem = sized_problem()
        group = MulticastGroup(StreamId(1, 0), frozenset({0}))
        without = MinCapacityTreeFirstBuilder().group_capacity(problem, group)
        with_src = MinCapacityTreeFirstBuilder(include_source=True).group_capacity(
            problem, group
        )
        assert with_src == without + (10 - 1)  # node 1 sends one stream

    def test_orders_ascending_capacity(self):
        problem = sized_problem()
        builder = MinCapacityTreeFirstBuilder()
        capacities = [
            builder.group_capacity(problem, g)
            for g in builder.order_groups(problem)
        ]
        assert capacities == sorted(capacities)


class TestBuildBehaviour:
    @pytest.mark.parametrize(
        "builder_cls",
        [LargestTreeFirstBuilder, SmallestTreeFirstBuilder,
         MinCapacityTreeFirstBuilder],
    )
    def test_processes_every_request_once(self, builder_cls, rng):
        problem = sized_problem()
        result = builder_cls().build(problem, rng)
        result.verify()
        assert result.total_requests == problem.total_requests()

    @pytest.mark.parametrize(
        "builder_cls",
        [LargestTreeFirstBuilder, SmallestTreeFirstBuilder,
         MinCapacityTreeFirstBuilder],
    )
    def test_ample_capacity_satisfies_everything(self, builder_cls, rng):
        result = builder_cls().build(sized_problem(), rng)
        assert not result.rejected

    def test_phases_open_one_group_each(self, rng):
        problem = sized_problem()
        phases = list(LargestTreeFirstBuilder().phases(problem, rng))
        assert len(phases) == problem.n_groups
        assert all(len(groups) == 1 for groups, _ in phases)
