"""Tests for the algorithm registry."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.core.correlation import CorrelatedRandomJoinBuilder
from repro.core.granularity import GranularityBuilder
from repro.core.node_join import ParentPolicy
from repro.core.randomized import RandomJoinBuilder
from repro.core.registry import available_algorithms, make_builder


class TestRegistry:
    def test_all_paper_algorithms_present(self):
        names = available_algorithms()
        for expected in ("ltf", "stf", "mctf", "rj", "co-rj", "gran-ltf"):
            assert expected in names

    def test_make_builder_types(self):
        assert isinstance(make_builder("rj"), RandomJoinBuilder)
        assert isinstance(make_builder("co-rj"), CorrelatedRandomJoinBuilder)
        assert isinstance(make_builder("gran-ltf"), GranularityBuilder)

    def test_case_insensitive(self):
        assert make_builder("LTF").name == "ltf"

    def test_kwargs_forwarded(self):
        builder = make_builder("gran-ltf", granularity=7)
        assert builder.granularity == 7

    def test_parent_policy_forwarded(self):
        builder = make_builder("rj", parent_policy=ParentPolicy.MIN_COST)
        assert builder.parent_policy is ParentPolicy.MIN_COST

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            make_builder("quantum-join")

    def test_builders_have_matching_names(self):
        for name in ("ltf", "stf", "mctf", "rj", "co-rj"):
            assert make_builder(name).name == name
