"""The array-backend contract: resolution rules and bit-exact kernels.

The numpy backend is an accelerator, never a semantics change: every
kernel must reproduce the pure-python reference bit for bit.  These
tests pin the resolution precedence (argument > env var > auto) and the
kernel-level equivalences; the scenario digest matrix in
``tests/scenarios/test_backend_digests.py`` pins the end-to-end builds.
"""

from __future__ import annotations

import pytest

import repro.core.backend as backend_mod
from repro.core.backend import (
    BACKEND_ENV_VAR,
    ArrayBackend,
    NumpyBackend,
    check_backend_name,
    numpy_available,
    resolve_backend,
)
from repro.core.forest import OverlayForest
from repro.core.node_join import ParentPolicy, scan_parent_scalar
from repro.core.problem import ForestProblem
from repro.core.registry import make_builder
from repro.core.state import BuilderState
from repro.errors import ConfigurationError
from repro.session.capacity import UniformCapacityModel
from repro.session.session import SessionConfig, build_session
from repro.sim.dataplane import FastDataPlane
from repro.topology.backbone import load_backbone
from repro.util.rng import RngStream
from repro.workload.coverage import CoverageWorkloadModel

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not importable"
)


def _problem(backend: str, n_sites: int = 32, seed: int = 42):
    """A deterministic problem on the requested backend."""
    session = build_session(
        load_backbone(f"synthetic-{n_sites}"),
        UniformCapacityModel(streams_per_site=4),
        RngStream(seed, label=f"bk/N{n_sites}").spawn("session"),
        SessionConfig(n_sites=n_sites, displays_per_site=2, backend=backend),
    )
    workload = CoverageWorkloadModel(
        mean_subscribers=6.0, guarantee_coverage=False
    ).generate(session, RngStream(seed, label=f"bk/N{n_sites}").spawn("workload"))
    return session, ForestProblem.from_workload(session, workload, 120.0)


def _forest_shape(result) -> dict:
    """Parent map + outcome lists, for exact cross-backend comparison."""
    return {
        "trees": {
            str(stream): {
                node: tree.parent(node) for node in tree.path_costs()
            }
            for stream, tree in result.forest.trees.items()
        },
        "satisfied": [str(r) for r in result.satisfied],
        "rejected": [
            (str(r), reason.value) for r, reason in result.forest.rejected
        ],
    }


class TestResolution:
    def test_python_is_singleton(self):
        assert resolve_backend("python") is resolve_backend("python")
        assert resolve_backend("python").name == "python"

    def test_instance_passes_through(self):
        instance = resolve_backend("python")
        assert resolve_backend(instance) is instance

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("fortran")
        with pytest.raises(ConfigurationError):
            check_backend_name("fortran")

    def test_auto_without_env(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        resolved = resolve_backend(None)
        expected = "numpy" if numpy_available() else "python"
        assert resolved.name == expected
        assert resolve_backend("auto").name == expected

    def test_env_var_steers_auto(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert resolve_backend(None).name == "python"
        assert resolve_backend("auto").name == "python"

    @needs_numpy
    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert resolve_backend("numpy").name == "numpy"

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fortran")
        with pytest.raises(ConfigurationError):
            resolve_backend(None)

    def test_numpy_requested_but_missing(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_np", None)
        monkeypatch.setattr(backend_mod, "_np_checked", True)
        with pytest.raises(ConfigurationError):
            resolve_backend("numpy")

    def test_config_knobs_validate(self):
        with pytest.raises(ConfigurationError):
            SessionConfig(n_sites=4, backend="fortran")


@needs_numpy
class TestKernelEquivalence:
    """Each numpy kernel against the pure-python reference, bit for bit."""

    def setup_method(self):
        self.py = ArrayBackend()
        self.np_b = resolve_backend("numpy")
        assert isinstance(self.np_b, NumpyBackend)

    def test_rfc_bulk(self):
        rng = RngStream(3, label="rfc")
        limits = [rng.randint(0, 30) for _ in range(200)]
        dout = [rng.randint(0, 10) for _ in range(200)]
        m_hat = [rng.randint(0, 5) for _ in range(200)]
        assert list(self.np_b.rfc_bulk(limits, dout, m_hat)) == self.py.rfc_bulk(
            limits, dout, m_hat
        )

    def test_dataplane_kernels(self):
        rng = RngStream(5, label="plane")
        values = [rng.random() * 100.0 for _ in range(1000)]
        other = [rng.random() * 100.0 for _ in range(1000)]
        delta = 17.3
        py_shift = self.py.shift(values, delta)
        np_shift = self.np_b.shift(self.np_b.as_vector(values), delta)
        assert list(np_shift) == py_shift
        py_deltas = self.py.deltas(values, other)
        np_deltas = self.np_b.deltas(
            self.np_b.as_vector(values), self.np_b.as_vector(other)
        )
        assert list(np_deltas) == py_deltas
        # The sums must match the *sequential* left-to-right order, not
        # just be numerically close.
        assert self.np_b.seq_sum(self.np_b.as_vector(py_deltas)) == (
            self.py.seq_sum(py_deltas)
        )
        assert self.np_b.vec_max(self.np_b.as_vector(values)) == (
            self.py.vec_max(values)
        )

    @pytest.mark.parametrize("pairs", [7, 2048])
    def test_apply_count_deltas(self, pairs):
        # 7 stays on the scalar loop, 2048 crosses _count_patch_min.
        rng = RngStream(pairs, label="patch")
        a = [rng.randint(0, 9) for _ in range(300)]
        b = list(a)
        deltas = [
            (rng.randint(0, 299), rng.randint(-3, 3)) for _ in range(pairs)
        ]
        self.py.apply_count_deltas(a, deltas)
        self.np_b.apply_count_deltas(b, deltas)
        assert a == b


@needs_numpy
class TestParentScanEquivalence:
    """The vectorized parent scan against the scalar reference loop."""

    def test_all_policies_on_built_forest(self):
        _, problem = _problem("numpy")
        result = make_builder("rj").build(
            problem, RngStream(42, label="bk/N32").spawn("build")
        )
        backend = problem.array_backend
        compared = 0
        for tree in result.forest.trees.values():
            if len(tree) < 2:
                continue
            for subscriber in range(problem.n_nodes):
                if subscriber in tree:
                    continue
                for policy in ParentPolicy:
                    assert backend.parent_scan(
                        problem, result.state, tree, subscriber, policy
                    ) == scan_parent_scalar(
                        problem, result.state, tree, subscriber, policy
                    )
                    compared += 1
        assert compared > 100  # the sweep actually exercised the kernel

    def test_undisseminated_source_edge(self):
        _, problem = _problem("numpy")
        backend = problem.array_backend
        state = BuilderState(problem)
        stream = problem.groups[0].stream
        tree = OverlayForest().tree(stream)
        assert not tree.disseminated
        subscriber = next(
            i for i in range(problem.n_nodes) if i != stream.site
        )
        for policy in ParentPolicy:
            assert backend.parent_scan(
                problem, state, tree, subscriber, policy
            ) == scan_parent_scalar(problem, state, tree, subscriber, policy)
        # Saturate the source: both scans must now reject the join.
        state.dout[stream.site] = problem.outbound_limit(stream.site)
        for policy in ParentPolicy:
            assert (
                backend.parent_scan(problem, state, tree, subscriber, policy)
                is None
            )
            assert (
                scan_parent_scalar(problem, state, tree, subscriber, policy)
                is None
            )

    @pytest.mark.parametrize("algorithm", ["rj", "co-rj"])
    def test_forced_vector_build_identical(self, monkeypatch, algorithm):
        """Every join through the numpy kernel == the scalar build."""
        monkeypatch.setattr(NumpyBackend, "vector_scan_min", 1)
        shapes = []
        for backend in ("python", "numpy"):
            _, problem = _problem(backend)
            result = make_builder(algorithm).build(
                problem, RngStream(42, label="bk/N32").spawn("build")
            )
            shapes.append(_forest_shape(result))
        assert shapes[0] == shapes[1]


@needs_numpy
class TestDataPlaneEquivalence:
    # 8 s at 15 fps = 121 frames, past plane_vector_min=64 — the numpy
    # run below really exercises the ndarray kernels, not the list
    # fallback both backends share for short frame vectors.
    @pytest.mark.parametrize("duration_ms", [1000.0, 8000.0])
    def test_fast_plane_reports_identical(self, duration_ms):
        from repro.perf.sweep import reports_equal

        reports = []
        for backend in ("python", "numpy"):
            session, problem = _problem(backend, n_sites=16)
            result = make_builder("rj").build(
                problem, RngStream(42, label="bk/N16").spawn("build")
            )
            plane = FastDataPlane(
                session, result.forest, RngStream(42).spawn("dataplane")
            )
            reports.append(plane.run(duration_ms=duration_ms))
        assert reports_equal(reports[0], reports[1])

    def test_plane_kernel_gate(self):
        from repro.core.backend import resolve_backend

        np_backend = resolve_backend("numpy")
        assert np_backend.plane_kernels(16).name == "python"
        assert np_backend.plane_kernels(64).name == "numpy"
        py_backend = resolve_backend("python")
        assert py_backend.plane_kernels(10**6).name == "python"


class TestBulkDijkstraEquivalence:
    def test_scipy_rows_match_heapq_rows(self):
        pytest.importorskip("scipy")
        bulk = load_backbone("synthetic-128")
        reference = load_backbone("synthetic-128")
        # Instance attribute shadows the class gate: this copy can never
        # take the scipy path and stays on the pure-python Dijkstra.
        reference._BULK_SSSP_MIN_POPS = 10**9
        fast = bulk.dense_cost_matrix()
        slow = reference.dense_cost_matrix()
        assert fast.rows() == slow.rows()
