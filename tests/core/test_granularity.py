"""Tests for the Gran-LTF spectrum builder."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.core.granularity import GranularityBuilder
from repro.core.tree_order import LargestTreeFirstBuilder
from repro.util.rng import RngStream


class TestGranularity:
    def test_invalid_granularity(self):
        with pytest.raises(ConfigurationError):
            GranularityBuilder(granularity=0)

    def test_batches_of_g(self, small_problem, rng):
        g = 3
        phases = list(
            GranularityBuilder(granularity=g).phases(small_problem, rng)
        )
        sizes = [len(groups) for groups, _ in phases]
        assert all(size == g for size in sizes[:-1])
        assert 1 <= sizes[-1] <= g
        assert sum(sizes) == small_problem.n_groups

    def test_batches_sorted_by_descending_size(self, small_problem, rng):
        phases = list(
            GranularityBuilder(granularity=2).phases(small_problem, rng)
        )
        maxima = [max(g.size for g in groups) for groups, _ in phases]
        assert maxima == sorted(maxima, reverse=True)

    def test_granularity_clamped_to_forest(self, small_problem, rng):
        big = GranularityBuilder(granularity=10_000)
        phases = list(big.phases(small_problem, rng))
        assert len(phases) == 1

    def test_g1_group_order_matches_ltf(self, small_problem, rng):
        g1 = [
            groups[0].stream
            for groups, _ in GranularityBuilder(granularity=1).phases(
                small_problem, rng
            )
        ]
        ltf = [
            g.stream
            for g in LargestTreeFirstBuilder().order_groups(small_problem)
        ]
        assert g1 == ltf

    @pytest.mark.parametrize("g", [1, 2, 5, 100])
    def test_every_request_scheduled_once(self, small_problem, g):
        builder = GranularityBuilder(granularity=g)
        requests = [
            r
            for _, batch in builder.phases(small_problem, RngStream(3))
            for r in batch
        ]
        assert sorted(requests) == sorted(small_problem.all_requests())

    @pytest.mark.parametrize("g", [1, 3, 7])
    def test_build_verifies(self, small_problem, g, rng):
        GranularityBuilder(granularity=g).build(small_problem, rng).verify()
