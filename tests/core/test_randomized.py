"""Tests for the RJ builder."""

from __future__ import annotations

from repro.core.randomized import RandomJoinBuilder
from repro.util.rng import RngStream


class TestRandomJoin:
    def test_single_phase_with_all_groups(self, small_problem, rng):
        phases = list(RandomJoinBuilder().phases(small_problem, rng))
        assert len(phases) == 1
        groups, requests = phases[0]
        assert len(groups) == small_problem.n_groups
        assert len(requests) == small_problem.total_requests()

    def test_every_request_exactly_once(self, small_problem, rng):
        _, requests = next(iter(RandomJoinBuilder().phases(small_problem, rng)))
        assert sorted(requests) == sorted(small_problem.all_requests())

    def test_shuffle_depends_on_rng(self, small_problem):
        a = next(iter(RandomJoinBuilder().phases(small_problem, RngStream(1))))[1]
        b = next(iter(RandomJoinBuilder().phases(small_problem, RngStream(2))))[1]
        assert a != b  # overwhelmingly likely for 20+ requests

    def test_build_deterministic_given_seed(self, small_problem):
        r1 = RandomJoinBuilder().build(small_problem, RngStream(5))
        r2 = RandomJoinBuilder().build(small_problem, RngStream(5))
        assert r1.satisfied == r2.satisfied
        assert r1.rejected == r2.rejected

    def test_verify(self, small_problem, rng):
        RandomJoinBuilder().build(small_problem, rng).verify()

    def test_reservations_cover_whole_forest_in_global_mode(
        self, small_problem, rng
    ):
        builder = RandomJoinBuilder(reservation_mode="global")
        result = builder.build(small_problem, rng)
        result.verify()
