"""Tests for the ``BuildResult.u_hat`` cache and its invalidation."""

from __future__ import annotations

import pytest

from repro.core.correlation import CorrelatedRandomJoinBuilder
from repro.core.incremental import add_subscription
from repro.core.model import SubscriptionRequest
from repro.core.problem import ForestProblem
from repro.core.randomized import RandomJoinBuilder
from repro.session.streams import StreamId
from repro.util.rng import RngStream
from tests.conftest import complete_cost


def starved_problem() -> ForestProblem:
    """Three nodes, zero outbound at the source: everything gets rejected."""
    return ForestProblem.from_tables(
        cost=complete_cost(3, off_diagonal=1.0),
        inbound={0: 5, 1: 5, 2: 5},
        outbound={0: 0, 1: 5, 2: 5},
        group_members={StreamId(0, 0): {1, 2}},
        latency_bound_ms=10.0,
    )


class TestUHatCache:
    def test_u_hat_matches_matrix(self, rng):
        result = RandomJoinBuilder().build(starved_problem(), rng)
        assert result.u_hat(1, 0) == 1
        assert result.u_hat(2, 0) == 1
        assert result.u_hat(1, 2) == 0
        assert result.u_hat_matrix() == {1: {0: 1}, 2: {0: 1}}

    def test_matrix_is_cached(self, rng):
        result = RandomJoinBuilder().build(starved_problem(), rng)
        assert result.u_hat_matrix() is result.u_hat_matrix()

    def test_invalidate_recomputes(self, rng):
        result = RandomJoinBuilder().build(starved_problem(), rng)
        first = result.u_hat_matrix()
        result.invalidate_caches()
        second = result.u_hat_matrix()
        assert first is not second
        assert first == second

    def test_incremental_join_invalidates(self, rng):
        """A post-build join must refresh û, not serve the stale cache."""
        result = RandomJoinBuilder().build(starved_problem(), rng)
        assert result.u_hat(1, 0) == 1  # cache primed while rejected
        # Lift the source's outbound bound, then re-join subscriber 1.
        result.problem.outbound[0] = 5
        outcome = add_subscription(
            result, SubscriptionRequest(subscriber=1, stream=StreamId(0, 0))
        )
        assert outcome.accepted
        assert result.u_hat(1, 0) == 0

    def test_corj_repair_invalidates(self):
        """CO-RJ's repair sweeps mutate the rejected list post-build."""
        rng = RngStream(77, label="corj-cache")
        from repro.session.capacity import UniformCapacityModel
        from repro.session.session import SessionConfig, build_session
        from repro.topology.backbone import load_backbone
        from repro.workload.coverage import CoverageWorkloadModel

        session = build_session(
            load_backbone("abilene"),
            UniformCapacityModel(base=4, jitter=1, streams_per_site=4),
            rng.spawn("session"),
            SessionConfig(n_sites=6),
        )
        workload = CoverageWorkloadModel(interest=0.6).generate(
            session, rng.spawn("workload")
        )
        problem = ForestProblem.from_workload(session, workload, 120.0)
        result = CorrelatedRandomJoinBuilder().build(problem, rng.spawn("build"))
        # The cache (whenever it was primed) must agree with a fresh scan.
        fresh: dict[int, dict[int, int]] = {}
        for request, _ in result.rejected:
            row = fresh.setdefault(request.subscriber, {})
            row[request.source] = row.get(request.source, 0) + 1
        assert result.u_hat_matrix() == fresh
