"""Tests for the rejection / utilization metrics (Eq. 1, Eq. 3)."""

from __future__ import annotations

import pytest

from repro.core.base import BuildResult
from repro.core.forest import OverlayForest
from repro.core.metrics import (
    ForestMetrics,
    correlation_weighted_rejection,
    criticality_loss_ratio,
    mean_pairwise_rejection,
    pairwise_rejection_sum,
    rejection_ratio,
)
from repro.core.model import RejectionReason, SubscriptionRequest
from repro.core.problem import ForestProblem
from repro.core.state import BuilderState
from repro.session.streams import StreamId
from tests.conftest import complete_cost


def handmade_result() -> BuildResult:
    """Three nodes; u(1,0)=2, u(2,0)=1, u(2,1)=1; rejects r2(s0^0)."""
    problem = ForestProblem.from_tables(
        cost=complete_cost(3),
        inbound={0: 4, 1: 4, 2: 4},
        outbound={0: 4, 1: 4, 2: 4},
        group_members={
            StreamId(0, 0): {1, 2},
            StreamId(0, 1): {1},
            StreamId(1, 0): {2},
        },
        latency_bound_ms=10.0,
    )
    forest = OverlayForest()
    state = BuilderState(problem)
    satisfied_edges = [
        (StreamId(0, 0), 0, 1),
        (StreamId(0, 1), 0, 1),
        (StreamId(1, 0), 1, 2),
    ]
    for stream, parent, child in satisfied_edges:
        state.open_group(stream)
        tree = forest.tree(stream)
        tree.attach(parent, child, problem.edge_cost(parent, child))
        state.record_attach(tree, parent, child)
        forest.satisfied.append(SubscriptionRequest(child, stream))
    forest.rejected.append(
        (SubscriptionRequest(2, StreamId(0, 0)), RejectionReason.TREE_SATURATED)
    )
    return BuildResult(problem=problem, forest=forest, state=state, algorithm="hand")


class TestRejectionMetrics:
    def test_rejection_ratio(self):
        # 1 rejected of 4 total requests.
        assert rejection_ratio(handmade_result()) == pytest.approx(0.25)

    def test_pairwise_sum_eq1(self):
        # û/u per pair: (1,0): 0/2; (2,0): 1/1; (2,1): 0/1 -> sum = 1.0
        assert pairwise_rejection_sum(handmade_result()) == pytest.approx(1.0)

    def test_mean_pairwise(self):
        # Three requesting pairs.
        assert mean_pairwise_rejection(handmade_result()) == pytest.approx(1 / 3)

    def test_eq3_verbatim(self):
        # i=1: inner = 0, u_min = 1 -> 0.
        # i=2: inner = 1/1^2 + 0 = 1, u_min = min(1,1) = 1 -> 1.
        assert correlation_weighted_rejection(handmade_result()) == pytest.approx(1.0)

    def test_criticality_loss_ratio(self):
        # lost = 1*Q(2,0) = 1; mass = one unit per requesting pair = 3.
        assert criticality_loss_ratio(handmade_result()) == pytest.approx(1 / 3)

    def test_zero_requests_all_zero(self):
        problem = ForestProblem.from_tables(
            cost=complete_cost(2),
            inbound={0: 1, 1: 1},
            outbound={0: 1, 1: 1},
            group_members={},
            latency_bound_ms=1.0,
        )
        result = BuildResult(
            problem=problem,
            forest=OverlayForest(),
            state=BuilderState(problem),
            algorithm="none",
        )
        assert rejection_ratio(result) == 0.0
        assert pairwise_rejection_sum(result) == 0.0
        assert mean_pairwise_rejection(result) == 0.0
        assert correlation_weighted_rejection(result) == 0.0
        assert criticality_loss_ratio(result) == 0.0


class TestUhat:
    def test_u_hat_matrix(self):
        result = handmade_result()
        assert result.u_hat_matrix() == {2: {0: 1}}
        assert result.u_hat(2, 0) == 1
        assert result.u_hat(1, 0) == 0


class TestForestMetrics:
    def test_bundle_consistency(self):
        metrics = ForestMetrics.of(handmade_result())
        assert metrics.total_requests == 4
        assert metrics.rejected_requests == 1
        assert metrics.rejection_ratio == pytest.approx(0.25)
        assert metrics.n_groups == 3

    def test_out_utilization(self):
        # dout: node0=2 of 4, node1=1 of 4, node2=0 of 4.
        metrics = ForestMetrics.of(handmade_result())
        assert metrics.mean_out_utilization == pytest.approx(
            (0.5 + 0.25 + 0.0) / 3
        )

    def test_relay_fraction_zero_without_relays(self):
        # Every edge in the handmade forest is source -> subscriber.
        metrics = ForestMetrics.of(handmade_result())
        assert metrics.mean_relay_fraction == 0.0

    def test_path_and_depth(self):
        metrics = ForestMetrics.of(handmade_result())
        assert metrics.mean_path_cost_ms == pytest.approx(1.0)
        assert metrics.max_path_cost_ms == pytest.approx(1.0)
        assert metrics.mean_tree_depth == pytest.approx(1.0)

    def test_bounded_quantities(self, small_problem, rng):
        from repro.core.randomized import RandomJoinBuilder

        metrics = ForestMetrics.of(
            RandomJoinBuilder().build(small_problem, rng)
        )
        assert 0.0 <= metrics.rejection_ratio <= 1.0
        assert 0.0 <= metrics.mean_pairwise_rejection <= 1.0
        assert 0.0 <= metrics.criticality_loss_ratio <= 1.0
        assert 0.0 <= metrics.mean_out_utilization <= 1.0
        assert 0.0 <= metrics.mean_relay_fraction <= 1.0
