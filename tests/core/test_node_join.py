"""Tests for the basic node-join algorithm, including the Fig. 6 example."""

from __future__ import annotations

import pytest

from repro.errors import OverlayError
from repro.core.forest import MulticastTree
from repro.core.model import RejectionReason
from repro.core.node_join import JoinOutcome, ParentPolicy, try_join
from repro.core.problem import ForestProblem
from repro.core.state import BuilderState
from repro.session.streams import StreamId
from tests.conftest import complete_cost

# Node indices for the Figure 6 instance.
S, A, B, C, D, E, F = range(7)


def figure6() -> tuple[ForestProblem, BuilderState, MulticastTree]:
    """Reconstruct the exact worked example of Fig. 6.

    Per-node labels (O, dout, m-hat): S=(20,7,7), A=(15,5,3),
    B=(12,4,4), C=(10,4,1), D=(22,8,0), E=(8,4,4); cost bound 10.
    Tree-path costs from S: A=4, C=3, B=8, D=11, E=6; edge costs to the
    joining node F: A->F=5 (total 9 < 10), D->F=3 (total 14 >= 10),
    E->F=3 (total 9 but rfc=0), others infeasible.
    """
    cost = complete_cost(7, off_diagonal=9.0)
    stream = StreamId(site=S, index=0)
    problem = ForestProblem.from_tables(
        cost=cost,
        inbound={i: 50 for i in range(7)},
        outbound={S: 20, A: 15, B: 12, C: 10, D: 22, E: 8, F: 10},
        group_members={stream: {A, B, C, D, E, F}},
        latency_bound_ms=10.0,
    )
    # Edge costs consulted by the join: member -> F.
    problem.cost[A][F] = 5.0
    problem.cost[D][F] = 3.0
    problem.cost[E][F] = 3.0

    tree = MulticastTree(stream)
    tree.attach(S, A, 4.0)
    tree.attach(S, C, 3.0)
    tree.attach(C, B, 5.0)  # B at cost 8
    tree.attach(B, D, 3.0)  # D at cost 11
    tree.attach(S, E, 6.0)

    state = BuilderState(problem)
    state.open_group(stream)
    # Install the figure's degree/reservation snapshot directly.
    for node, dout in {S: 7, A: 5, B: 4, C: 4, D: 8, E: 4}.items():
        state.dout[node] = dout
    for node, m_hat in {S: 7, A: 3, B: 4, C: 1, D: 0, E: 4}.items():
        state.m_hat[node] = m_hat
    return problem, state, tree


class TestFigure6Example:
    def test_a_becomes_parent(self):
        """The paper's conclusion: A serves F (rfc 7, cost 4+5=9 < 10)."""
        problem, state, tree = figure6()
        outcome = try_join(problem, state, tree, F)
        assert outcome.accepted
        assert outcome.parent == A
        assert outcome.path_cost_ms == pytest.approx(9.0)

    def test_rfc_values_match_figure(self):
        _, state, _ = figure6()
        assert state.rfc(A) == 7  # 15 - 5 - 3, "second largest rfc"
        assert state.rfc(D) == 14  # 22 - 8 - 0, largest but too far
        assert state.rfc(E) == 0  # 8 - 4 - 4, "no out-degree left"
        assert state.rfc(S) == 6  # loses to A on rfc

    def test_d_excluded_by_latency(self):
        """D has the largest rfc but its path cost 11+3=14 exceeds 10."""
        problem, state, tree = figure6()
        assert tree.cost_from_source(D) + problem.edge_cost(D, F) >= 10.0

    def test_e_excluded_by_rfc(self):
        """E is latency-feasible (6+3=9) but rfc = 0 disqualifies it."""
        problem, state, tree = figure6()
        assert tree.cost_from_source(E) + problem.edge_cost(E, F) < 10.0
        assert state.rfc(E) == 0

    def test_tree_and_state_updated_after_join(self):
        problem, state, tree = figure6()
        try_join(problem, state, tree, F)
        assert tree.parent(F) == A
        assert state.dout[A] == 6
        assert state.din[F] == 1


class TestInboundCheck:
    def test_rejects_when_inbound_saturated(self):
        problem, state, tree = figure6()
        state.din[F] = problem.inbound_limit(F)
        outcome = try_join(problem, state, tree, F)
        assert not outcome.accepted
        assert outcome.reason is RejectionReason.INBOUND_SATURATED

    def test_no_mutation_on_rejection(self):
        problem, state, tree = figure6()
        state.din[F] = problem.inbound_limit(F)
        before = state.snapshot()
        try_join(problem, state, tree, F)
        assert state.snapshot() == before
        assert F not in tree


class TestTreeSaturation:
    def test_all_parents_out_of_degree(self):
        problem, state, tree = figure6()
        for node in (S, A, B, C, D, E):
            state.dout[node] = problem.outbound_limit(node)
        outcome = try_join(problem, state, tree, F)
        assert outcome.reason is RejectionReason.TREE_SATURATED

    def test_all_parents_too_far(self):
        problem, state, tree = figure6()
        for node in (S, A, B, C, D, E):
            problem.cost[node][F] = 99.0
        outcome = try_join(problem, state, tree, F)
        assert outcome.reason is RejectionReason.TREE_SATURATED


class TestReservation:
    def test_first_dissemination_allowed_despite_negative_rfc(self):
        """The source's reserved slot covers the first join even when
        its rfc is non-positive (the slot was reserved for this)."""
        stream = StreamId(0, 0)
        problem = ForestProblem.from_tables(
            cost=complete_cost(2),
            inbound={0: 5, 1: 5},
            outbound={0: 3, 1: 5},
            group_members={stream: {1}},
            latency_bound_ms=10.0,
        )
        state = BuilderState(problem)
        state.open_group(stream)
        state.m_hat[0] = 3  # rfc(0) = 3 - 0 - 3 = 0
        tree = MulticastTree(stream)
        outcome = try_join(problem, state, tree, 1)
        assert outcome.accepted and outcome.parent == 0
        assert state.m_hat[0] == 2  # reservation spent

    def test_source_with_exhausted_dout_cannot_serve(self):
        stream = StreamId(0, 0)
        problem = ForestProblem.from_tables(
            cost=complete_cost(2),
            inbound={0: 5, 1: 5},
            outbound={0: 2, 1: 5},
            group_members={stream: {1}},
            latency_bound_ms=10.0,
        )
        state = BuilderState(problem)
        state.open_group(stream)
        state.dout[0] = 2
        tree = MulticastTree(stream)
        outcome = try_join(problem, state, tree, 1)
        assert outcome.reason is RejectionReason.TREE_SATURATED


class TestParentPolicies:
    def test_min_cost_prefers_cheapest(self):
        problem, state, tree = figure6()
        problem.cost[S][F] = 0.5  # direct from S would be cheapest
        outcome = try_join(
            problem, state, tree, F, policy=ParentPolicy.MIN_COST
        )
        assert outcome.parent == S

    def test_first_fit_takes_first_member(self):
        problem, state, tree = figure6()
        outcome = try_join(
            problem, state, tree, F, policy=ParentPolicy.FIRST_FIT
        )
        assert outcome.parent == S  # source is the first member

    def test_max_rfc_default(self):
        problem, state, tree = figure6()
        outcome = try_join(problem, state, tree, F)
        assert outcome.parent == A


class TestJoinOutcome:
    def test_accepted_requires_parent(self):
        with pytest.raises(OverlayError):
            JoinOutcome(accepted=True)

    def test_rejected_requires_reason(self):
        with pytest.raises(OverlayError):
            JoinOutcome(accepted=False)

    def test_join_of_member_rejected(self):
        problem, state, tree = figure6()
        with pytest.raises(OverlayError):
            try_join(problem, state, tree, A)
