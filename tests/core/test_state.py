"""Tests for the builder state: degrees and reservations."""

from __future__ import annotations

import pytest

from repro.errors import OverlayError
from repro.core.forest import MulticastTree
from repro.core.problem import ForestProblem
from repro.core.state import BuilderState
from repro.session.streams import StreamId
from tests.conftest import complete_cost


def three_node_problem() -> ForestProblem:
    return ForestProblem.from_tables(
        cost=complete_cost(3),
        inbound={0: 3, 1: 3, 2: 3},
        outbound={0: 3, 1: 3, 2: 3},
        group_members={
            StreamId(0, 0): {1, 2},
            StreamId(0, 1): {2},
            StreamId(1, 0): {0},
        },
        latency_bound_ms=10.0,
    )


class TestInitialState:
    def test_m_is_static_per_paper(self):
        state = BuilderState(three_node_problem())
        assert list(state.m) == [2, 1, 0]
        assert state.snapshot()["m"] == {0: 2, 1: 1, 2: 0}

    def test_m_hat_starts_zero_until_opened(self):
        state = BuilderState(three_node_problem())
        assert list(state.m_hat) == [0, 0, 0]
        assert state.snapshot()["m_hat"] == {0: 0, 1: 0, 2: 0}

    def test_open_group_reserves(self):
        state = BuilderState(three_node_problem())
        state.open_group(StreamId(0, 0))
        assert state.m_hat[0] == 1
        state.open_group(StreamId(0, 1))
        assert state.m_hat[0] == 2

    def test_open_idempotent(self):
        state = BuilderState(three_node_problem())
        state.open_group(StreamId(0, 0))
        state.open_group(StreamId(0, 0))
        assert state.m_hat[0] == 1

    def test_reservations_disabled(self):
        state = BuilderState(three_node_problem(), reservations=False)
        state.open_group(StreamId(0, 0))
        assert state.m_hat[0] == 0
        assert state.is_open(StreamId(0, 0))


class TestRfc:
    def test_rfc_formula(self):
        state = BuilderState(three_node_problem())
        state.open_group(StreamId(0, 0))
        state.open_group(StreamId(0, 1))
        state.dout[0] = 1
        # rfc = O - dout - m_hat = 3 - 1 - 2
        assert state.rfc(0) == 0

    def test_inbound_outbound_free(self):
        state = BuilderState(three_node_problem())
        assert state.inbound_free(1)
        state.din[1] = 3
        assert not state.inbound_free(1)
        assert state.outbound_free(0)
        state.dout[0] = 3
        assert not state.outbound_free(0)


class TestRecordAttachDetach:
    def test_first_dissemination_releases_reservation(self):
        problem = three_node_problem()
        state = BuilderState(problem)
        stream = StreamId(0, 0)
        state.open_group(stream)
        tree = MulticastTree(stream)
        tree.attach(0, 1, 1.0)
        state.record_attach(tree, 0, 1)
        assert state.m_hat[0] == 0
        assert state.dout[0] == 1
        assert state.din[1] == 1

    def test_second_child_keeps_m_hat(self):
        problem = three_node_problem()
        state = BuilderState(problem)
        stream = StreamId(0, 0)
        state.open_group(stream)
        tree = MulticastTree(stream)
        tree.attach(0, 1, 1.0)
        state.record_attach(tree, 0, 1)
        tree.attach(0, 2, 1.0)
        state.record_attach(tree, 0, 2)
        assert state.m_hat[0] == 0
        assert state.dout[0] == 2

    def test_detach_restores_reservation(self):
        problem = three_node_problem()
        state = BuilderState(problem)
        stream = StreamId(0, 0)
        state.open_group(stream)
        tree = MulticastTree(stream)
        tree.attach(0, 1, 1.0)
        state.record_attach(tree, 0, 1)
        tree.detach_leaf(1)
        state.record_detach(tree, 0, 1)
        assert state.m_hat[0] == 1
        assert state.dout[0] == 0
        assert state.din[1] == 0

    def test_detach_with_remaining_children_keeps_release(self):
        problem = three_node_problem()
        state = BuilderState(problem)
        stream = StreamId(0, 0)
        state.open_group(stream)
        tree = MulticastTree(stream)
        tree.attach(0, 1, 1.0)
        state.record_attach(tree, 0, 1)
        tree.attach(0, 2, 1.0)
        state.record_attach(tree, 0, 2)
        tree.detach_leaf(2)
        state.record_detach(tree, 0, 2)
        assert state.m_hat[0] == 0  # stream still disseminated via node 1

    def test_degree_underflow_guard(self):
        problem = three_node_problem()
        state = BuilderState(problem)
        stream = StreamId(0, 0)
        tree = MulticastTree(stream)
        with pytest.raises(OverlayError):
            state.record_detach(tree, 0, 1)


class TestInvariants:
    def test_check_invariants_passes_fresh(self):
        BuilderState(three_node_problem()).check_invariants()

    def test_inbound_violation_detected(self):
        state = BuilderState(three_node_problem())
        state.din[1] = 99
        with pytest.raises(OverlayError):
            state.check_invariants()

    def test_outbound_violation_detected(self):
        state = BuilderState(three_node_problem())
        state.dout[1] = 99
        with pytest.raises(OverlayError):
            state.check_invariants()

    def test_snapshot_is_copy(self):
        state = BuilderState(three_node_problem())
        snap = state.snapshot()
        snap["din"][0] = 42
        assert state.din[0] == 0
