"""Tests for the Forest Construction Problem instance."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SubscriptionError
from repro.core.model import MulticastGroup
from repro.core.problem import ForestProblem, ProblemStats
from repro.session.streams import StreamId
from repro.workload.coverage import CoverageWorkloadModel
from repro.workload.spec import SubscriptionWorkload
from tests.conftest import complete_cost


def tiny_problem(latency: float = 10.0) -> ForestProblem:
    """Three nodes; node 0 publishes two streams; 1 and 2 subscribe."""
    return ForestProblem.from_tables(
        cost=complete_cost(3),
        inbound={0: 4, 1: 4, 2: 4},
        outbound={0: 4, 1: 4, 2: 4},
        group_members={
            StreamId(0, 0): {1, 2},
            StreamId(0, 1): {1},
        },
        latency_bound_ms=latency,
    )


class TestConstruction:
    def test_tiny_problem(self):
        problem = tiny_problem()
        assert problem.n_nodes == 3
        assert problem.n_groups == 2
        assert problem.total_requests() == 3

    def test_missing_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            ForestProblem(
                n_nodes=2,
                cost=complete_cost(2),
                inbound={0: 1},
                outbound={0: 1, 1: 1},
                groups=[],
                latency_bound_ms=1.0,
            )

    def test_missing_cost_entry_rejected(self):
        cost = complete_cost(2)
        del cost[0][1]
        with pytest.raises(ConfigurationError):
            ForestProblem(
                n_nodes=2,
                cost=cost,
                inbound={0: 1, 1: 1},
                outbound={0: 1, 1: 1},
                groups=[],
                latency_bound_ms=1.0,
            )

    def test_negative_cost_rejected(self):
        cost = complete_cost(2)
        cost[0][1] = -1.0
        with pytest.raises(ConfigurationError):
            ForestProblem(
                n_nodes=2,
                cost=cost,
                inbound={0: 1, 1: 1},
                outbound={0: 1, 1: 1},
                groups=[],
                latency_bound_ms=1.0,
            )

    def test_non_positive_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            ForestProblem.from_tables(
                cost=complete_cost(2),
                inbound={0: 1, 1: 1},
                outbound={0: 1, 1: 1},
                group_members={},
                latency_bound_ms=0.0,
            )

    def test_duplicate_group_rejected(self):
        groups = [
            MulticastGroup(StreamId(0, 0), frozenset({1})),
            MulticastGroup(StreamId(0, 0), frozenset({1})),
        ]
        with pytest.raises(SubscriptionError):
            ForestProblem(
                n_nodes=2,
                cost=complete_cost(2),
                inbound={0: 1, 1: 1},
                outbound={0: 1, 1: 1},
                groups=groups,
                latency_bound_ms=1.0,
            )

    def test_out_of_range_member_rejected(self):
        with pytest.raises(SubscriptionError):
            ForestProblem.from_tables(
                cost=complete_cost(2),
                inbound={0: 1, 1: 1},
                outbound={0: 1, 1: 1},
                group_members={StreamId(0, 0): {5}},
                latency_bound_ms=1.0,
            )


class TestDerivedData:
    def test_u_matrix(self):
        problem = tiny_problem()
        assert problem.u(1, 0) == 2
        assert problem.u(2, 0) == 1
        assert problem.u(2, 1) == 0

    def test_streams_to_send(self):
        problem = tiny_problem()
        assert problem.streams_to_send(0) == 2
        assert problem.streams_to_send(1) == 0

    def test_all_requests_deterministic(self):
        problem = tiny_problem()
        assert problem.all_requests() == problem.all_requests()
        assert len(problem.all_requests()) == 3

    def test_edge_cost(self):
        problem = tiny_problem()
        assert problem.edge_cost(0, 1) == 1.0
        assert problem.edge_cost(1, 1) == 0.0


class TestFromWorkload:
    def test_round_trip(self, small_session, rng):
        workload = CoverageWorkloadModel(interest=0.5).generate(
            small_session, rng
        )
        problem = ForestProblem.from_workload(small_session, workload, 100.0)
        assert problem.n_nodes == small_session.n_sites
        assert problem.total_requests() == workload.total_requests()

    def test_site_count_mismatch_rejected(self, small_session):
        workload = SubscriptionWorkload(n_sites=9, subscriptions={})
        with pytest.raises(SubscriptionError):
            ForestProblem.from_workload(small_session, workload, 100.0)

    def test_unknown_stream_rejected(self, small_session):
        workload = SubscriptionWorkload(
            n_sites=small_session.n_sites,
            subscriptions={0: (StreamId(1, 99),)},
        )
        with pytest.raises(SubscriptionError):
            ForestProblem.from_workload(small_session, workload, 100.0)


class TestStats:
    def test_stats(self):
        stats = ProblemStats.of(tiny_problem())
        assert stats.n_nodes == 3
        assert stats.n_groups == 2
        assert stats.n_requests == 3
        assert stats.mean_group_size == pytest.approx(1.5)
        # node 1 requests 2 of 4 inbound slots, node 2 requests 1 of 4.
        assert stats.density == pytest.approx((0.5 + 0.25 + 0.0) / 3)
