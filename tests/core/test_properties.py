"""Property-based tests: builder invariants on random problem instances.

Every algorithm, on any problem, must produce a forest that

* respects every node's inbound and outbound degree bounds,
* keeps every satisfied request under the latency bound,
* contains only structurally valid trees (acyclic, connected to the
  source, consistent cost labels),
* accounts for every request exactly once,
* and yields metrics inside their documented ranges.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.correlation import CorrelatedRandomJoinBuilder
from repro.core.granularity import GranularityBuilder
from repro.core.metrics import ForestMetrics
from repro.core.model import MulticastGroup
from repro.core.problem import ForestProblem
from repro.core.randomized import RandomJoinBuilder
from repro.core.registry import make_builder
from repro.core.tree_order import (
    LargestTreeFirstBuilder,
    MinCapacityTreeFirstBuilder,
    SmallestTreeFirstBuilder,
)
from repro.session.streams import StreamId
from repro.util.rng import RngStream

ALL_BUILDERS = [
    LargestTreeFirstBuilder,
    SmallestTreeFirstBuilder,
    MinCapacityTreeFirstBuilder,
    RandomJoinBuilder,
    CorrelatedRandomJoinBuilder,
    lambda: GranularityBuilder(granularity=3),
]


@st.composite
def forest_problems(draw) -> ForestProblem:
    """Random small problem instances with plausible shapes."""
    n = draw(st.integers(min_value=2, max_value=7))
    # Symmetric positive costs.
    base = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=30.0),
            min_size=n * n,
            max_size=n * n,
        )
    )
    cost: dict[int, dict[int, float]] = {i: {} for i in range(n)}
    for i in range(n):
        for j in range(n):
            if i == j:
                cost[i][j] = 0.0
            elif i < j:
                cost[i][j] = base[i * n + j]
            else:
                cost[i][j] = cost[j][i]
    inbound = {
        i: draw(st.integers(min_value=0, max_value=12)) for i in range(n)
    }
    outbound = {
        i: draw(st.integers(min_value=0, max_value=12)) for i in range(n)
    }
    n_streams = draw(st.integers(min_value=1, max_value=6))
    groups = []
    for k in range(n_streams):
        source = draw(st.integers(min_value=0, max_value=n - 1))
        others = [i for i in range(n) if i != source]
        members = draw(
            st.sets(st.sampled_from(others), min_size=1, max_size=len(others))
        )
        groups.append(
            MulticastGroup(StreamId(source, k), frozenset(members))
        )
    bound = draw(st.floats(min_value=5.0, max_value=80.0))
    return ForestProblem(
        n_nodes=n,
        cost=cost,
        inbound=inbound,
        outbound=outbound,
        groups=groups,
        latency_bound_ms=bound,
    )


@settings(max_examples=60, deadline=None)
@given(problem=forest_problems(), seed=st.integers(min_value=0, max_value=2**31))
def test_all_builders_respect_invariants(problem, seed):
    for factory in ALL_BUILDERS:
        builder = factory()
        result = builder.build(problem, RngStream(seed, label=builder.name))
        result.verify()  # degrees, latency, structure, accounting


@settings(max_examples=40, deadline=None)
@given(problem=forest_problems(), seed=st.integers(min_value=0, max_value=2**31))
def test_metrics_ranges(problem, seed):
    result = RandomJoinBuilder().build(problem, RngStream(seed))
    metrics = ForestMetrics.of(result)
    assert 0.0 <= metrics.rejection_ratio <= 1.0
    assert 0.0 <= metrics.mean_pairwise_rejection <= 1.0 + 1e-9
    assert 0.0 <= metrics.criticality_loss_ratio <= 1.0 + 1e-9
    assert metrics.pairwise_rejection_sum >= 0.0
    assert metrics.correlation_weighted_rejection >= 0.0
    assert 0.0 <= metrics.mean_out_utilization <= 1.0 + 1e-9
    assert metrics.max_path_cost_ms < problem.latency_bound_ms or (
        metrics.max_path_cost_ms == 0.0
    )


@settings(max_examples=40, deadline=None)
@given(problem=forest_problems(), seed=st.integers(min_value=0, max_value=2**31))
def test_satisfied_subscribers_are_group_members(problem, seed):
    result = RandomJoinBuilder().build(problem, RngStream(seed))
    members = {
        group.stream: set(group.subscribers) for group in problem.groups
    }
    for request in result.satisfied:
        assert request.subscriber in members[request.stream]
    for request, _reason in result.rejected:
        assert request.subscriber in members[request.stream]


@settings(max_examples=40, deadline=None)
@given(problem=forest_problems(), seed=st.integers(min_value=0, max_value=2**31))
def test_determinism(problem, seed):
    a = RandomJoinBuilder().build(problem, RngStream(seed))
    b = RandomJoinBuilder().build(problem, RngStream(seed))
    assert a.satisfied == b.satisfied
    assert a.rejected == b.rejected


@settings(max_examples=40, deadline=None)
@given(problem=forest_problems(), seed=st.integers(min_value=0, max_value=2**31))
def test_co_rj_swap_conservation(problem, seed):
    """CO-RJ's swaps never violate invariants and every victim-swapped
    request corresponds to a satisfied higher-criticality one."""
    result = CorrelatedRandomJoinBuilder().build(problem, RngStream(seed))
    result.verify()
    victims = [
        request
        for request, reason in result.rejected
        if reason.value == "victim-swapped"
    ]
    for victim in victims:
        # The victim must no longer be a member of the tree it left.
        tree = result.forest.trees[victim.stream]
        assert victim.subscriber not in tree


@settings(max_examples=30, deadline=None)
@given(
    problem=forest_problems(),
    seed=st.integers(min_value=0, max_value=2**31),
    granularity=st.integers(min_value=1, max_value=10),
)
def test_granularity_spectrum_invariants(problem, seed, granularity):
    builder = GranularityBuilder(granularity=granularity)
    builder.build(problem, RngStream(seed)).verify()


@settings(max_examples=30, deadline=None)
@given(problem=forest_problems(), seed=st.integers(min_value=0, max_value=2**31))
def test_registry_builders_equivalent_to_direct(problem, seed):
    direct = RandomJoinBuilder().build(problem, RngStream(seed))
    named = make_builder("rj").build(problem, RngStream(seed))
    assert direct.satisfied == named.satisfied
