"""Tests for the core data model (Table 1 notation)."""

from __future__ import annotations

import pytest

from repro.errors import SubscriptionError
from repro.core.model import MulticastGroup, RejectionReason, SubscriptionRequest
from repro.session.streams import StreamId


class TestSubscriptionRequest:
    def test_source_property(self):
        request = SubscriptionRequest(subscriber=2, stream=StreamId(5, 1))
        assert request.source == 5

    def test_self_subscription_rejected(self):
        with pytest.raises(SubscriptionError):
            SubscriptionRequest(subscriber=3, stream=StreamId(3, 0))

    def test_negative_subscriber_rejected(self):
        with pytest.raises(SubscriptionError):
            SubscriptionRequest(subscriber=-1, stream=StreamId(0, 0))

    def test_str_notation(self):
        request = SubscriptionRequest(subscriber=1, stream=StreamId(2, 3))
        assert str(request) == "r1(s2^3)"

    def test_orderable_and_hashable(self):
        a = SubscriptionRequest(1, StreamId(2, 0))
        b = SubscriptionRequest(3, StreamId(2, 0))
        assert a < b
        assert len({a, a, b}) == 2


class TestMulticastGroup:
    def test_size(self):
        group = MulticastGroup(StreamId(0, 0), frozenset({1, 2, 3}))
        assert group.size == 3
        assert group.source == 0

    def test_empty_rejected(self):
        with pytest.raises(SubscriptionError):
            MulticastGroup(StreamId(0, 0), frozenset())

    def test_source_membership_rejected(self):
        with pytest.raises(SubscriptionError):
            MulticastGroup(StreamId(0, 0), frozenset({0, 1}))

    def test_requests_sorted(self):
        group = MulticastGroup(StreamId(0, 0), frozenset({3, 1, 2}))
        assert [r.subscriber for r in group.requests()] == [1, 2, 3]

    def test_str(self):
        group = MulticastGroup(StreamId(0, 0), frozenset({2, 1}))
        assert str(group) == "G(s0^0)={1,2}"


class TestRejectionReason:
    def test_values(self):
        assert str(RejectionReason.INBOUND_SATURATED) == "inbound-saturated"
        assert str(RejectionReason.TREE_SATURATED) == "tree-saturated"
        assert str(RejectionReason.VICTIM_SWAPPED) == "victim-swapped"
