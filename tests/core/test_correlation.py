"""Tests for criticality and CO-RJ, including the Fig. 7 example."""

from __future__ import annotations

import pytest

from repro.core.correlation import CorrelatedRandomJoinBuilder, criticality
from repro.core.forest import OverlayForest
from repro.core.model import RejectionReason, SubscriptionRequest
from repro.core.node_join import JoinOutcome
from repro.core.problem import ForestProblem
from repro.core.state import BuilderState
from repro.session.streams import StreamId
from tests.conftest import complete_cost

# Node indices for the Figure 7 instance.
A, B, C, D, E, F, G = range(7)


def figure7() -> tuple[ForestProblem, BuilderState, OverlayForest]:
    """Reconstruct the worked example of Fig. 7.

    E subscribes two streams from site A (s_a^1, s_a^2) and four from
    site G (s_g^6..s_g^9), so Q_{E->A} = 1/2 and Q_{E->G} = 1/4.  E has
    joined G's tree for s_g^8 under parent F; F has also joined the
    tree of s_a^2.  The tree of s_a^2 is saturated for E, but the swap
    applies: remove F->E in T(s_g^8), add F->E in T(s_a^2); the new
    path cost 2+3+4 = 9 is below the bound 10.
    """
    s_a2 = StreamId(A, 2)
    s_a1 = StreamId(A, 1)
    s_g8 = StreamId(G, 8)
    s_g6, s_g7, s_g9 = StreamId(G, 6), StreamId(G, 7), StreamId(G, 9)

    cost = complete_cost(7, off_diagonal=4.0)
    problem = ForestProblem.from_tables(
        cost=cost,
        inbound={i: 50 for i in range(7)},
        outbound={i: 50 for i in range(7)},
        group_members={
            s_a1: {E},
            s_a2: {B, C, F, E},
            s_g8: {F, E},
            s_g6: {E},
            s_g7: {E},
            s_g9: {E},
        },
        latency_bound_ms=10.0,
    )
    # Path pieces of the figure: A->B = 2, B->F = 3, F->E = 4.
    problem.cost[A][B] = problem.cost[B][A] = 2.0
    problem.cost[B][F] = problem.cost[F][B] = 3.0
    problem.cost[F][E] = problem.cost[E][F] = 4.0

    forest = OverlayForest()
    state = BuilderState(problem)
    for stream in (s_a1, s_a2, s_g8, s_g6, s_g7, s_g9):
        state.open_group(stream)

    def attach(stream: StreamId, parent: int, child: int) -> None:
        tree = forest.tree(stream)
        tree.attach(parent, child, problem.edge_cost(parent, child))
        state.record_attach(tree, parent, child)
        forest.satisfied.append(
            SubscriptionRequest(subscriber=child, stream=stream)
        )

    # T(s_a^2): A -> B -> F (and C somewhere; keep it minimal).
    attach(s_a2, A, B)
    attach(s_a2, B, F)
    # T(s_g^8): G -> F -> E  (E is a leaf under F).
    attach(s_g8, G, F)
    attach(s_g8, F, E)
    return problem, state, forest


class TestCriticality:
    def test_eq2_values_of_figure7(self):
        problem, _, _ = figure7()
        assert criticality(problem, E, A) == pytest.approx(1 / 2)
        assert criticality(problem, E, G) == pytest.approx(1 / 4)

    def test_no_requests_is_infinite(self):
        problem, _, _ = figure7()
        assert criticality(problem, B, G) == float("inf")


class TestFigure7Example:
    def request(self) -> SubscriptionRequest:
        return SubscriptionRequest(subscriber=E, stream=StreamId(A, 2))

    def rejected_outcome(self) -> JoinOutcome:
        return JoinOutcome(
            accepted=False, reason=RejectionReason.TREE_SATURATED
        )

    def test_swap_applies(self):
        problem, state, forest = figure7()
        builder = CorrelatedRandomJoinBuilder()
        handled = builder.on_rejected(
            problem, state, forest, self.request(), self.rejected_outcome()
        )
        assert handled
        # E left the tree of s_g^8 ...
        assert E not in forest.tree(StreamId(G, 8))
        # ... and now receives s_a^2 from F with cost 2+3+4 = 9.
        target = forest.tree(StreamId(A, 2))
        assert target.parent(E) == F
        assert target.cost_from_source(E) == pytest.approx(9.0)

    def test_degrees_unchanged_by_swap(self):
        problem, state, forest = figure7()
        before = (state.dout[F], state.din[E])
        CorrelatedRandomJoinBuilder().on_rejected(
            problem, state, forest, self.request(), self.rejected_outcome()
        )
        assert (state.dout[F], state.din[E]) == before

    def test_bookkeeping_swaps_requests(self):
        problem, state, forest = figure7()
        CorrelatedRandomJoinBuilder().on_rejected(
            problem, state, forest, self.request(), self.rejected_outcome()
        )
        assert self.request() in forest.satisfied
        victim = SubscriptionRequest(subscriber=E, stream=StreamId(G, 8))
        assert victim not in forest.satisfied
        assert (victim, RejectionReason.VICTIM_SWAPPED) in forest.rejected

    def test_swap_refused_when_victim_more_critical(self):
        """Condition (1): the victim must be strictly less critical."""
        problem, state, forest = figure7()
        # Request a G stream instead: Q_{E->G}=1/4 is the *smallest*
        # criticality, so no victim qualifies.
        request = SubscriptionRequest(subscriber=E, stream=StreamId(G, 6))
        handled = CorrelatedRandomJoinBuilder().on_rejected(
            problem, state, forest, request, self.rejected_outcome()
        )
        assert not handled

    def test_swap_refused_when_not_leaf(self):
        """Condition (2): E must be a leaf in the victim tree."""
        problem, state, forest = figure7()
        tree = forest.tree(StreamId(G, 8))
        tree.attach(E, C, problem.edge_cost(E, C))  # E now internal
        state.record_attach(tree, E, C)
        handled = CorrelatedRandomJoinBuilder().on_rejected(
            problem, state, forest, self.request(), self.rejected_outcome()
        )
        assert not handled

    def test_swap_refused_when_parent_not_in_target(self):
        """Condition (3): F must already be in the target tree."""
        problem, state, forest = figure7()
        # Rebuild the target tree without F.
        forest.trees[StreamId(A, 2)] = type(forest.tree(StreamId(G, 8)))(
            StreamId(A, 2)
        )
        handled = CorrelatedRandomJoinBuilder().on_rejected(
            problem, state, forest, self.request(), self.rejected_outcome()
        )
        assert not handled

    def test_swap_refused_when_latency_violated(self):
        """Condition (4): the new path must respect the bound."""
        problem, state, forest = figure7()
        problem.cost[F][E] = 99.0
        handled = CorrelatedRandomJoinBuilder().on_rejected(
            problem, state, forest, self.request(), self.rejected_outcome()
        )
        assert not handled

    def test_inbound_rejections_swappable_by_default(self):
        problem, state, forest = figure7()
        outcome = JoinOutcome(
            accepted=False, reason=RejectionReason.INBOUND_SATURATED
        )
        builder = CorrelatedRandomJoinBuilder()
        assert builder.on_rejected(problem, state, forest, self.request(), outcome)

    def test_inbound_swap_disabled_by_flag(self):
        problem, state, forest = figure7()
        outcome = JoinOutcome(
            accepted=False, reason=RejectionReason.INBOUND_SATURATED
        )
        builder = CorrelatedRandomJoinBuilder(swap_on_inbound=False)
        assert not builder.on_rejected(
            problem, state, forest, self.request(), outcome
        )


class TestCoRjEndToEnd:
    def test_never_worse_on_criticality_than_requests(self, small_problem, rng):
        from repro.core.metrics import criticality_loss_ratio
        from repro.core.randomized import RandomJoinBuilder

        rj = RandomJoinBuilder().build(small_problem, rng.spawn("rj"))
        co = CorrelatedRandomJoinBuilder().build(small_problem, rng.spawn("rj"))
        assert criticality_loss_ratio(co) <= criticality_loss_ratio(rj) + 1e-9

    def test_verify_passes(self, small_problem, rng):
        result = CorrelatedRandomJoinBuilder().build(small_problem, rng)
        result.verify()

    def test_repair_passes_zero_is_on_the_fly_only(self, small_problem, rng):
        builder = CorrelatedRandomJoinBuilder(repair_passes=0)
        result = builder.build(small_problem, rng)
        result.verify()
