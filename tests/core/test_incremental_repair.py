"""Equivalence and property tests for :class:`IncrementalRepairer`.

The repairer must produce a result indistinguishable from a from-scratch
build as far as every structural invariant is concerned (the auditor
re-derives degree ledgers, reservation accounting, latency bounds and
request accounting from first principles), while leaving surviving
parents untouched.
"""

from __future__ import annotations

import pytest

from repro.core.incremental import (
    IncrementalRepairer,
    churn_rate,
    overlay_cost,
)
from repro.core.model import SubscriptionRequest
from repro.core.problem import ForestProblem
from repro.core.randomized import RandomJoinBuilder
from repro.session.streams import StreamId
from repro.sim.invariants import InvariantAuditor
from repro.util.rng import RngStream
from tests.conftest import complete_cost


S0 = StreamId(0, 0)
S1 = StreamId(1, 0)


def roomy_problem(groups=None) -> ForestProblem:
    """Six nodes, ample capacity, unit costs everywhere."""
    if groups is None:
        groups = {S0: {1, 2, 3, 4, 5}, S1: {0, 2, 3}}
    return ForestProblem.from_tables(
        cost=complete_cost(6),
        inbound={i: 10 for i in range(6)},
        outbound={i: 10 for i in range(6)},
        group_members=groups,
        latency_bound_ms=10.0,
    )


def build(problem: ForestProblem, seed: int = 3):
    result = RandomJoinBuilder().build(problem, RngStream(seed))
    result.verify()
    return result


def assert_clean(result) -> None:
    """Full verification: invariants + a from-first-principles audit."""
    result.verify()
    auditor = InvariantAuditor(strict=False)
    violations = auditor.audit_build(result)
    assert not violations, [v.render() for v in violations]


class TestNoChange:
    def test_identical_problem_is_pure_carry(self):
        previous = build(roomy_problem())
        repair = IncrementalRepairer().repair(previous, roomy_problem())
        assert repair.feasible
        assert repair.carried == len(previous.satisfied)
        assert repair.orphaned == repair.lost == 0
        assert repair.fresh_joined == repair.fresh_rejected == 0
        assert churn_rate(previous, repair.result) == 0.0
        assert overlay_cost(repair.result) == overlay_cost(previous)
        assert_clean(repair.result)

    def test_carry_preserves_every_parent(self):
        previous = build(roomy_problem())
        repair = IncrementalRepairer().repair(previous, roomy_problem())
        for request in previous.satisfied:
            old_parent = previous.forest.trees[request.stream].parent(
                request.subscriber
            )
            new_parent = repair.result.forest.trees[request.stream].parent(
                request.subscriber
            )
            assert new_parent == old_parent


class TestLeafRemoval:
    def test_removed_leaf_released_and_clean(self):
        previous = build(roomy_problem())
        leaf = next(
            r
            for r in previous.satisfied
            if previous.forest.trees[r.stream].is_leaf(r.subscriber)
        )
        groups = {
            S0: {1, 2, 3, 4, 5},
            S1: {0, 2, 3},
        }
        groups[leaf.stream] = set(groups[leaf.stream]) - {leaf.subscriber}
        repair = IncrementalRepairer().repair(previous, roomy_problem(groups))
        assert repair.feasible
        assert leaf not in repair.result.satisfied
        assert leaf.subscriber not in repair.result.forest.trees[leaf.stream]
        assert_clean(repair.result)


class TestInteriorRemoval:
    def test_interior_removal_rehomes_subtree(self):
        previous = build(roomy_problem())
        interior = next(
            r
            for r in previous.satisfied
            if not previous.forest.trees[r.stream].is_leaf(r.subscriber)
        )
        tree = previous.forest.trees[interior.stream]
        orphan_children = tree.children(interior.subscriber)
        groups = {S0: set(range(1, 6)), S1: {0, 2, 3}}
        groups[interior.stream] = set(groups[interior.stream]) - {
            interior.subscriber
        }
        repair = IncrementalRepairer().repair(previous, roomy_problem(groups))
        assert repair.feasible
        assert repair.orphaned >= len(orphan_children)
        assert repair.rejoined == repair.orphaned
        new_tree = repair.result.forest.trees[interior.stream]
        assert interior.subscriber not in new_tree
        for child in orphan_children:
            assert child in new_tree  # re-homed, still served
        assert_clean(repair.result)

    def test_untouched_tree_is_not_disturbed(self):
        previous = build(roomy_problem())
        # Remove one S0 subscriber; every S1 parent must survive as-is.
        groups = {S0: {1, 2, 3, 4}, S1: {0, 2, 3}}
        repair = IncrementalRepairer().repair(previous, roomy_problem(groups))
        old_tree = previous.forest.trees[S1]
        new_tree = repair.result.forest.trees[S1]
        for request in previous.satisfied:
            if request.stream == S1:
                assert new_tree.parent(request.subscriber) == old_tree.parent(
                    request.subscriber
                )


class TestTreeLifecycle:
    def test_dropped_group_releases_all_capacity(self):
        previous = build(roomy_problem())
        repair = IncrementalRepairer().repair(
            previous, roomy_problem({S0: {1, 2, 3, 4, 5}})
        )
        assert repair.feasible
        assert repair.dropped_trees == 1
        assert S1 not in repair.result.forest.trees
        # The S1 source forwards nothing anymore.
        assert repair.result.forest.out_degree(1) <= 5
        assert_clean(repair.result)

    def test_new_group_joins_fresh(self):
        previous = build(roomy_problem({S0: {1, 2, 3, 4, 5}}))
        repair = IncrementalRepairer().repair(previous, roomy_problem())
        assert repair.feasible
        assert repair.fresh_joined == 3  # the whole S1 group is new
        assert repair.fresh_rejected == 0
        assert_clean(repair.result)

    def test_previously_rejected_requests_are_retried(self):
        # Node 3 unreachable within the bound at build time; the repair
        # against a problem with a feasible cost must pick it up fresh.
        cost = complete_cost(3, off_diagonal=1.0)
        cost[0][2] = cost[2][0] = 99.0
        cost[1][2] = cost[2][1] = 99.0
        unreachable = ForestProblem.from_tables(
            cost=cost,
            inbound={i: 10 for i in range(3)},
            outbound={i: 10 for i in range(3)},
            group_members={S0: {1, 2}},
            latency_bound_ms=10.0,
        )
        previous = build(unreachable)
        assert any(r.subscriber == 2 for r, _ in previous.rejected)
        reachable = ForestProblem.from_tables(
            cost=complete_cost(3),
            inbound={i: 10 for i in range(3)},
            outbound={i: 10 for i in range(3)},
            group_members={S0: {1, 2}},
            latency_bound_ms=10.0,
        )
        repair = IncrementalRepairer().repair(previous, reachable)
        assert repair.feasible
        assert SubscriptionRequest(2, S0) in repair.result.satisfied
        assert_clean(repair.result)


class TestInfeasibility:
    def chain_problem(self, members) -> ForestProblem:
        """0 -> 1 -> 2 is the only feasible chain within the bound."""
        cost = complete_cost(3, off_diagonal=9.0)
        cost[0][1] = cost[1][0] = 1.0
        cost[1][2] = cost[2][1] = 1.0
        return ForestProblem.from_tables(
            cost=cost,
            inbound={i: 10 for i in range(3)},
            outbound={i: 10 for i in range(3)},
            group_members={S0: set(members)},
            latency_bound_ms=5.0,
        )

    def test_disconnected_residue_flags_infeasible(self):
        # Build the 0 -> 1 -> 2 chain deterministically.
        from repro.core.base import BuildResult
        from repro.core.forest import OverlayForest
        from repro.core.node_join import try_join
        from repro.core.state import BuilderState

        problem = self.chain_problem({1, 2})
        forest = OverlayForest()
        state = BuilderState(problem)
        state.open_group(S0)
        tree = forest.tree(S0)
        for node in (1, 2):
            assert try_join(problem, state, tree, node).accepted
            forest.satisfied.append(SubscriptionRequest(node, S0))
        previous = BuildResult(
            problem=problem, forest=forest, state=state, algorithm="manual"
        )
        previous.verify()
        assert len(previous.satisfied) == 2  # chain built
        repair = IncrementalRepairer().repair(
            previous, self.chain_problem({2})
        )
        # Node 1 left: node 2's only feasible relay is gone.
        assert not repair.feasible
        assert repair.lost == 1
        # The result still accounts every request (2 is rejected).
        assert_clean(repair.result)

    def test_swap_evicting_carried_request_flags_infeasible(self):
        """A victim swap that drops a previously-served request counts as
        a loss: the repair must not report itself feasible."""
        from repro.core.base import BuildResult
        from repro.core.forest import OverlayForest
        from repro.core.state import BuilderState

        sa, sb, sb2 = StreamId(0, 0), StreamId(1, 0), StreamId(1, 1)
        groups_before = {sa: {1, 2, 3}, sb: {3}, sb2: {3}}
        before = ForestProblem.from_tables(
            cost=complete_cost(4),
            inbound={i: 10 for i in range(4)},
            outbound={0: 2, 1: 2, 2: 10, 3: 10},
            group_members=groups_before,
            latency_bound_ms=10.0,
        )
        forest = OverlayForest()
        state = BuilderState(before)
        for stream, edges in (
            (sa, ((0, 1), (0, 2), (2, 3))),
            (sb, ((1, 3),)),
            (sb2, ((1, 3),)),
        ):
            state.open_group(stream)
            tree = forest.tree(stream)
            for parent, child in edges:
                tree.attach(parent, child, before.edge_cost(parent, child))
                state.record_attach(tree, parent, child)
        for stream, members in groups_before.items():
            for member in members:
                forest.satisfied.append(SubscriptionRequest(member, stream))
        previous = BuildResult(
            problem=before, forest=forest, state=state, algorithm="manual"
        )
        previous.verify()

        # Node 2 (node 3's relay in T_A) leaves; nodes 0 and 1 are
        # outbound-saturated after the carry, so node 3's only way back
        # into T_A is the CO-RJ swap — which evicts the carried, less
        # critical S_B subscription.
        after = ForestProblem.from_tables(
            cost=complete_cost(4),
            inbound={i: 10 for i in range(4)},
            outbound={0: 1, 1: 2, 2: 10, 3: 10},
            group_members={sa: {1, 3}, sb: {3}, sb2: {3}},
            latency_bound_ms=10.0,
        )
        repair = IncrementalRepairer(use_swap=True).repair(previous, after)
        assert SubscriptionRequest(3, sa) in repair.result.satisfied
        evicted = {r for r, _ in repair.result.rejected}
        assert evicted & {SubscriptionRequest(3, sb), SubscriptionRequest(3, sb2)}
        assert repair.lost == 1
        assert not repair.feasible
        assert_clean(repair.result)

    def test_swap_fallback_keeps_invariants(self):
        problem = ForestProblem.from_tables(
            cost=complete_cost(4),
            inbound={i: 10 for i in range(4)},
            outbound={0: 1, 1: 1, 2: 1, 3: 1},
            group_members={
                StreamId(0, 0): {3},
                StreamId(1, 0): {3},
                StreamId(1, 1): {3},
            },
            latency_bound_ms=10.0,
        )
        previous = build(problem, seed=17)
        repair = IncrementalRepairer(use_swap=True).repair(previous, problem)
        assert_clean(repair.result)


class TestTightenedConstraints:
    def test_carried_edges_revalidated_against_new_bounds(self):
        """Direct API use with tightened capacities must not return a
        constraint-violating forest — over-limit edges orphan instead."""
        previous = build(roomy_problem())
        tight = ForestProblem.from_tables(
            cost=complete_cost(6),
            inbound={i: 1 for i in range(6)},  # one stream each, max
            outbound={i: 10 for i in range(6)},
            group_members={S0: {1, 2, 3, 4, 5}, S1: {0, 2, 3}},
            latency_bound_ms=10.0,
        )
        repair = IncrementalRepairer().repair(previous, tight)
        assert_clean(repair.result)  # degree bounds hold by audit

    def test_carried_edges_revalidated_against_new_bound(self):
        previous = build(roomy_problem())
        short = ForestProblem.from_tables(
            cost=complete_cost(6),
            inbound={i: 10 for i in range(6)},
            outbound={i: 10 for i in range(6)},
            group_members={S0: {1, 2, 3, 4, 5}, S1: {0, 2, 3}},
            latency_bound_ms=1.5,  # only single-hop paths survive
        )
        repair = IncrementalRepairer().repair(previous, short)
        assert_clean(repair.result)
        for request in repair.result.satisfied:
            tree = repair.result.forest.trees[request.stream]
            assert tree.cost_from_source(request.subscriber) < 1.5


class TestOverlayCost:
    def test_empty_forest_costs_nothing(self):
        result = build(roomy_problem())
        empty = IncrementalRepairer().repair(
            result, roomy_problem({S0: {1}})
        )
        assert overlay_cost(empty.result) >= 0.0

    def test_cost_sums_edges(self):
        previous = build(roomy_problem())
        edges = sum(
            1 for _ in previous.forest.edges()
        )
        # Unit off-diagonal costs: total cost equals the edge count.
        assert overlay_cost(previous) == pytest.approx(float(edges))
