"""Write-through table views: strict keys, COW evolution, snapshots.

The dict surfaces (``problem.cost``, ``problem.inbound``/``outbound``)
exist for tests and exploratory code; the hot paths read the dense
matrix and flat lists behind them.  These tests pin the contract that
keeps the two in sync: writes through any dict entry point propagate,
unknown keys are refused loudly (a silent dict-only write would diverge
the surfaces), and evolved problems fork their limit tables on first
write instead of corrupting the previous round's.  Everything runs on
both array backends.
"""

from __future__ import annotations

import pytest

from repro.core.backend import numpy_available, resolve_backend
from repro.core.problem import ForestProblem
from repro.core.registry import make_builder
from repro.errors import ConfigurationError
from repro.session.capacity import UniformCapacityModel
from repro.session.session import SessionConfig, build_session
from repro.util.rng import RngStream
from repro.workload.coverage import CoverageWorkloadModel

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not importable"
)

BACKENDS = ["python", pytest.param("numpy", marks=needs_numpy)]


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def session(tier1_topology, backend):
    return build_session(
        tier1_topology,
        UniformCapacityModel(streams_per_site=6),
        RngStream(7, label="session"),
        SessionConfig(n_sites=5, displays_per_site=2, backend=backend),
    )


@pytest.fixture
def workload(session):
    return CoverageWorkloadModel(interest=0.3).generate(
        session, RngStream(11, label="workload")
    )


@pytest.fixture
def problem(session, workload):
    return ForestProblem.from_workload(session, workload, 200.0)


class TestCostRowStrictKeys:
    def test_unknown_key_rejected(self, problem):
        with pytest.raises(ConfigurationError):
            problem.cost[0]["bogus"] = 1.0
        with pytest.raises(ConfigurationError):
            problem.cost[0][999] = 1.0
        assert "bogus" not in problem.cost[0]
        assert 999 not in problem.cost[0]

    def test_update_writes_through(self, problem):
        problem.cost[0].update({1: 55.5})
        assert problem.edge_cost(0, 1) == 55.5
        assert problem.costs_to(1)[0] == 55.5
        with pytest.raises(ConfigurationError):
            problem.cost[0].update({999: 1.0})

    def test_setdefault_existing_key_is_a_no_op(self, problem):
        before = problem.edge_cost(0, 1)
        assert problem.cost[0].setdefault(1, 77.0) == before
        assert problem.edge_cost(0, 1) == before

    def test_ior_writes_through(self, problem):
        row = problem.cost[2]
        row |= {3: 41.25}
        assert problem.edge_cost(2, 3) == 41.25
        assert problem.costs_row(2)[3] == 41.25


class TestLimitTableStrictKeys:
    def test_unknown_key_rejected(self, problem):
        for table in (problem.inbound, problem.outbound):
            with pytest.raises(ConfigurationError):
                table["bogus"] = 3
            with pytest.raises(ConfigurationError):
                table[999] = 3
            assert 999 not in table

    def test_update_and_ior_write_through(self, problem):
        problem.inbound.update({1: 9})
        assert problem.inbound_limit(1) == 9
        assert problem.inbound_limits()[1] == 9
        problem.outbound |= {2: 4}
        assert problem.outbound_limit(2) == 4
        assert problem.outbound_limits()[2] == 4

    def test_setdefault_existing_key_is_a_no_op(self, problem):
        before = problem.inbound_limit(0)
        assert problem.inbound.setdefault(0, before + 5) == before
        assert problem.inbound_limit(0) == before

    def test_entry_removal_refused(self, problem):
        with pytest.raises(ConfigurationError):
            del problem.inbound[0]
        with pytest.raises(ConfigurationError):
            problem.outbound.pop(0)


class TestEvolvedLimitTablesCopyOnWrite:
    def test_shared_until_first_write(self, problem, workload):
        evolved = ForestProblem.evolve(problem, workload)
        assert evolved.inbound_limits() is problem.inbound_limits()
        assert evolved.outbound_limits() is problem.outbound_limits()

    def test_setitem_forks_instead_of_leaking(self, problem, workload):
        evolved = ForestProblem.evolve(problem, workload)
        before = problem.inbound_limit(1)
        evolved.inbound[1] = 0
        assert evolved.inbound_limit(1) == 0
        assert problem.inbound_limit(1) == before
        assert evolved.inbound_limits() is not problem.inbound_limits()
        # Already forked: the next write stays on the private list.
        forked = evolved.inbound_limits()
        before2 = problem.inbound_limit(2)
        evolved.inbound[2] = 0
        assert evolved.inbound_limits() is forked
        assert problem.inbound_limit(2) == before2

    def test_update_forks_too(self, problem, workload):
        evolved = ForestProblem.evolve(problem, workload)
        before = problem.outbound_limit(3)
        evolved.outbound.update({3: 0})
        assert evolved.outbound_limit(3) == 0
        assert problem.outbound_limit(3) == before

    def test_ancestor_write_after_fork_stays_private(self, problem, workload):
        evolved = ForestProblem.evolve(problem, workload)
        evolved.inbound[0] = 0  # fork
        problem.inbound[0] = 7
        assert evolved.inbound_limit(0) == 0
        assert problem.inbound_limit(0) == 7

    def test_chained_evolution_forks_each_round(self, problem, workload):
        round1 = ForestProblem.evolve(problem, workload)
        round2 = ForestProblem.evolve(round1, workload)
        round2.inbound[1] = 0
        assert round1.inbound_limit(1) == problem.inbound_limit(1)
        assert round1.inbound_limits() is problem.inbound_limits()


@needs_numpy
class TestLimitsArrayMirror:
    """The ndarray mirror the vectorized parent scan reads must track
    every write path of the limit tables, including copy-on-write
    aliasing across evolved rounds."""

    def test_write_drops_cached_mirror(self, problem):
        np_backend = resolve_backend("numpy")
        arr = np_backend.limits_array(problem.outbound)
        assert list(arr) == problem.outbound_limits()
        assert np_backend.limits_array(problem.outbound) is arr
        problem.outbound[2] = 1
        fresh = np_backend.limits_array(problem.outbound)
        assert fresh is not arr
        assert int(fresh[2]) == 1

    def test_ancestor_write_invalidates_view_mirror(self, problem, workload):
        evolved = ForestProblem.evolve(problem, workload)
        np_backend = resolve_backend("numpy")
        np_backend.limits_array(evolved.outbound)
        # The ancestor owns the shared flat twin and writes it in place;
        # the evolved view's cached mirror must not keep the old value.
        problem.outbound[3] = 0
        assert int(np_backend.limits_array(evolved.outbound)[3]) == 0

    def test_fork_leaves_ancestor_mirror_intact(self, problem, workload):
        evolved = ForestProblem.evolve(problem, workload)
        np_backend = resolve_backend("numpy")
        ancestor = np_backend.limits_array(problem.outbound)
        evolved.outbound[1] = 0  # forks the flat twin and the mirror box
        assert np_backend.limits_array(problem.outbound) is ancestor
        assert int(np_backend.limits_array(evolved.outbound)[1]) == 0


class TestBuilderStateSnapshot:
    def test_snapshot_round_trips_flat_tables(self, problem):
        result = make_builder("rj").build(
            problem, RngStream(3, label="build")
        )
        state = result.state
        snap = state.snapshot()
        assert snap["din"] == dict(enumerate(state.din))
        assert snap["dout"] == dict(enumerate(state.dout))
        assert snap["m"] == dict(enumerate(state.m))
        assert snap["m_hat"] == dict(enumerate(state.m_hat))
        # Defensive copy: mutating the snapshot must not touch the state.
        snap["dout"][0] = 10**6
        assert state.dout[0] != 10**6

    def test_rfc_bulk_matches_scalar_probes(self, problem):
        result = make_builder("rj").build(
            problem, RngStream(3, label="build")
        )
        state = result.state
        bulk = list(state.rfc_bulk())
        assert bulk == [state.rfc(i) for i in range(problem.n_nodes)]
