"""Heuristic quality against brute-force optima on tiny instances.

The forest construction problem is NP-complete, but for tiny instances
(≤ 4 nodes, ≤ 6 requests) the optimum — the maximum number of
satisfiable requests — can be found by exhaustive search over join
orders *and* parent choices.  These tests pin two facts:

* no heuristic ever satisfies more requests than the optimum (sanity
  of the brute force and of `verify()`),
* on ample-capacity instances every heuristic IS optimal, and on
  constrained instances RJ stays within a bounded factor of optimal.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.forest import MulticastTree
from repro.core.model import SubscriptionRequest
from repro.core.problem import ForestProblem
from repro.core.registry import available_algorithms, make_builder
from repro.session.streams import StreamId
from repro.util.rng import RngStream
from tests.conftest import complete_cost


def optimal_satisfied(problem: ForestProblem) -> int:
    """Maximum satisfiable requests, by exhaustive search.

    Enumerates every request order; for each order, branches over every
    feasible parent (and the skip option) with plain degree/latency
    feasibility — no reservations, no policy — and returns the best
    count found.  Exponential: use only on tiny instances.
    """
    requests = problem.all_requests()

    best = 0

    def recurse(order: tuple[SubscriptionRequest, ...], index: int,
                trees: dict, din: dict, dout: dict, satisfied: int) -> None:
        nonlocal best
        remaining = len(order) - index
        if satisfied + remaining <= best:
            return  # cannot beat the incumbent
        if index == len(order):
            best = max(best, satisfied)
            return
        request = order[index]
        tree = trees.setdefault(request.stream, MulticastTree(request.stream))
        # Option: skip this request.
        recurse(order, index + 1, trees, din, dout, satisfied)
        if din[request.subscriber] >= problem.inbound_limit(request.subscriber):
            return
        for member in tree.members():
            if dout[member] >= problem.outbound_limit(member):
                continue
            edge = problem.edge_cost(member, request.subscriber)
            path = tree.cost_from_source(member) + edge
            if path >= problem.latency_bound_ms:
                continue
            tree.attach(member, request.subscriber, edge)
            din[request.subscriber] += 1
            dout[member] += 1
            recurse(order, index + 1, trees, din, dout, satisfied + 1)
            dout[member] -= 1
            din[request.subscriber] -= 1
            tree.detach_leaf(request.subscriber)

    for order in itertools.permutations(requests):
        recurse(
            order,
            0,
            {},
            {i: 0 for i in range(problem.n_nodes)},
            {i: 0 for i in range(problem.n_nodes)},
            0,
        )
        if best == len(requests):
            break  # everything satisfiable; no better order exists
    return best


def tiny_instances() -> list[ForestProblem]:
    """Hand-picked tiny instances spanning the three constraint modes."""
    return [
        # Ample capacity: everything satisfiable.
        ForestProblem.from_tables(
            cost=complete_cost(3),
            inbound={i: 5 for i in range(3)},
            outbound={i: 5 for i in range(3)},
            group_members={StreamId(0, 0): {1, 2}, StreamId(1, 0): {0, 2}},
            latency_bound_ms=10.0,
        ),
        # Outbound-starved source: relaying is mandatory.
        ForestProblem.from_tables(
            cost=complete_cost(4),
            inbound={i: 5 for i in range(4)},
            outbound={0: 1, 1: 2, 2: 2, 3: 2},
            group_members={StreamId(0, 0): {1, 2, 3}},
            latency_bound_ms=10.0,
        ),
        # Latency-starved: two-hop paths infeasible for the far node.
        ForestProblem.from_tables(
            cost={
                0: {0: 0.0, 1: 4.0, 2: 7.0},
                1: {0: 4.0, 1: 0.0, 2: 7.0},
                2: {0: 7.0, 1: 7.0, 2: 0.0},
            },
            inbound={i: 5 for i in range(3)},
            outbound={0: 1, 1: 5, 2: 5},
            group_members={StreamId(0, 0): {1, 2}},
            latency_bound_ms=8.0,
        ),
        # Inbound-starved subscriber.
        ForestProblem.from_tables(
            cost=complete_cost(3),
            inbound={0: 5, 1: 1, 2: 5},
            outbound={i: 5 for i in range(3)},
            group_members={
                StreamId(0, 0): {1, 2},
                StreamId(0, 1): {1},
                StreamId(2, 0): {1},
            },
            latency_bound_ms=10.0,
        ),
    ]


class TestBruteForce:
    def test_ample_instance_fully_satisfiable(self):
        problem = tiny_instances()[0]
        assert optimal_satisfied(problem) == problem.total_requests()

    def test_outbound_starved_optimum(self):
        # Source sends once; the rest must chain through subscribers.
        problem = tiny_instances()[1]
        assert optimal_satisfied(problem) == 3

    def test_latency_starved_optimum(self):
        # Node 2 cannot be reached within 8 ms through node 1 (4+7=11),
        # and the source's single slot can serve only one direct child:
        # serving 2 directly (7 < 8) then relaying to 1 via 2 (7+7 >= 8)
        # fails, so the optimum is 2 only when 1 relays... enumerate says:
        problem = tiny_instances()[2]
        assert optimal_satisfied(problem) == 1

    def test_inbound_starved_optimum(self):
        # Node 1 can accept only one of its three requests.
        problem = tiny_instances()[3]
        assert optimal_satisfied(problem) == 2


class TestHeuristicsAgainstOptimum:
    @pytest.mark.parametrize("instance_index", range(4))
    @pytest.mark.parametrize("name", sorted(available_algorithms()))
    def test_never_exceeds_optimum(self, instance_index, name):
        problem = tiny_instances()[instance_index]
        optimum = optimal_satisfied(problem)
        for seed in range(5):
            result = make_builder(name).build(problem, RngStream(seed))
            result.verify()
            assert len(result.satisfied) <= optimum

    @pytest.mark.parametrize("name", sorted(available_algorithms()))
    def test_optimal_on_ample_instance(self, name):
        problem = tiny_instances()[0]
        result = make_builder(name).build(problem, RngStream(1))
        assert len(result.satisfied) == problem.total_requests()

    def test_rj_within_half_of_optimum(self):
        """On the constrained instances RJ keeps >= half the optimum
        across seeds (greedy join with reservations is 1/2-competitive
        here empirically; this is a regression floor, not a theorem)."""
        for problem in tiny_instances()[1:]:
            optimum = optimal_satisfied(problem)
            for seed in range(10):
                result = make_builder("rj").build(problem, RngStream(seed))
                assert len(result.satisfied) * 2 >= optimum
