"""Tests for incremental overlay maintenance."""

from __future__ import annotations

import pytest

from repro.errors import OverlayError, SubscriptionError
from repro.core.incremental import (
    add_subscription,
    churn_rate,
    remove_subscription,
)
from repro.core.model import RejectionReason, SubscriptionRequest
from repro.core.problem import ForestProblem
from repro.core.randomized import RandomJoinBuilder
from repro.session.streams import StreamId
from repro.util.rng import RngStream
from tests.conftest import complete_cost


def roomy_problem() -> ForestProblem:
    """Four nodes with ample capacity; node 3 initially subscribes nothing."""
    return ForestProblem.from_tables(
        cost=complete_cost(4),
        inbound={i: 10 for i in range(4)},
        outbound={i: 10 for i in range(4)},
        group_members={
            StreamId(0, 0): {1, 2, 3},
            StreamId(1, 0): {0, 2},
        },
        latency_bound_ms=10.0,
    )


@pytest.fixture
def built(rng):
    result = RandomJoinBuilder().build(roomy_problem(), rng)
    result.verify()
    return result


class TestAddSubscription:
    def test_add_after_rejection_rejoins(self, rng):
        # Saturate by tiny inbound at node 3, then lift... capacity is
        # immutable, so instead: reject by latency and re-add a feasible
        # request after costs are irrelevant -> use a fresh group member
        # that was rejected during the build.
        problem = ForestProblem.from_tables(
            cost=complete_cost(3, off_diagonal=99.0),
            inbound={i: 5 for i in range(3)},
            outbound={i: 5 for i in range(3)},
            group_members={StreamId(0, 0): {1, 2}},
            latency_bound_ms=10.0,
        )
        result = RandomJoinBuilder().build(problem, rng)
        assert len(result.rejected) == 2  # everything latency-infeasible
        # Make node 1 reachable and retry incrementally.
        problem.cost[0][1] = 1.0
        request = SubscriptionRequest(1, StreamId(0, 0))
        outcome = add_subscription(result, request)
        assert outcome.accepted
        assert request in result.forest.satisfied
        assert result.u_hat(1, 0) == 0  # stale rejection record dropped
        result.verify()

    def test_add_already_satisfied_rejected(self, built):
        satisfied = built.satisfied[0]
        with pytest.raises(OverlayError):
            add_subscription(built, satisfied)

    def test_add_unknown_subscriber_rejected(self, built):
        with pytest.raises(SubscriptionError):
            add_subscription(
                built, SubscriptionRequest(99, StreamId(0, 0))
            )

    def test_add_respects_bounds(self, rng):
        problem = ForestProblem.from_tables(
            cost=complete_cost(3),
            inbound={0: 5, 1: 0, 2: 5},
            outbound={i: 5 for i in range(3)},
            group_members={StreamId(0, 0): {1, 2}},
            latency_bound_ms=10.0,
        )
        result = RandomJoinBuilder().build(problem, rng)
        request = next(r for r, _ in result.rejected if r.subscriber == 1)
        outcome = add_subscription(result, request)
        assert not outcome.accepted
        assert outcome.reason is RejectionReason.INBOUND_SATURATED
        result.verify()

    def test_add_with_swap_fallback(self, rng):
        # Build a saturated instance where plain join fails but a CO-RJ
        # style swap can serve the request.
        problem = ForestProblem.from_tables(
            cost=complete_cost(4),
            inbound={i: 10 for i in range(4)},
            outbound={0: 1, 1: 1, 2: 10, 3: 10},
            group_members={
                StreamId(0, 0): {3},      # critical: u(3,0) = 1
                StreamId(1, 0): {3},
                StreamId(1, 1): {3},
            },
            latency_bound_ms=10.0,
        )
        result = RandomJoinBuilder().build(problem, RngStream(17))
        result.verify()
        rejected = [r for r, _ in result.rejected]
        if not rejected:
            pytest.skip("seed produced no rejection to repair")
        request = rejected[0]
        outcome = add_subscription(result, request, use_swap=True)
        result.verify()
        # swap either worked or the rejection stands recorded
        if outcome.accepted:
            assert request in result.forest.satisfied
        else:
            assert any(r == request for r, _ in result.forest.rejected)


class TestRemoveSubscription:
    def test_remove_leaf_releases_capacity(self, built):
        leafs = [
            request
            for request in built.satisfied
            if built.forest.trees[request.stream].is_leaf(request.subscriber)
        ]
        request = leafs[0]
        parent = built.forest.trees[request.stream].parent(request.subscriber)
        dout_before = built.state.dout[parent]
        remove_subscription(built, request)
        assert built.state.dout[parent] == dout_before - 1
        assert request not in built.forest.satisfied
        built.forest.validate()

    def test_remove_interior_keeps_edge(self, built):
        interior = [
            request
            for request in built.satisfied
            if not built.forest.trees[request.stream].is_leaf(
                request.subscriber
            )
        ]
        if not interior:
            pytest.skip("no interior subscriber in this build")
        request = interior[0]
        remove_subscription(built, request)
        # The node keeps relaying: still in the tree.
        assert request.subscriber in built.forest.trees[request.stream]
        assert request not in built.forest.satisfied

    def test_remove_unsatisfied_rejected(self, built):
        ghost = SubscriptionRequest(3, StreamId(1, 0))
        if ghost in built.forest.satisfied:
            built.forest.satisfied.remove(ghost)
        with pytest.raises(OverlayError):
            remove_subscription(built, ghost)

    def test_add_after_remove_roundtrip(self, built):
        leafs = [
            request
            for request in built.satisfied
            if built.forest.trees[request.stream].is_leaf(request.subscriber)
        ]
        request = leafs[0]
        remove_subscription(built, request)
        outcome = add_subscription(built, request)
        assert outcome.accepted
        built.verify()


class TestChurnRate:
    def test_identical_builds_zero_churn(self, rng):
        problem = roomy_problem()
        a = RandomJoinBuilder().build(problem, RngStream(3))
        b = RandomJoinBuilder().build(problem, RngStream(3))
        assert churn_rate(a, b) == 0.0

    def test_different_shuffles_nonnegative(self, small_problem):
        a = RandomJoinBuilder().build(small_problem, RngStream(1))
        b = RandomJoinBuilder().build(small_problem, RngStream(2))
        assert 0.0 <= churn_rate(a, b) <= 1.0

    def test_disjoint_satisfied_zero(self, rng):
        problem = roomy_problem()
        a = RandomJoinBuilder().build(problem, RngStream(3))
        b = RandomJoinBuilder().build(problem, RngStream(3))
        b.forest.satisfied.clear()
        assert churn_rate(a, b) == 0.0
