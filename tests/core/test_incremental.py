"""Tests for incremental overlay maintenance."""

from __future__ import annotations

import pytest

from repro.errors import OverlayError, SubscriptionError
from repro.core.incremental import (
    _has_rejection_record,
    add_subscription,
    churn_rate,
    remove_subscription,
)
from repro.core.model import RejectionReason, SubscriptionRequest
from repro.core.problem import ForestProblem
from repro.core.randomized import RandomJoinBuilder
from repro.session.streams import StreamId
from repro.util.rng import RngStream
from tests.conftest import complete_cost


def roomy_problem() -> ForestProblem:
    """Four nodes with ample capacity; node 3 initially subscribes nothing."""
    return ForestProblem.from_tables(
        cost=complete_cost(4),
        inbound={i: 10 for i in range(4)},
        outbound={i: 10 for i in range(4)},
        group_members={
            StreamId(0, 0): {1, 2, 3},
            StreamId(1, 0): {0, 2},
        },
        latency_bound_ms=10.0,
    )


@pytest.fixture
def built(rng):
    result = RandomJoinBuilder().build(roomy_problem(), rng)
    result.verify()
    return result


class TestAddSubscription:
    def test_add_after_rejection_rejoins(self, rng):
        # Saturate by tiny inbound at node 3, then lift... capacity is
        # immutable, so instead: reject by latency and re-add a feasible
        # request after costs are irrelevant -> use a fresh group member
        # that was rejected during the build.
        problem = ForestProblem.from_tables(
            cost=complete_cost(3, off_diagonal=99.0),
            inbound={i: 5 for i in range(3)},
            outbound={i: 5 for i in range(3)},
            group_members={StreamId(0, 0): {1, 2}},
            latency_bound_ms=10.0,
        )
        result = RandomJoinBuilder().build(problem, rng)
        assert len(result.rejected) == 2  # everything latency-infeasible
        # Make node 1 reachable and retry incrementally.
        problem.cost[0][1] = 1.0
        request = SubscriptionRequest(1, StreamId(0, 0))
        outcome = add_subscription(result, request)
        assert outcome.accepted
        assert request in result.forest.satisfied
        assert result.u_hat(1, 0) == 0  # stale rejection record dropped
        result.verify()

    def test_add_already_satisfied_rejected(self, built):
        satisfied = built.satisfied[0]
        with pytest.raises(OverlayError):
            add_subscription(built, satisfied)

    def test_add_unknown_subscriber_rejected(self, built):
        with pytest.raises(SubscriptionError):
            add_subscription(
                built, SubscriptionRequest(99, StreamId(0, 0))
            )

    def test_add_respects_bounds(self, rng):
        problem = ForestProblem.from_tables(
            cost=complete_cost(3),
            inbound={0: 5, 1: 0, 2: 5},
            outbound={i: 5 for i in range(3)},
            group_members={StreamId(0, 0): {1, 2}},
            latency_bound_ms=10.0,
        )
        result = RandomJoinBuilder().build(problem, rng)
        request = next(r for r, _ in result.rejected if r.subscriber == 1)
        outcome = add_subscription(result, request)
        assert not outcome.accepted
        assert outcome.reason is RejectionReason.INBOUND_SATURATED
        result.verify()

    def test_add_with_swap_fallback(self, rng):
        # Build a saturated instance where plain join fails but a CO-RJ
        # style swap can serve the request.
        problem = ForestProblem.from_tables(
            cost=complete_cost(4),
            inbound={i: 10 for i in range(4)},
            outbound={0: 1, 1: 1, 2: 10, 3: 10},
            group_members={
                StreamId(0, 0): {3},      # critical: u(3,0) = 1
                StreamId(1, 0): {3},
                StreamId(1, 1): {3},
            },
            latency_bound_ms=10.0,
        )
        result = RandomJoinBuilder().build(problem, RngStream(17))
        result.verify()
        rejected = [r for r, _ in result.rejected]
        if not rejected:
            pytest.skip("seed produced no rejection to repair")
        request = rejected[0]
        outcome = add_subscription(result, request, use_swap=True)
        result.verify()
        # swap either worked or the rejection stands recorded
        if outcome.accepted:
            assert request in result.forest.satisfied
        else:
            assert any(r == request for r, _ in result.forest.rejected)


class TestRemoveSubscription:
    def test_remove_leaf_releases_capacity(self, built):
        leafs = [
            request
            for request in built.satisfied
            if built.forest.trees[request.stream].is_leaf(request.subscriber)
        ]
        request = leafs[0]
        parent = built.forest.trees[request.stream].parent(request.subscriber)
        dout_before = built.state.dout[parent]
        remove_subscription(built, request)
        assert built.state.dout[parent] == dout_before - 1
        assert request not in built.forest.satisfied
        built.forest.validate()

    def test_remove_interior_keeps_edge(self, built):
        interior = [
            request
            for request in built.satisfied
            if not built.forest.trees[request.stream].is_leaf(
                request.subscriber
            )
        ]
        if not interior:
            pytest.skip("no interior subscriber in this build")
        request = interior[0]
        remove_subscription(built, request)
        # The node keeps relaying: still in the tree.
        assert request.subscriber in built.forest.trees[request.stream]
        assert request not in built.forest.satisfied

    def test_remove_unsatisfied_rejected(self, built):
        ghost = SubscriptionRequest(3, StreamId(1, 0))
        if ghost in built.forest.satisfied:
            built.forest.satisfied.remove(ghost)
        with pytest.raises(OverlayError):
            remove_subscription(built, ghost)

    def test_add_after_remove_roundtrip(self, built):
        leafs = [
            request
            for request in built.satisfied
            if built.forest.trees[request.stream].is_leaf(request.subscriber)
        ]
        request = leafs[0]
        remove_subscription(built, request)
        outcome = add_subscription(built, request)
        assert outcome.accepted
        built.verify()


class TestChurnRate:
    def test_identical_builds_zero_churn(self, rng):
        problem = roomy_problem()
        a = RandomJoinBuilder().build(problem, RngStream(3))
        b = RandomJoinBuilder().build(problem, RngStream(3))
        assert churn_rate(a, b) == 0.0

    def test_different_shuffles_nonnegative(self, small_problem):
        a = RandomJoinBuilder().build(small_problem, RngStream(1))
        b = RandomJoinBuilder().build(small_problem, RngStream(2))
        assert 0.0 <= churn_rate(a, b) <= 1.0

    def test_disjoint_satisfied_zero(self, rng):
        problem = roomy_problem()
        a = RandomJoinBuilder().build(problem, RngStream(3))
        b = RandomJoinBuilder().build(problem, RngStream(3))
        b.forest.satisfied.clear()
        assert churn_rate(a, b) == 0.0

    def test_empty_forests_zero(self):
        """Both builds empty: nothing in common, churn is 0 (not NaN)."""
        problem = ForestProblem.from_tables(
            cost=complete_cost(2, off_diagonal=99.0),
            inbound={0: 5, 1: 5},
            outbound={0: 5, 1: 5},
            group_members={StreamId(0, 0): {1}},
            latency_bound_ms=10.0,  # everything latency-infeasible
        )
        a = RandomJoinBuilder().build(problem, RngStream(1))
        b = RandomJoinBuilder().build(problem, RngStream(2))
        assert not a.satisfied and not b.satisfied
        assert churn_rate(a, b) == 0.0

    def test_single_tree_moved_parent_counted(self):
        """One common request whose parent differs: churn is exactly 1."""
        problem = roomy_problem()
        a = RandomJoinBuilder().build(problem, RngStream(3))
        b = RandomJoinBuilder().build(problem, RngStream(3))
        request = next(
            r
            for r in a.satisfied
            if a.forest.trees[r.stream].is_leaf(r.subscriber)
        )
        tree = b.forest.trees[request.stream]
        old_parent = tree.parent(request.subscriber)
        new_parent = next(
            node
            for node in tree.members()
            if node not in (request.subscriber, old_parent)
            and not _descends(tree, node, request.subscriber)
        )
        tree.detach_leaf(request.subscriber)
        tree.attach(new_parent, request.subscriber,
                    problem.edge_cost(new_parent, request.subscriber))
        moved = sum(
            1
            for r in b.satisfied
            if r in a.satisfied
            and b.forest.trees[r.stream].parent(r.subscriber)
            != a.forest.trees[r.stream].parent(r.subscriber)
        )
        common = sum(1 for r in b.satisfied if r in a.satisfied)
        assert churn_rate(a, b) == moved / common


def _descends(tree, node: int, ancestor: int) -> bool:
    """True when ``node`` sits in ``ancestor``'s subtree."""
    current = node
    while current is not None:
        if current == ancestor:
            return True
        current = tree.parent(current)
    return False


class TestRejectionRecords:
    def test_has_rejection_record_empty(self, built):
        built.forest.rejected.clear()
        ghost = SubscriptionRequest(3, StreamId(1, 0))
        assert not _has_rejection_record(built, ghost)

    def test_has_rejection_record_matches_exact_request(self, built):
        ghost = SubscriptionRequest(3, StreamId(1, 0))
        built.forest.rejected.append(
            (ghost, RejectionReason.TREE_SATURATED)
        )
        assert _has_rejection_record(built, ghost)
        other = SubscriptionRequest(2, StreamId(1, 0))
        if not any(r == other for r, _ in built.forest.rejected):
            assert not _has_rejection_record(built, other)


class TestRemoveEdgeCases:
    def test_remove_from_empty_forest_raises(self, rng):
        problem = roomy_problem()
        result = RandomJoinBuilder().build(problem, rng)
        result.forest.satisfied.clear()
        result.forest.trees.clear()
        with pytest.raises(OverlayError):
            remove_subscription(
                result, SubscriptionRequest(1, StreamId(0, 0))
            )

    def test_remove_victim_evicted_request_raises(self, built):
        """A CO-RJ victim is no longer satisfied; removing it must fail."""
        victim = next(
            r
            for r in built.satisfied
            if built.forest.trees[r.stream].is_leaf(r.subscriber)
        )
        tree = built.forest.trees[victim.stream]
        parent = tree.detach_leaf(victim.subscriber)
        built.state.record_detach(tree, parent, victim.subscriber)
        built.forest.satisfied.remove(victim)
        built.forest.rejected.append(
            (victim, RejectionReason.VICTIM_SWAPPED)
        )
        with pytest.raises(OverlayError):
            remove_subscription(built, victim)

    def test_remove_last_leaf_restores_reservation(self, rng):
        """Detaching the source's only child re-reserves the m-hat slot."""
        problem = ForestProblem.from_tables(
            cost=complete_cost(2),
            inbound={0: 5, 1: 5},
            outbound={0: 5, 1: 5},
            group_members={StreamId(0, 0): {1}},
            latency_bound_ms=10.0,
        )
        result = RandomJoinBuilder().build(problem, rng)
        request = SubscriptionRequest(1, StreamId(0, 0))
        assert request in result.satisfied
        assert result.state.m_hat[0] == 0  # released on dissemination
        remove_subscription(result, request)
        assert not result.forest.trees[StreamId(0, 0)].disseminated
        assert result.state.m_hat[0] == 1  # reservation re-established
        assert result.state.dout[0] == 0

    def test_remove_invalidates_u_hat_cache(self, built):
        """Regression: stale ``u_hat`` caches survived a leave."""
        built.u_hat_matrix()  # populate the cache
        leaf = next(
            r
            for r in built.satisfied
            if built.forest.trees[r.stream].is_leaf(r.subscriber)
        )
        remove_subscription(built, leaf)
        assert built._u_hat_cache is None
        # A rejection recorded after the leave must be visible the next
        # time the matrix is read (the stale cache would have hidden it).
        ghost = SubscriptionRequest(leaf.subscriber, leaf.stream)
        built.forest.rejected.append(
            (ghost, RejectionReason.TREE_SATURATED)
        )
        assert built.u_hat(ghost.subscriber, ghost.source) == 1
