"""Equivalence suite for diffed problem assembly.

``ForestProblem.evolve`` must be indistinguishable from
``ForestProblem.from_workload`` on the same workload: identical costs,
limits, groups and derived tables, hence bit-identical build results
under the same RNG — across every named scenario, seed and builder, and
through the live control plane (a scenario run under diffed assembly
emits the very same directives as one under scratch assembly).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.model import MulticastGroup
from repro.core.problem import ForestProblem, ProblemDelta
from repro.core.registry import make_builder
from repro.errors import ConfigurationError, SubscriptionError
from repro.scenarios.library import get_scenario, scenario_names
from repro.scenarios.runtime import ScenarioRuntime
from repro.session.capacity import UniformCapacityModel
from repro.session.session import SessionConfig, build_session
from repro.session.streams import StreamId
from repro.topology.backbone import load_backbone
from repro.util.rng import RngStream
from repro.workload.spec import SubscriptionWorkload


def make_session(n_sites: int = 8, seed: int = 3):
    return build_session(
        load_backbone(f"synthetic-{n_sites}"),
        UniformCapacityModel(streams_per_site=3),
        RngStream(seed, label="evolve-test").spawn("session"),
        SessionConfig(n_sites=n_sites, displays_per_site=2),
    )


def workload_of(session, site_sets) -> SubscriptionWorkload:
    return SubscriptionWorkload.from_site_sets(session.n_sites, site_sets)


def assert_equivalent(evolved: ForestProblem, scratch: ForestProblem) -> None:
    """Field-exact equality of the two assemblies' observable surfaces."""
    assert evolved.n_nodes == scratch.n_nodes
    assert evolved.latency_bound_ms == scratch.latency_bound_ms
    assert evolved.groups == scratch.groups
    assert evolved.u_matrix() == scratch.u_matrix()
    assert dict(evolved.inbound) == dict(scratch.inbound)
    assert dict(evolved.outbound) == dict(scratch.outbound)
    n = scratch.n_nodes
    assert evolved.inbound_limits() == scratch.inbound_limits()
    assert evolved.outbound_limits() == scratch.outbound_limits()
    assert evolved.m_table() == scratch.m_table()
    for node in range(n):
        assert evolved.costs_row(node) == scratch.costs_row(node)
        assert evolved.costs_to(node) == scratch.costs_to(node)
        assert evolved.streams_to_send(node) == scratch.streams_to_send(node)
    assert evolved.total_requests() == scratch.total_requests()
    assert evolved.all_requests() == scratch.all_requests()


def assert_builds_identical(
    evolved: ForestProblem, scratch: ForestProblem, algorithm: str, seed: int
) -> None:
    a = make_builder(algorithm).build(evolved, RngStream(seed))
    b = make_builder(algorithm).build(scratch, RngStream(seed))
    assert sorted(a.forest.edges()) == sorted(b.forest.edges())
    assert a.satisfied == b.satisfied
    assert a.rejected == b.rejected
    assert a.state.snapshot() == b.state.snapshot()


class TestProblemDelta:
    def test_empty_delta(self):
        group = MulticastGroup(stream=StreamId(0, 0), subscribers=frozenset({1}))
        delta = ProblemDelta.between([group], [group])
        assert delta.empty
        assert delta.touched_groups == 0

    def test_added_removed_changed(self):
        s0, s1, s2 = StreamId(0, 0), StreamId(1, 0), StreamId(2, 0)
        old = [
            MulticastGroup(stream=s0, subscribers=frozenset({1})),
            MulticastGroup(stream=s1, subscribers=frozenset({0, 2})),
        ]
        new = [
            MulticastGroup(stream=s1, subscribers=frozenset({2})),
            MulticastGroup(stream=s2, subscribers=frozenset({0})),
        ]
        delta = ProblemDelta.between(old, new)
        assert [g.stream for g in delta.added] == [s2]
        assert [g.stream for g in delta.removed] == [s0]
        assert [(a.stream, b.stream) for a, b in delta.changed] == [(s1, s1)]
        assert delta.touched_groups == 3


class TestEvolveUnit:
    def setup_method(self):
        self.session = make_session()
        self.base = workload_of(
            self.session,
            {
                0: (StreamId(1, 0), StreamId(2, 0)),
                1: (StreamId(0, 0), StreamId(2, 1)),
                3: (StreamId(0, 1),),
            },
        )
        self.prev = ForestProblem.from_workload(self.session, self.base, 120.0)

    def evolve_and_check(self, workload: SubscriptionWorkload) -> ForestProblem:
        evolved = ForestProblem.evolve(self.prev, workload)
        scratch = ForestProblem.from_workload(self.session, workload, 120.0)
        assert_equivalent(evolved, scratch)
        assert_builds_identical(evolved, scratch, "rj", seed=11)
        assert_builds_identical(evolved, scratch, "co-rj", seed=11)
        return evolved

    def test_empty_diff_shares_tables(self):
        evolved = self.evolve_and_check(self.base)
        assert evolved.dense_cost_matrix() is self.prev.dense_cost_matrix()
        assert evolved.m_table() is self.prev.m_table()

    def test_subscription_edit(self):
        self.evolve_and_check(
            workload_of(
                self.session,
                {
                    0: (StreamId(1, 0),),  # dropped 2:0
                    1: (StreamId(0, 0), StreamId(2, 1)),
                    3: (StreamId(0, 1), StreamId(2, 0)),  # picked up 2:0
                },
            )
        )

    def test_site_departs_mid_epoch(self):
        """Site 0 withdraws: its requests and its published streams go."""
        self.evolve_and_check(
            workload_of(
                self.session,
                {
                    1: (StreamId(2, 1),),
                    3: (StreamId(2, 0),),
                },
            )
        )

    def test_site_joins(self):
        self.evolve_and_check(
            workload_of(
                self.session,
                {
                    0: (StreamId(1, 0), StreamId(2, 0)),
                    1: (StreamId(0, 0), StreamId(2, 1)),
                    3: (StreamId(0, 1),),
                    5: (StreamId(0, 0), StreamId(1, 1), StreamId(3, 0)),
                },
            )
        )

    def test_full_churn_diff(self):
        """Every group replaced: the delta touches the whole workload."""
        evolved = self.evolve_and_check(
            workload_of(
                self.session,
                {
                    2: (StreamId(4, 0), StreamId(5, 0)),
                    4: (StreamId(6, 1),),
                    6: (StreamId(7, 2), StreamId(4, 1)),
                },
            )
        )
        # Still shares the session-constant tables with its ancestor.
        assert evolved.dense_cost_matrix() is self.prev.dense_cost_matrix()
        assert evolved.inbound_limits() is self.prev.inbound_limits()

    def test_empty_workload(self):
        evolved = ForestProblem.evolve(
            self.prev, workload_of(self.session, {})
        )
        assert evolved.groups == []
        assert evolved.u_matrix() == {}
        assert evolved.m_table() == [0] * self.session.n_sites

    def test_chained_evolution(self):
        """Round after round of evolution stays equivalent to scratch."""
        problem = self.prev
        rng = RngStream(23, label="chain")
        sites = self.session.n_sites
        for step in range(6):
            step_rng = rng.spawn(f"step-{step}")
            site_sets = {}
            for site in range(sites):
                streams = [
                    StreamId(other, index)
                    for other in range(sites)
                    if other != site
                    for index in range(2)
                ]
                k = step_rng.randint(0, 3)
                if k:
                    site_sets[site] = tuple(
                        sorted(step_rng.sample(streams, k))
                    )
            workload = workload_of(self.session, site_sets)
            evolved = ForestProblem.evolve(problem, workload)
            scratch = ForestProblem.from_workload(self.session, workload, 120.0)
            assert_equivalent(evolved, scratch)
            assert_builds_identical(evolved, scratch, "rj", seed=step)
            problem = evolved

    def test_site_count_mismatch_rejected(self):
        other = SubscriptionWorkload(n_sites=4)
        with pytest.raises(SubscriptionError):
            ForestProblem.evolve(self.prev, other)

    def test_streams_to_send_invalidated(self):
        before = self.prev.streams_to_send(2)
        assert before == 2  # streams 2:0 and 2:1 both requested
        evolved = ForestProblem.evolve(
            self.prev,
            workload_of(self.session, {1: (StreamId(2, 1),)}),
        )
        assert evolved.streams_to_send(2) == 1
        assert self.prev.streams_to_send(2) == before  # ancestor untouched


SEEDS = (13, 29)


@pytest.mark.parametrize("algorithm", ("rj", "co-rj"))
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", scenario_names())
class TestScenarioEquivalenceMatrix:
    """Diffed assembly is bit-identical to scratch through the control plane.

    Each named scenario runs twice under the incremental rebuild policy
    — once evolving each round's problem, once rebuilding it from the
    session — and must emit identical directives with identical audit
    digests.
    """

    def test_diffed_matches_scratch(self, name, seed, algorithm):
        base = replace(
            get_scenario(name, sites=6, seed=seed),
            algorithm=algorithm,
            rebuild_policy="incremental",
        )
        diffed_rt = ScenarioRuntime(replace(base, problem_assembly="diffed"))
        scratch_rt = ScenarioRuntime(replace(base, problem_assembly="scratch"))
        diffed = diffed_rt.run()
        scratch = scratch_rt.run()
        assert diffed_rt.directives == scratch_rt.directives
        assert diffed.audit is not None and scratch.audit is not None
        assert diffed.audit.digest == scratch.audit.digest
        assert diffed.ok, diffed.summary()
        assert diffed.rounds == scratch.rounds
        assert diffed.rounds >= 2
        # The first round has no previous problem; every later one diffs.
        assert diffed.assemblies_scratch == 1
        assert diffed.assemblies_diffed == diffed.rounds - 1
        assert scratch.assemblies_diffed == 0


class TestAssemblyPolicyPlumbing:
    def test_auto_resolves_by_rebuild_policy(self):
        spec = get_scenario("fov-thrash", sites=5, seed=13)
        always = ScenarioRuntime(spec, audit=False).run()
        assert always.assemblies_diffed == 0
        assert always.assemblies_scratch == always.rounds
        incremental = ScenarioRuntime(
            replace(spec, rebuild_policy="incremental"), audit=False
        ).run()
        assert incremental.assemblies_diffed == incremental.rounds - 1

    def test_diffed_forced_under_always_is_equivalent(self):
        spec = get_scenario("mass-leave", sites=6, seed=13)
        diffed_rt = ScenarioRuntime(replace(spec, problem_assembly="diffed"))
        scratch_rt = ScenarioRuntime(spec)
        diffed = diffed_rt.run()
        scratch = scratch_rt.run()
        assert diffed_rt.directives == scratch_rt.directives
        assert diffed.audit.digest == scratch.audit.digest
        assert diffed.assemblies_diffed == diffed.rounds - 1

    def test_unknown_assembly_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(
                get_scenario("fov-thrash", sites=4, seed=1),
                problem_assembly="bogus",
            )

    def test_summary_reports_assembly_counts(self):
        spec = replace(
            get_scenario("fov-thrash", sites=5, seed=13),
            rebuild_policy="incremental",
        )
        report = ScenarioRuntime(spec, audit=False).run()
        assert "problem assembly [auto]" in report.summary()
        assert f"{report.assemblies_diffed} diffed" in report.summary()
