"""Tests for the builder template and BuildResult."""

from __future__ import annotations

import pytest

from repro.core.model import RejectionReason, SubscriptionRequest
from repro.core.problem import ForestProblem
from repro.core.randomized import RandomJoinBuilder
from repro.session.streams import StreamId
from tests.conftest import complete_cost


def one_group_problem(outbound_source: int = 5) -> ForestProblem:
    return ForestProblem.from_tables(
        cost=complete_cost(3),
        inbound={0: 5, 1: 5, 2: 5},
        outbound={0: outbound_source, 1: 5, 2: 5},
        group_members={StreamId(0, 0): {1, 2}},
        latency_bound_ms=10.0,
    )


class TestBuildResult:
    def test_accounting_exact(self, rng):
        result = RandomJoinBuilder().build(one_group_problem(), rng)
        assert result.total_requests == 2
        assert not result.rejected
        result.verify()

    def test_rejection_recorded_with_reason(self, rng):
        # Source with zero usable out-degree: only the reserved first
        # dissemination succeeds... with O=1 even that one succeeds and
        # the second request must relay through node 1 or 2.
        result = RandomJoinBuilder().build(one_group_problem(1), rng)
        result.verify()
        assert result.total_requests == 2
        # both can still be satisfied: second subscriber relays via first
        assert len(result.satisfied) == 2

    def test_latency_starvation_rejects(self, rng):
        problem = ForestProblem.from_tables(
            cost={
                0: {0: 0.0, 1: 1.0, 2: 50.0},
                1: {0: 1.0, 1: 0.0, 2: 50.0},
                2: {0: 50.0, 1: 50.0, 2: 0.0},
            },
            inbound={0: 5, 1: 5, 2: 5},
            outbound={0: 5, 1: 5, 2: 5},
            group_members={StreamId(0, 0): {1, 2}},
            latency_bound_ms=10.0,
        )
        result = RandomJoinBuilder().build(problem, rng)
        rejected = {r.subscriber for r, _ in result.rejected}
        assert rejected == {2}
        reasons = {reason for _, reason in result.rejected}
        assert reasons == {RejectionReason.TREE_SATURATED}

    def test_verify_detects_planted_violation(self, rng):
        result = RandomJoinBuilder().build(one_group_problem(), rng)
        result.state.dout[0] = 99
        with pytest.raises(Exception):
            result.verify()

    def test_invalid_reservation_mode(self, rng):
        builder = RandomJoinBuilder(reservation_mode="bogus")
        with pytest.raises(ValueError):
            builder.build(one_group_problem(), rng)

    @pytest.mark.parametrize("mode", ["lazy", "phase", "global", "off"])
    def test_all_reservation_modes_verify(self, small_problem, rng, mode):
        builder = RandomJoinBuilder(reservation_mode=mode)
        builder.build(small_problem, rng.spawn(mode)).verify()

    def test_u_hat_counts_by_pair(self, rng):
        problem = ForestProblem.from_tables(
            cost=complete_cost(2, off_diagonal=99.0),
            inbound={0: 5, 1: 5},
            outbound={0: 5, 1: 5},
            group_members={StreamId(0, 0): {1}},
            latency_bound_ms=10.0,
        )
        result = RandomJoinBuilder().build(problem, rng)
        assert result.u_hat(1, 0) == 1

    def test_satisfied_request_parents_exist(self, small_problem, rng):
        result = RandomJoinBuilder().build(small_problem, rng)
        for request in result.satisfied:
            tree = result.forest.trees[request.stream]
            assert tree.parent(request.subscriber) is not None
