"""Tests for the display-driven workload generator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.util.rng import RngStream
from repro.workload.generator import WorkloadGenerator
from repro.workload.spec import WorkloadSpec
from repro.workload.uniform import UniformPopularity
from repro.workload.zipf import ZipfPopularity


class TestGenerator:
    def test_no_self_subscriptions(self, small_session, rng):
        generator = WorkloadGenerator(
            session=small_session, popularity=UniformPopularity()
        )
        workload = generator.generate(rng)
        for site, streams in workload.subscriptions.items():
            assert all(stream.site != site for stream in streams)

    def test_union_bounded_by_display_budget(self, small_session, rng):
        spec = WorkloadSpec(displays_per_site=2, fov_size=3)
        generator = WorkloadGenerator(
            session=small_session, popularity=UniformPopularity(), spec=spec
        )
        workload = generator.generate(rng)
        for streams in workload.subscriptions.values():
            assert len(streams) <= 2 * 3

    def test_deterministic(self, small_session):
        generator = WorkloadGenerator(
            session=small_session, popularity=UniformPopularity()
        )
        a = generator.generate(RngStream(3))
        b = generator.generate(RngStream(3))
        assert a.subscriptions == b.subscriptions

    def test_zipf_prefers_front_cameras(self, small_session):
        generator = WorkloadGenerator(
            session=small_session,
            popularity=ZipfPopularity(exponent=1.5),
            spec=WorkloadSpec(displays_per_site=2, fov_size=2),
        )
        root = RngStream(5)
        front, rear = 0, 0
        for k in range(50):
            workload = generator.generate(root.spawn(str(k)))
            for streams in workload.subscriptions.values():
                for stream in streams:
                    if stream.index == 0:
                        front += 1
                    elif stream.index >= 4:
                        rear += 1
        assert front > rear

    def test_samples_count(self, small_session, rng):
        generator = WorkloadGenerator(
            session=small_session, popularity=UniformPopularity()
        )
        samples = list(generator.samples(5, rng))
        assert len(samples) == 5
        # independent draws should not all be identical
        assert len({tuple(sorted(s.requests())) for s in samples}) > 1

    def test_samples_invalid_count(self, small_session, rng):
        generator = WorkloadGenerator(
            session=small_session, popularity=UniformPopularity()
        )
        with pytest.raises(ConfigurationError):
            list(generator.samples(0, rng))

    def test_spec_popularity_recorded(self, small_session):
        generator = WorkloadGenerator(
            session=small_session, popularity=ZipfPopularity()
        )
        assert generator.spec.popularity == "zipf"
