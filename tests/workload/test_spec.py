"""Tests for the subscription workload data model."""

from __future__ import annotations

import pytest

from repro.errors import SubscriptionError
from repro.session.streams import StreamId
from repro.workload.spec import SubscriptionWorkload, WorkloadSpec


def make_workload() -> SubscriptionWorkload:
    return SubscriptionWorkload.from_site_sets(
        3,
        {
            0: [StreamId(1, 0), StreamId(1, 1), StreamId(2, 0)],
            1: [StreamId(0, 0)],
            2: [StreamId(0, 0), StreamId(1, 0)],
        },
    )


class TestWorkloadSpec:
    def test_defaults(self):
        spec = WorkloadSpec()
        assert spec.displays_per_site >= 1

    def test_invalid(self):
        with pytest.raises(SubscriptionError):
            WorkloadSpec(displays_per_site=0)
        with pytest.raises(SubscriptionError):
            WorkloadSpec(fov_size=0)


class TestSubscriptionWorkload:
    def test_total_requests(self):
        assert make_workload().total_requests() == 6

    def test_u_matrix(self):
        u = make_workload().u_matrix()
        assert u[0] == {1: 2, 2: 1}
        assert u[1] == {0: 1}
        assert u[2] == {0: 1, 1: 1}

    def test_groups(self):
        groups = make_workload().groups()
        assert groups[StreamId(0, 0)] == frozenset({1, 2})
        assert groups[StreamId(1, 0)] == frozenset({0, 2})
        assert groups[StreamId(1, 1)] == frozenset({0})

    def test_requests_flat_and_sorted(self):
        requests = make_workload().requests()
        assert len(requests) == 6
        assert requests == sorted(requests)

    def test_duplicates_deduplicated(self):
        workload = SubscriptionWorkload.from_site_sets(
            2, {0: [StreamId(1, 0), StreamId(1, 0)]}
        )
        assert workload.total_requests() == 1

    def test_self_subscription_rejected(self):
        with pytest.raises(SubscriptionError):
            SubscriptionWorkload.from_site_sets(2, {0: [StreamId(0, 0)]})

    def test_out_of_range_subscriber_rejected(self):
        with pytest.raises(SubscriptionError):
            SubscriptionWorkload.from_site_sets(2, {5: [StreamId(0, 0)]})

    def test_out_of_range_source_rejected(self):
        with pytest.raises(SubscriptionError):
            SubscriptionWorkload.from_site_sets(2, {0: [StreamId(9, 0)]})

    def test_streams_of_missing_site_empty(self):
        assert make_workload().streams_of(99) == ()
