"""Tests for the Zipf and uniform popularity weight models."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.session.streams import StreamId
from repro.workload.uniform import UniformPopularity
from repro.workload.zipf import ZipfPopularity


def streams(n: int = 6) -> list[StreamId]:
    return [StreamId(0, q) for q in range(n)]


class TestZipf:
    def test_weights_decay_by_camera_rank(self):
        weights = ZipfPopularity(exponent=1.0).weights(streams())
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == pytest.approx(1.0)
        assert weights[1] == pytest.approx(0.5)

    def test_exponent_sharpens_decay(self):
        shallow = ZipfPopularity(exponent=0.5).weights(streams())
        steep = ZipfPopularity(exponent=2.0).weights(streams())
        assert steep[1] / steep[0] < shallow[1] / shallow[0]

    def test_rank_depends_on_index_not_site(self):
        a = ZipfPopularity().weights([StreamId(0, 3)])
        b = ZipfPopularity().weights([StreamId(7, 3)])
        assert a == b

    def test_invalid_exponent(self):
        with pytest.raises(ConfigurationError):
            ZipfPopularity(exponent=0.0)

    def test_empty(self):
        assert ZipfPopularity().weights([]) == []


class TestUniform:
    def test_all_ones(self):
        assert UniformPopularity().weights(streams()) == [1.0] * 6

    def test_name(self):
        assert UniformPopularity().name == "uniform"
        assert ZipfPopularity().name == "zipf"
