"""Tests for the stream-centric coverage workload."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.util.rng import RngStream
from repro.workload.coverage import CoverageWorkloadModel


class TestValidation:
    def test_bad_interest(self):
        with pytest.raises(ConfigurationError):
            CoverageWorkloadModel(interest=1.5)

    def test_bad_popularity(self):
        with pytest.raises(ConfigurationError):
            CoverageWorkloadModel(popularity="power-law")

    def test_bad_exponent(self):
        with pytest.raises(ConfigurationError):
            CoverageWorkloadModel(popularity="zipf", zipf_exponent=0.0)

    def test_bad_focus_skew(self):
        with pytest.raises(ConfigurationError):
            CoverageWorkloadModel(focus_skew=-1.0)

    def test_bad_mean_subscribers(self):
        with pytest.raises(ConfigurationError):
            CoverageWorkloadModel(mean_subscribers=0.0)


class TestGuarantee:
    def test_every_stream_subscribed_when_guaranteed(self, small_session, rng):
        model = CoverageWorkloadModel(interest=0.01, guarantee_coverage=True)
        workload = model.generate(small_session, rng)
        groups = workload.groups()
        for descriptor in small_session.registry:
            assert descriptor.stream_id in groups

    def test_unpopular_streams_unsubscribed_without_guarantee(
        self, small_session, rng
    ):
        model = CoverageWorkloadModel(interest=0.01, guarantee_coverage=False)
        workload = model.generate(small_session, rng)
        assert len(workload.groups()) < small_session.total_streams()


class TestInterestCalibration:
    def test_higher_interest_more_requests(self, small_session):
        low = CoverageWorkloadModel(interest=0.05).generate(
            small_session, RngStream(3)
        )
        high = CoverageWorkloadModel(interest=0.6).generate(
            small_session, RngStream(3)
        )
        assert high.total_requests() > low.total_requests()

    def test_zipf_front_camera_most_popular(self, small_session):
        model = CoverageWorkloadModel(interest=0.3, popularity="zipf")
        root = RngStream(5)
        front, back = 0, 0
        for k in range(30):
            workload = model.generate(small_session, root.spawn(str(k)))
            for group_stream, members in workload.groups().items():
                if group_stream.index == 0:
                    front += len(members)
                elif group_stream.index == 5:
                    back += len(members)
        assert front > back

    def test_mean_subscribers_overrides_interest(self, small_session):
        model = CoverageWorkloadModel(
            interest=0.0001, mean_subscribers=2.0, guarantee_coverage=False
        )
        workload = model.generate(small_session, RngStream(4))
        expected = small_session.total_streams() * 2.0
        assert workload.total_requests() == pytest.approx(expected, rel=0.4)


class TestFocusSkew:
    def test_skew_widens_u_spread(self, small_session):
        def spread(model):
            total, sq, count = 0.0, 0.0, 0
            root = RngStream(8)
            for k in range(30):
                workload = model.generate(small_session, root.spawn(str(k)))
                for row in workload.u_matrix().values():
                    for u in row.values():
                        total += u
                        sq += u * u
                        count += 1
            mean = total / count
            return sq / count - mean * mean

        flat = CoverageWorkloadModel(interest=0.3, focus_skew=0.0)
        skewed = CoverageWorkloadModel(interest=0.3, focus_skew=2.0)
        assert spread(skewed) > spread(flat)

    def test_two_sites_skew_degenerate(self, tier1_topology):
        from repro.session.capacity import UniformCapacityModel
        from repro.session.session import SessionConfig, build_session

        session = build_session(
            tier1_topology,
            UniformCapacityModel(streams_per_site=4),
            RngStream(2),
            SessionConfig(n_sites=2),
        )
        model = CoverageWorkloadModel(interest=0.5, focus_skew=1.0)
        workload = model.generate(session, RngStream(3))
        assert workload.n_sites == 2

    def test_deterministic(self, small_session):
        model = CoverageWorkloadModel(interest=0.2, focus_skew=1.0)
        a = model.generate(small_session, RngStream(9))
        b = model.generate(small_session, RngStream(9))
        assert a.subscriptions == b.subscriptions

    def test_single_site_pair_rejected(self, tier1_topology):
        from repro.session.capacity import UniformCapacityModel
        from repro.session.session import SessionConfig, build_session

        session = build_session(
            tier1_topology,
            UniformCapacityModel(streams_per_site=4),
            RngStream(2),
            SessionConfig(n_sites=1),
        )
        with pytest.raises(ConfigurationError):
            CoverageWorkloadModel().generate(session, RngStream(1))
