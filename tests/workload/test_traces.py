"""Tests for workload trace serialization."""

from __future__ import annotations

import pytest

from repro.errors import SubscriptionError
from repro.session.streams import StreamId
from repro.workload.spec import SubscriptionWorkload
from repro.workload.traces import (
    load_traces,
    save_traces,
    workload_from_dict,
    workload_to_dict,
)


def make_workload() -> SubscriptionWorkload:
    return SubscriptionWorkload.from_site_sets(
        3, {0: [StreamId(1, 0)], 2: [StreamId(0, 1), StreamId(1, 2)]}
    )


class TestDictRoundTrip:
    def test_round_trip(self):
        workload = make_workload()
        restored = workload_from_dict(workload_to_dict(workload))
        assert restored.subscriptions == workload.subscriptions
        assert restored.n_sites == workload.n_sites

    def test_bad_version(self):
        data = workload_to_dict(make_workload())
        data["version"] = 99
        with pytest.raises(SubscriptionError):
            workload_from_dict(data)

    def test_missing_key(self):
        with pytest.raises(SubscriptionError):
            workload_from_dict({"version": 1})

    def test_malformed_stream(self):
        data = workload_to_dict(make_workload())
        data["subscriptions"]["0"] = [["x", "y"]]
        with pytest.raises(SubscriptionError):
            workload_from_dict(data)


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        workloads = [make_workload(), make_workload()]
        path = tmp_path / "traces.jsonl"
        count = save_traces(path, workloads)
        assert count == 2
        loaded = load_traces(path)
        assert len(loaded) == 2
        assert loaded[0].subscriptions == workloads[0].subscriptions

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        save_traces(path, [make_workload()])
        path.write_text(path.read_text() + "\n\n")
        assert len(load_traces(path)) == 1

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(SubscriptionError, match="traces.jsonl:1"):
            load_traces(path)
