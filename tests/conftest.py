"""Shared fixtures: deterministic RNGs, small sessions and problems.

Also hosts the ``--runslow`` gate: tests marked ``slow`` or ``stress``
are skipped by default so the tier-1 loop stays fast; ``pytest
--runslow`` (as ``scripts/ci.sh`` does for the full run) enables them.
"""

from __future__ import annotations

import pytest

from repro.core.problem import ForestProblem
from repro.session.capacity import UniformCapacityModel
from repro.session.session import SessionConfig, build_session
from repro.topology.backbone import load_backbone
from repro.util.rng import RngStream
from repro.workload.coverage import CoverageWorkloadModel


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked slow or stress",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    if config.getoption("--runslow"):
        return
    gate = pytest.mark.skip(reason="slow/stress test; enable with --runslow")
    for item in items:
        if "slow" in item.keywords or "stress" in item.keywords:
            item.add_marker(gate)


@pytest.fixture
def rng() -> RngStream:
    """A fresh deterministic root stream."""
    return RngStream(1234, label="test")


@pytest.fixture(scope="session")
def tier1_topology():
    """The embedded global backbone (shared; read-only in tests)."""
    return load_backbone("tier1")


@pytest.fixture(scope="session")
def abilene_topology():
    """The embedded Abilene backbone (shared; read-only in tests)."""
    return load_backbone("abilene")


@pytest.fixture
def small_session(tier1_topology):
    """A 4-site uniform-capacity session."""
    return build_session(
        tier1_topology,
        UniformCapacityModel(streams_per_site=6),
        RngStream(7, label="session"),
        SessionConfig(n_sites=4, displays_per_site=2),
    )


@pytest.fixture
def small_problem(small_session):
    """A coverage-workload problem over the small session."""
    workload = CoverageWorkloadModel(interest=0.3).generate(
        small_session, RngStream(11, label="workload")
    )
    return ForestProblem.from_workload(small_session, workload, 200.0)


def complete_cost(n: int, off_diagonal: float = 1.0) -> dict[int, dict[int, float]]:
    """A complete symmetric cost matrix with one off-diagonal value."""
    return {
        i: {j: (0.0 if i == j else off_diagonal) for j in range(n)}
        for i in range(n)
    }
