"""Tests for stream identity and the registry."""

from __future__ import annotations

import pytest

from repro.errors import SubscriptionError
from repro.session.streams import StreamDescriptor, StreamId, StreamRegistry


class TestStreamId:
    def test_str_matches_paper_notation(self):
        assert str(StreamId(site=2, index=7)) == "s2^7"

    def test_negative_site_rejected(self):
        with pytest.raises(SubscriptionError):
            StreamId(site=-1, index=0)

    def test_negative_index_rejected(self):
        with pytest.raises(SubscriptionError):
            StreamId(site=0, index=-1)

    def test_ordering_site_major(self):
        assert StreamId(0, 5) < StreamId(1, 0)
        assert StreamId(1, 0) < StreamId(1, 1)

    def test_hashable_and_equal(self):
        assert StreamId(1, 2) == StreamId(1, 2)
        assert len({StreamId(1, 2), StreamId(1, 2)}) == 1


class TestStreamDescriptor:
    def test_default_bandwidth_in_compressed_range(self):
        d = StreamDescriptor(StreamId(0, 0), camera_id="cam")
        assert 5.0 <= d.bandwidth_mbps <= 10.0

    def test_non_positive_bandwidth_rejected(self):
        with pytest.raises(SubscriptionError):
            StreamDescriptor(StreamId(0, 0), camera_id="cam", bandwidth_mbps=0.0)


class TestStreamRegistry:
    def make_registry(self) -> StreamRegistry:
        registry = StreamRegistry()
        for site in (0, 1):
            for q in range(3):
                registry.register(
                    StreamDescriptor(StreamId(site, q), camera_id=f"c{site}{q}")
                )
        return registry

    def test_register_and_len(self):
        assert len(self.make_registry()) == 6

    def test_duplicate_rejected(self):
        registry = self.make_registry()
        with pytest.raises(SubscriptionError):
            registry.register(StreamDescriptor(StreamId(0, 0), camera_id="x"))

    def test_streams_of_site_ordered(self):
        registry = self.make_registry()
        ids = registry.stream_ids_of_site(1)
        assert ids == [StreamId(1, 0), StreamId(1, 1), StreamId(1, 2)]

    def test_streams_of_unknown_site_empty(self):
        assert self.make_registry().streams_of_site(9) == []

    def test_describe_unknown_raises(self):
        with pytest.raises(SubscriptionError):
            self.make_registry().describe(StreamId(5, 5))

    def test_contains(self):
        registry = self.make_registry()
        assert StreamId(0, 2) in registry
        assert StreamId(0, 3) not in registry

    def test_iteration_sorted_by_site(self):
        sites = [d.stream_id.site for d in self.make_registry()]
        assert sites == sorted(sites)

    def test_sites_property(self):
        assert self.make_registry().sites == [0, 1]
