"""Tests for the Sec. 5.1 node-resource distributions."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.session.capacity import (
    CapacityAssignment,
    HeterogeneousCapacityModel,
    UniformCapacityModel,
)
from repro.util.rng import RngStream


class TestCapacityAssignment:
    def test_valid(self):
        CapacityAssignment(inbound_limit=1, outbound_limit=1, n_streams=1)

    @pytest.mark.parametrize("field", ["inbound_limit", "outbound_limit", "n_streams"])
    def test_non_positive_rejected(self, field):
        kwargs = dict(inbound_limit=5, outbound_limit=5, n_streams=5)
        kwargs[field] = 0
        with pytest.raises(ConfigurationError):
            CapacityAssignment(**kwargs)


class TestUniformModel:
    def test_capacity_within_band(self, rng):
        model = UniformCapacityModel()
        for a in model.assign(100, rng):
            assert 15 <= a.inbound_limit <= 25
            assert a.inbound_limit == a.outbound_limit

    def test_streams_fixed_at_twenty(self, rng):
        model = UniformCapacityModel()
        assert all(a.n_streams == 20 for a in model.assign(10, rng))

    def test_both_signs_of_jitter_occur(self, rng):
        values = [a.inbound_limit for a in UniformCapacityModel().assign(200, rng)]
        assert any(v < 20 for v in values)
        assert any(v > 20 for v in values)

    def test_zero_sites_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            UniformCapacityModel().assign(0, rng)

    def test_deterministic(self):
        a = UniformCapacityModel().assign(10, RngStream(4))
        b = UniformCapacityModel().assign(10, RngStream(4))
        assert a == b


class TestHeterogeneousModel:
    def test_capacity_values(self, rng):
        capacities = {
            a.inbound_limit
            for a in HeterogeneousCapacityModel().assign(40, rng)
        }
        assert capacities <= {10, 20, 30}

    def test_proportions_on_multiple_of_four(self, rng):
        assignments = HeterogeneousCapacityModel().assign(8, rng)
        counts = {c: 0 for c in (10, 20, 30)}
        for a in assignments:
            counts[a.inbound_limit] += 1
        assert counts[30] == 4  # 50 %
        assert counts[20] == 2  # 25 %
        assert counts[10] == 2  # 25 %

    def test_apportionment_sums_to_n(self, rng):
        for n in range(1, 12):
            assert len(HeterogeneousCapacityModel().assign(n, rng)) == n

    def test_stream_count_range(self, rng):
        for a in HeterogeneousCapacityModel().assign(60, rng):
            assert 10 <= a.n_streams <= 30

    def test_invalid_stream_range(self, rng):
        model = HeterogeneousCapacityModel(streams_low=30, streams_high=10)
        with pytest.raises(ConfigurationError):
            model.assign(4, rng)

    def test_shuffled_not_sorted(self):
        # With 40 sites the deck is big enough that a sorted output
        # would be an astronomically unlikely shuffle.
        assignments = HeterogeneousCapacityModel().assign(40, RngStream(9))
        values = [a.inbound_limit for a in assignments]
        assert values != sorted(values)
        assert values != sorted(values, reverse=True)
