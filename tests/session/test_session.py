"""Tests for session assembly."""

from __future__ import annotations

import pytest

from repro.errors import SessionError
from repro.session.capacity import UniformCapacityModel
from repro.session.session import SessionConfig, TISession, build_session
from repro.util.rng import RngStream


class TestBuildSession:
    def test_structure(self, small_session):
        assert small_session.n_sites == 4
        for index, site in enumerate(small_session.sites):
            assert site.index == index
            assert len(site.cameras) == 6
            assert len(site.displays) == 2

    def test_registry_covers_all_cameras(self, small_session):
        assert small_session.total_streams() == 4 * 6

    def test_distinct_pops(self, small_session):
        pops = [site.pop_id for site in small_session.sites]
        assert len(set(pops)) == len(pops)

    def test_cost_symmetry_and_zero_diagonal(self, small_session):
        for a in range(4):
            assert small_session.cost_ms(a, a) == 0.0
            for b in range(4):
                assert small_session.cost_ms(a, b) == pytest.approx(
                    small_session.cost_ms(b, a)
                )

    def test_cost_positive_between_distinct_sites(self, small_session):
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert small_session.cost_ms(a, b) > 0

    def test_deterministic_given_seed(self, tier1_topology):
        def build(seed):
            return build_session(
                tier1_topology,
                UniformCapacityModel(),
                RngStream(seed),
                SessionConfig(n_sites=5),
            )

        a, b = build(3), build(3)
        assert [s.pop_id for s in a.sites] == [s.pop_id for s in b.sites]
        assert [s.rp.inbound_limit for s in a.sites] == [
            s.rp.inbound_limit for s in b.sites
        ]

    def test_camera_poses_assigned(self, small_session):
        for site in small_session.sites:
            assert all(camera.pose is not None for camera in site.cameras)

    def test_unknown_site_raises(self, small_session):
        with pytest.raises(SessionError):
            small_session.site(99)
        with pytest.raises(SessionError):
            small_session.cost_ms(0, 99)

    def test_cost_matrix_copy_is_safe(self, small_session):
        matrix = small_session.cost_matrix()
        matrix[0][1] = -1.0
        assert small_session.cost_ms(0, 1) >= 0.0


class TestSessionValidation:
    def test_bad_site_order_rejected(self, small_session):
        sites = list(small_session.sites)
        sites[0], sites[1] = sites[1], sites[0]
        with pytest.raises(SessionError):
            TISession(
                topology=small_session.topology,
                sites=sites,
                registry=small_session.registry,
            )

    def test_config_validation(self):
        with pytest.raises(SessionError):
            SessionConfig(n_sites=0)
        with pytest.raises(SessionError):
            SessionConfig(displays_per_site=0)
