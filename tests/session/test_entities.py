"""Tests for site entities."""

from __future__ import annotations

import pytest

from repro.errors import SessionError
from repro.session.entities import Camera3D, Display3D, RendezvousPoint, Site
from repro.session.streams import StreamId


def make_site(index: int = 0) -> Site:
    rp = RendezvousPoint(site=index, pop_id="new-york", inbound_limit=10,
                         outbound_limit=12)
    cameras = [
        Camera3D(camera_id=f"c{q}", stream_id=StreamId(index, q))
        for q in range(3)
    ]
    displays = [Display3D(display_id="d0", site=index)]
    return Site(index=index, pop_id="new-york", rp=rp, cameras=cameras,
                displays=displays)


class TestRendezvousPoint:
    def test_name(self):
        rp = RendezvousPoint(site=3, pop_id="x", inbound_limit=1, outbound_limit=1)
        assert rp.name == "RP3"

    def test_negative_capacity_rejected(self):
        with pytest.raises(SessionError):
            RendezvousPoint(site=0, pop_id="x", inbound_limit=-1, outbound_limit=1)


class TestDisplay:
    def test_negative_site_rejected(self):
        with pytest.raises(SessionError):
            Display3D(display_id="d", site=-2)


class TestSite:
    def test_name_and_streams(self):
        site = make_site(2)
        assert site.name == "H2"
        assert site.stream_ids == [StreamId(2, 0), StreamId(2, 1), StreamId(2, 2)]

    def test_rp_site_mismatch_rejected(self):
        rp = RendezvousPoint(site=1, pop_id="x", inbound_limit=1, outbound_limit=1)
        with pytest.raises(SessionError):
            Site(index=0, pop_id="x", rp=rp)

    def test_negative_index_rejected(self):
        rp = RendezvousPoint(site=-1, pop_id="x", inbound_limit=1, outbound_limit=1)
        with pytest.raises(SessionError):
            Site(index=-1, pop_id="x", rp=rp)

    def test_str_mentions_capacities(self):
        text = str(make_site())
        assert "I=10" in text and "O=12" in text
