"""Tests for ASCII table rendering."""

from __future__ import annotations

import pytest

from repro.util.tables import Table, format_mapping, format_series


class TestTable:
    def test_renders_headers_and_rows(self):
        table = Table(["N", "rej"])
        table.add_row([3, 0.5])
        text = table.render()
        assert "N" in text and "rej" in text
        assert "0.5000" in text

    def test_title_line(self):
        table = Table(["a"], title="My Title")
        table.add_row([1])
        assert table.render().splitlines()[0] == "My Title"

    def test_column_alignment(self):
        table = Table(["long-header", "x"])
        table.add_row(["v", 12])
        header, rule, row = table.render().splitlines()
        assert len(header) == len(rule)

    def test_row_width_mismatch_rejected(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_float_formatting(self):
        table = Table(["x"])
        table.add_row([1 / 3])
        assert "0.3333" in table.render()

    def test_str_is_render(self):
        table = Table(["x"])
        table.add_row([1])
        assert str(table) == table.render()


class TestSeriesFormatting:
    def test_format_series(self):
        out = format_series("rj", [3, 4], [0.1, 0.25])
        assert out == "rj: 3=0.1000, 4=0.2500"

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("rj", [1], [0.1, 0.2])

    def test_format_mapping_sorted(self):
        out = format_mapping("title", {"b": 2.0, "a": 1.0})
        lines = out.splitlines()
        assert lines[0] == "title"
        assert lines[1].strip().startswith("a:")
