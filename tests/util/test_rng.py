"""Tests for the seeded RNG streams."""

from __future__ import annotations

import pytest

from repro.util.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(42, "alpha") == derive_seed(42, "alpha")

    def test_label_changes_seed(self):
        assert derive_seed(42, "alpha") != derive_seed(42, "beta")

    def test_parent_changes_seed(self):
        assert derive_seed(1, "alpha") != derive_seed(2, "alpha")

    def test_fits_64_bits(self):
        assert 0 <= derive_seed(7, "x") < 2**64


class TestRngStream:
    def test_same_seed_same_sequence(self):
        a = RngStream(5)
        b = RngStream(5)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seed_differs(self):
        assert RngStream(5).random() != RngStream(6).random()

    def test_spawn_is_independent_of_parent_consumption(self):
        a = RngStream(5)
        a_child = a.spawn("child")
        b = RngStream(5)
        for _ in range(100):
            b.random()  # consuming the parent must not affect the child
        b_child = b.spawn("child")
        assert a_child.random() == b_child.random()

    def test_spawn_labels_differ(self):
        root = RngStream(5)
        assert root.spawn("x").random() != root.spawn("y").random()

    def test_spawn_label_path(self):
        child = RngStream(5, label="root").spawn("x")
        assert child.label == "root/x"

    def test_randint_bounds(self):
        stream = RngStream(9)
        values = [stream.randint(3, 7) for _ in range(200)]
        assert min(values) >= 3
        assert max(values) <= 7
        assert set(values) == {3, 4, 5, 6, 7}

    def test_uniform_bounds(self):
        stream = RngStream(9)
        values = [stream.uniform(-1.0, 2.0) for _ in range(200)]
        assert all(-1.0 <= v <= 2.0 for v in values)

    def test_choice_member(self):
        stream = RngStream(9)
        pool = ["a", "b", "c"]
        assert all(stream.choice(pool) in pool for _ in range(50))

    def test_sample_distinct(self):
        stream = RngStream(9)
        picked = stream.sample(list(range(20)), 5)
        assert len(picked) == 5
        assert len(set(picked)) == 5

    def test_shuffle_in_place_is_permutation(self):
        stream = RngStream(9)
        items = list(range(30))
        stream.shuffle(items)
        assert sorted(items) == list(range(30))

    def test_shuffled_leaves_input_untouched(self):
        stream = RngStream(9)
        items = list(range(30))
        out = stream.shuffled(items)
        assert items == list(range(30))
        assert sorted(out) == items

    def test_weighted_choice_respects_zero_weight(self):
        stream = RngStream(9)
        for _ in range(100):
            assert stream.weighted_choice(["a", "b"], [1.0, 0.0]) == "a"

    def test_weighted_choice_length_mismatch(self):
        with pytest.raises(ValueError):
            RngStream(9).weighted_choice(["a"], [1.0, 2.0])

    def test_gauss_and_expovariate_run(self):
        stream = RngStream(9)
        assert isinstance(stream.gauss(0.0, 1.0), float)
        assert stream.expovariate(2.0) >= 0.0
