"""Tests for the terminal line plots."""

from __future__ import annotations

import pytest

from repro.util.ascii_plot import line_plot


class TestLinePlot:
    def test_contains_markers_and_legend(self):
        out = line_plot({"rj": [0.1, 0.2, 0.3]}, [3, 4, 5])
        assert "o=rj" in out
        assert "o" in out

    def test_multiple_series_get_distinct_markers(self):
        out = line_plot({"a": [1.0, 2.0], "b": [2.0, 1.0]}, [0, 1])
        assert "o=a" in out and "x=b" in out

    def test_flat_series_renders(self):
        out = line_plot({"flat": [1.0, 1.0, 1.0]}, [1, 2, 3])
        assert "flat" in out

    def test_title(self):
        out = line_plot({"a": [1.0]}, [0], title="The Title")
        assert out.splitlines()[0] == "The Title"

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            line_plot({}, [1])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            line_plot({"a": [1.0, 2.0]}, [1])

    def test_no_x_values_rejected(self):
        with pytest.raises(ValueError):
            line_plot({"a": []}, [])

    def test_y_range_in_border(self):
        out = line_plot({"a": [0.0, 10.0]}, [0, 1])
        assert "10.0000" in out and "0.0000" in out
