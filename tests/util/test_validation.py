"""Tests for the validation helpers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.util.validation import (
    check_at_least,
    check_non_negative,
    check_positive,
    check_probability,
    check_range,
)


class TestCheckers:
    def test_positive_accepts(self):
        assert check_positive("x", 0.5) == 0.5

    def test_positive_rejects_zero(self):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive("x", 0.0)

    def test_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_non_negative_rejects(self):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -1)

    def test_probability_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ConfigurationError):
            check_probability("p", 1.01)

    def test_range(self):
        assert check_range("r", 5, 0, 10) == 5
        with pytest.raises(ConfigurationError):
            check_range("r", 11, 0, 10)

    def test_at_least(self):
        assert check_at_least("n", 3, 3) == 3
        with pytest.raises(ConfigurationError):
            check_at_least("n", 2, 3)

    def test_message_names_parameter(self):
        with pytest.raises(ConfigurationError, match="my_param"):
            check_positive("my_param", -5)
