"""Tests for unit constants and conversions."""

from __future__ import annotations

import pytest

from repro.util.units import (
    COMPRESSED_STREAM_MBPS,
    RAW_STREAM_MBPS,
    mbps_for_stream,
    propagation_delay_ms,
)


class TestPropagationDelay:
    def test_zero_distance_zero_hops(self):
        assert propagation_delay_ms(0.0, hops=0) == 0.0

    def test_200km_is_one_ms_plus_hop(self):
        assert propagation_delay_ms(200.0, hops=0) == pytest.approx(1.0)

    def test_hop_delay_added(self):
        assert propagation_delay_ms(0.0, hops=2) == pytest.approx(1.0)

    def test_monotone_in_distance(self):
        assert propagation_delay_ms(1000.0) > propagation_delay_ms(100.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            propagation_delay_ms(-1.0)

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            propagation_delay_ms(10.0, hops=-1)


class TestStreamBandwidth:
    def test_raw_rate_matches_paper_arithmetic(self):
        # 640 x 480 x 15 fps x 5 B/pixel ~= 184 Mbps (the paper rounds to 180)
        assert RAW_STREAM_MBPS == pytest.approx(184.32, rel=1e-6)

    def test_compressed_range_endpoints(self):
        low, high = COMPRESSED_STREAM_MBPS
        assert mbps_for_stream(quality=0.0) == pytest.approx(low)
        assert mbps_for_stream(quality=1.0) == pytest.approx(high)

    def test_uncompressed(self):
        assert mbps_for_stream(compressed=False) == pytest.approx(RAW_STREAM_MBPS)

    def test_quality_out_of_range(self):
        with pytest.raises(ValueError):
            mbps_for_stream(quality=1.5)
