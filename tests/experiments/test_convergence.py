"""Tests for the control-convergence sweep."""

from __future__ import annotations

import pytest

from repro.experiments.convergence import async_report, run_convergence


class TestAsyncReport:
    def test_delay_reaches_runtime(self):
        report = async_report(
            "flash-crowd",
            sites=4,
            seed=3,
            control_delay_ms=30.0,
            debounce_ms=5.0,
        )
        assert report.async_control
        assert report.control_delay_ms == 30.0
        assert report.debounce_ms == 5.0
        assert report.convergence_rounds == report.rounds

    def test_audit_flag_attaches_auditor(self):
        report = async_report(
            "flash-crowd",
            sites=4,
            seed=3,
            control_delay_ms=10.0,
            debounce_ms=5.0,
            audit=True,
        )
        assert report.audit is not None
        assert report.ok


class TestRunConvergence:
    @pytest.fixture(scope="class")
    def result(self):
        return run_convergence(
            scenario="flash-crowd",
            delays=(0.0, 40.0),
            sites=4,
            seed=3,
            debounce_ms=5.0,
        )

    def test_series_shape(self, result):
        assert result.xs == [0.0, 40.0]
        for name in (
            "mean-convergence-ms",
            "max-convergence-ms",
            "rounds",
            "overlapping-rounds",
            "stale-directives",
        ):
            assert len(result.series[name]) == 2

    def test_latency_grows_with_delay(self, result):
        mean = result.series["mean-convergence-ms"]
        assert mean[1] > mean[0]
        # Convergence is bounded below by debounce + 2x delay.
        assert mean[0] >= 5.0
        assert mean[1] >= 5.0 + 2 * 40.0

    def test_paired_sweep_same_round_structure(self, result):
        """Delay alone must not change which rounds happen (debounce
        fixed): round counts agree across delay points."""
        rounds = result.series["rounds"]
        assert rounds[0] == rounds[1]
