"""Tests for the rebuild-policy disruption sweep."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.disruption import run_disruption, scenario_report


class TestScenarioReport:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_report("mass-leave", sites=4, seed=3, policy="never")

    def test_policy_reaches_runtime(self):
        report = scenario_report(
            "mass-leave", sites=4, seed=3, policy="incremental"
        )
        assert report.rebuild_policy == "incremental"
        assert report.repairs >= 1

    def test_large_pool_switches_backbone(self):
        # 32 sites exceed tier1's 26 PoPs; the synthetic backbone kicks in.
        report = scenario_report(
            "rolling-failure", sites=32, seed=3, policy="always"
        )
        assert report.n_sites == 32


class TestRunDisruption:
    @pytest.fixture(scope="class")
    def result(self):
        return run_disruption(
            scenario="mass-leave", sizes=(4, 6), seed=3
        )

    def test_series_per_policy(self, result):
        assert result.xs == [4, 6]
        for policy in ("always", "incremental", "hybrid"):
            assert len(result.series[policy]) == 2
            assert len(result.series[f"{policy}-rejection"]) == 2

    def test_repair_is_less_disruptive(self, result):
        """The paired sweep reproduces the headline property."""
        for x_index in range(len(result.xs)):
            assert (
                result.series["incremental"][x_index]
                <= result.series["always"][x_index]
            )

    def test_values_are_ratios(self, result):
        for series in result.series.values():
            assert all(0.0 <= value <= 1.0 for value in series)
