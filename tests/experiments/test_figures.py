"""Smoke tests for the per-figure harnesses (tiny sample counts)."""

from __future__ import annotations

import pytest

from repro.experiments.fig8 import FIG8_ALGORITHMS, run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import improvement_factor, run_fig11
from repro.experiments.report import markdown_section, series_plot, series_table
from repro.experiments.settings import ExperimentSetting


def tiny(**kwargs) -> ExperimentSetting:
    defaults = dict(samples=3, seed=11)
    defaults.update(kwargs)
    return ExperimentSetting(**defaults)


class TestFig8:
    def test_panel_series(self):
        result = run_fig8(tiny(), n_sites_values=(3, 5))
        assert result.xs == [3, 5]
        assert set(result.series) == set(FIG8_ALGORITHMS)
        for values in result.series.values():
            assert all(0.0 <= v <= 1.0 + 1e-9 for v in values)

    def test_custom_algorithms(self):
        result = run_fig8(tiny(), n_sites_values=(3,), algorithms=("rj",))
        assert set(result.series) == {"rj"}


class TestFig9:
    def test_granularity_series(self):
        result = run_fig9(tiny(), granularities=(1, 4, 16), n_sites=5)
        assert result.xs == [1, 4, 16]
        assert len(result.series["gran-ltf"]) == 3


class TestFig10:
    def test_metrics_series(self):
        result = run_fig10(tiny(), n_sites_values=(4, 6))
        assert set(result.series) == {
            "out-degree-utilization",
            "utilization-stddev",
            "relay-fraction",
        }
        for value in result.series["out-degree-utilization"]:
            assert 0.0 <= value <= 1.0


class TestFig11:
    def test_series_and_factor(self):
        result = run_fig11(tiny(), n_sites_values=(3, 5))
        assert set(result.series) == {"rj", "co-rj", "rj-eq3", "co-rj-eq3"}
        factor = improvement_factor(result)
        assert factor > 0.0


class TestReport:
    def test_series_table_and_plot(self):
        result = run_fig8(tiny(), n_sites_values=(3,), algorithms=("rj",))
        table = series_table(result, "N", title="t")
        assert "N" in table and "rj" in table
        plot = series_plot(result, "title")
        assert "rj" in plot

    def test_markdown_section(self):
        result = run_fig8(tiny(), n_sites_values=(3,), algorithms=("rj",))
        section = markdown_section(
            "Fig X", "expectation text", result, "N", observations="obs"
        )
        assert section.startswith("### Fig X")
        assert "expectation text" in section
        assert "obs" in section
