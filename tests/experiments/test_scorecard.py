"""Tests for the executable reproduction scorecard."""

from __future__ import annotations

import pytest

from repro.experiments.scorecard import (
    Claim,
    evaluate_fig9,
    full_scorecard,
    render_scorecard,
)


class TestClaim:
    def test_render_pass(self):
        claim = Claim("fig8", "statement", True, detail="x=1")
        assert claim.render() == "[PASS] fig8: statement  [x=1]"

    def test_render_fail(self):
        claim = Claim("fig9", "statement", False)
        assert claim.render() == "[FAIL] fig9: statement"


class TestEvaluation:
    def test_fig9_claims_small_sample(self):
        claims = evaluate_fig9(samples=3, seed=5)
        assert len(claims) == 2
        assert all(isinstance(c, Claim) for c in claims)

    @pytest.mark.slow
    def test_full_scorecard_all_hold(self):
        """The headline check: every documented shape-claim holds.

        Uses a modest sample count; the claims were written with margins
        that absorb that noise (see EXPERIMENTS.md for 200-sample data).
        """
        claims = full_scorecard(samples=25, seed=42)
        text = render_scorecard(claims)
        failing = [c for c in claims if not c.holds]
        assert not failing, "\n" + text

    def test_render_counts(self):
        claims = [Claim("a", "s", True), Claim("b", "t", False)]
        text = render_scorecard(claims)
        assert "1/2 claims hold" in text
