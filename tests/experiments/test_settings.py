"""Tests for the canonical experiment settings."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.settings import ExperimentSetting
from repro.session.capacity import HeterogeneousCapacityModel, UniformCapacityModel
from repro.workload.coverage import CoverageWorkloadModel
from repro.workload.uniform import UniformPopularity
from repro.workload.zipf import ZipfPopularity


class TestValidation:
    def test_defaults_valid(self):
        ExperimentSetting()

    def test_bad_workload(self):
        with pytest.raises(ConfigurationError):
            ExperimentSetting(workload="gaussian")

    def test_bad_nodes(self):
        with pytest.raises(ConfigurationError):
            ExperimentSetting(nodes="mixed")

    def test_bad_samples(self):
        with pytest.raises(ConfigurationError):
            ExperimentSetting(samples=0)

    def test_bad_bound(self):
        with pytest.raises(ConfigurationError):
            ExperimentSetting(latency_bound_ms=0.0)


class TestFactories:
    def test_capacity_models(self):
        assert isinstance(
            ExperimentSetting(nodes="uniform").capacity_model(),
            UniformCapacityModel,
        )
        assert isinstance(
            ExperimentSetting(nodes="heterogeneous").capacity_model(),
            HeterogeneousCapacityModel,
        )

    def test_popularity_models(self):
        assert isinstance(
            ExperimentSetting(workload="zipf").popularity_model(),
            ZipfPopularity,
        )
        assert isinstance(
            ExperimentSetting(workload="random").popularity_model(),
            UniformPopularity,
        )

    def test_workload_model_wiring(self):
        setting = ExperimentSetting(
            workload="zipf", interest=0.33, focus_skew=2.0,
            guarantee_coverage=False, mean_subscribers=1.5,
        )
        model = setting.workload_model()
        assert isinstance(model, CoverageWorkloadModel)
        assert model.popularity == "zipf"
        assert model.interest == 0.33
        assert model.focus_skew == 2.0
        assert model.guarantee_coverage is False
        assert model.mean_subscribers == 1.5

    def test_label(self):
        assert ExperimentSetting(workload="zipf", nodes="uniform").label() == (
            "zipf-uniform"
        )
