"""Tests for the sweep machinery."""

from __future__ import annotations

import pytest

from repro.core.metrics import rejection_ratio
from repro.core.randomized import RandomJoinBuilder
from repro.core.tree_order import LargestTreeFirstBuilder
from repro.experiments.runner import (
    SeriesResult,
    mean_metric_per_builder,
    sample_problems,
    sweep_mean_metric,
)
from repro.experiments.settings import ExperimentSetting


def small_setting(**kwargs) -> ExperimentSetting:
    defaults = dict(samples=4, seed=7)
    defaults.update(kwargs)
    return ExperimentSetting(**defaults)


class TestSeriesResult:
    def test_rows_aligned_with_sorted_names(self):
        result = SeriesResult(xs=[3, 4])
        result.add_point("b", 2.0)
        result.add_point("a", 1.0)
        result.add_point("b", 4.0)
        result.add_point("a", 3.0)
        assert result.names() == ["a", "b"]
        assert result.as_rows() == [[3, 1.0, 2.0], [4, 3.0, 4.0]]


class TestSampleProblems:
    def test_count_and_shape(self, tier1_topology):
        setting = small_setting()
        problems = list(sample_problems(setting, 4, topology=tier1_topology))
        assert len(problems) == 4
        assert all(p.n_nodes == 4 for p in problems)

    def test_samples_differ(self, tier1_topology):
        problems = list(
            sample_problems(small_setting(), 4, topology=tier1_topology)
        )
        signatures = {tuple(sorted(map(str, p.all_requests()))) for p in problems}
        assert len(signatures) > 1

    def test_reproducible_across_calls(self, tier1_topology):
        a = list(sample_problems(small_setting(), 5, topology=tier1_topology))
        b = list(sample_problems(small_setting(), 5, topology=tier1_topology))
        for pa, pb in zip(a, b):
            assert pa.all_requests() == pb.all_requests()

    def test_seed_changes_samples(self, tier1_topology):
        a = list(sample_problems(small_setting(seed=1), 5, topology=tier1_topology))
        b = list(sample_problems(small_setting(seed=2), 5, topology=tier1_topology))
        assert any(
            pa.all_requests() != pb.all_requests() for pa, pb in zip(a, b)
        )


class TestMeanMetric:
    def test_values_in_range(self, tier1_topology):
        means = mean_metric_per_builder(
            small_setting(),
            5,
            {"rj": RandomJoinBuilder(), "ltf": LargestTreeFirstBuilder()},
            rejection_ratio,
            topology=tier1_topology,
        )
        assert set(means) == {"rj", "ltf"}
        assert all(0.0 <= v <= 1.0 for v in means.values())

    def test_sweep_shape(self):
        result = sweep_mean_metric(
            small_setting(),
            [3, 4],
            {"rj": RandomJoinBuilder()},
            rejection_ratio,
        )
        assert result.xs == [3, 4]
        assert len(result.series["rj"]) == 2
