"""Tests for the camera source process."""

from __future__ import annotations

import pytest

from repro.media.frames import FrameClock
from repro.media.source import CameraSource
from repro.session.streams import StreamId
from repro.sim.engine import Simulator
from repro.util.rng import RngStream


class TestCameraSource:
    def run_source(self, duration_ms: float, fps: float = 10.0):
        simulator = Simulator()
        frames = []
        source = CameraSource(
            clock=FrameClock(StreamId(0, 0), fps=fps),
            rng=RngStream(1),
            on_frame=frames.append,
            end_time_ms=duration_ms,
        )
        source.start(simulator.schedule_at)
        simulator.run()
        return frames

    def test_frame_count_matches_duration(self):
        # 10 fps for 1000 ms: captures at 0,100,...,1000 -> 11 frames.
        frames = self.run_source(1000.0)
        assert len(frames) == 11

    def test_sequence_numbers_contiguous(self):
        frames = self.run_source(500.0)
        assert [f.sequence for f in frames] == list(range(len(frames)))

    def test_capture_times_spaced_by_interval(self):
        frames = self.run_source(300.0)
        times = [f.capture_time_ms for f in frames]
        assert times == pytest.approx([0.0, 100.0, 200.0, 300.0])

    def test_zero_duration_single_frame(self):
        assert len(self.run_source(0.0)) == 1
