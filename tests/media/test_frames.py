"""Tests for the synthetic frame model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.media.frames import Frame3D, FrameClock
from repro.session.streams import StreamId
from repro.util.rng import RngStream


class TestFrame3D:
    def test_valid(self):
        Frame3D(StreamId(0, 0), sequence=0, capture_time_ms=0.0, size_bytes=100)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            Frame3D(StreamId(0, 0), sequence=-1, capture_time_ms=0.0, size_bytes=1)
        with pytest.raises(ConfigurationError):
            Frame3D(StreamId(0, 0), sequence=0, capture_time_ms=0.0, size_bytes=0)


class TestFrameClock:
    def test_interval_from_fps(self):
        clock = FrameClock(StreamId(0, 0), fps=15.0)
        assert clock.interval_ms == pytest.approx(1000.0 / 15.0)

    def test_mean_frame_size_from_bandwidth(self):
        # 7.5 Mbps at 15 fps -> 62.5 KB per frame.
        clock = FrameClock(StreamId(0, 0), bandwidth_mbps=7.5, fps=15.0)
        assert clock.mean_frame_bytes == int(7.5e6 / 8 / 15)

    def test_jittered_sizes_near_mean(self):
        clock = FrameClock(StreamId(0, 0), size_jitter=0.2)
        rng = RngStream(3)
        sizes = [clock.frame(i, 0.0, rng).size_bytes for i in range(100)]
        mean = clock.mean_frame_bytes
        assert all(0.8 * mean <= s <= 1.2 * mean for s in sizes)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            FrameClock(StreamId(0, 0), bandwidth_mbps=0.0)
        with pytest.raises(ConfigurationError):
            FrameClock(StreamId(0, 0), fps=0.0)
        with pytest.raises(ConfigurationError):
            FrameClock(StreamId(0, 0), size_jitter=1.0)
