"""Tests for the CI perf ratchet: pass, fail and missing-baseline paths."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.perf import RATCHET_THRESHOLD, ratchet_check


def timing(best_ms: float) -> dict:
    return {"label": "t", "repeats": 1, "best_ms": best_ms, "mean_ms": best_ms}


def baseline(label: str, build_ms: float, fast_ms: float, sizes=(16, 32)) -> dict:
    return {
        "version": 1,
        "label": label,
        "config": {},
        "cases": [
            {
                "n_sites": n,
                "build": timing(build_ms),
                "fast_plane": timing(fast_ms),
                "event_plane": None,
                "scenario_round": None,
            }
            for n in sizes
        ],
    }


class TestRatchetCheck:
    def test_identical_baselines_pass(self):
        old = baseline("OLD", 10.0, 1.0)
        assert ratchet_check(old, baseline("NEW", 10.0, 1.0)) == []

    def test_small_regression_within_threshold_passes(self):
        old = baseline("OLD", 10.0, 1.0)
        new = baseline("NEW", 19.0, 1.9)
        assert ratchet_check(old, new) == []

    def test_build_regression_fails(self):
        old = baseline("OLD", 10.0, 1.0)
        new = baseline("NEW", 30.0, 1.0)
        failures = ratchet_check(old, new)
        assert len(failures) == 2  # both common sizes regressed
        assert all("build" in f for f in failures)
        assert all("3.00x" in f for f in failures)

    def test_fast_plane_regression_fails(self):
        old = baseline("OLD", 10.0, 1.0)
        new = baseline("NEW", 10.0, 2.5)
        failures = ratchet_check(old, new)
        assert failures and all("fast_plane" in f for f in failures)

    def test_improvement_passes(self):
        old = baseline("OLD", 10.0, 1.0)
        assert ratchet_check(old, baseline("NEW", 2.0, 0.2)) == []

    def test_custom_threshold(self):
        old = baseline("OLD", 10.0, 1.0)
        new = baseline("NEW", 14.0, 1.0)
        assert ratchet_check(old, new, threshold=1.2)
        assert ratchet_check(old, new, threshold=1.5) == []
        assert RATCHET_THRESHOLD == 2.0

    def test_disjoint_sizes_fail_loudly(self):
        """No common sweep size must not silently pass."""
        old = baseline("OLD", 10.0, 1.0, sizes=(16,))
        new = baseline("NEW", 10.0, 1.0, sizes=(64,))
        failures = ratchet_check(old, new)
        assert failures and "no comparable timings" in failures[0]

    def test_gated_metric_missing_on_one_side_fails(self):
        """A tracked metric vanishing from one baseline must not let the
        gate rot away silently."""
        old = baseline("OLD", 10.0, 1.0)
        new = baseline("NEW", 10.0, 1.0)
        new["cases"][0]["build"] = None
        failures = ratchet_check(old, new)
        assert len(failures) == 1
        assert "build at N=16: missing from the new baseline" in failures[0]

    def test_metric_absent_from_both_sides_is_not_gated(self):
        old = baseline("OLD", 10.0, 1.0)
        new = baseline("NEW", 10.0, 1.0)
        old["cases"][0]["build"] = None
        new["cases"][0]["build"] = None
        assert ratchet_check(old, new) == []


class TestRatchetCli:
    @pytest.fixture
    def bench_files(self, tmp_path):
        def write(name: str, payload: dict) -> str:
            path = tmp_path / name
            path.write_text(json.dumps(payload))
            return str(path)

        return write

    def test_cli_pass(self, bench_files, capsys):
        old = bench_files("old.json", baseline("OLD", 10.0, 1.0))
        new = bench_files("new.json", baseline("NEW", 11.0, 1.1))
        assert main(["perf", "compare", old, new, "--ratchet"]) == 0
        assert "perf ratchet passed" in capsys.readouterr().out

    def test_cli_fail(self, bench_files, capsys):
        old = bench_files("old.json", baseline("OLD", 10.0, 1.0))
        new = bench_files("new.json", baseline("NEW", 25.0, 1.0))
        assert main(["perf", "compare", old, new, "--ratchet"]) == 1
        assert "perf ratchet FAILED" in capsys.readouterr().err

    def test_cli_missing_baseline(self, bench_files, capsys, tmp_path):
        new = bench_files("new.json", baseline("NEW", 10.0, 1.0))
        missing = str(tmp_path / "nonexistent.json")
        assert main(["perf", "compare", missing, new, "--ratchet"]) == 1
        assert "missing baseline" in capsys.readouterr().err

    def test_cli_threshold_flag(self, bench_files, capsys):
        old = bench_files("old.json", baseline("OLD", 10.0, 1.0))
        new = bench_files("new.json", baseline("NEW", 14.0, 1.0))
        assert main(
            ["perf", "compare", old, new, "--ratchet", "--threshold", "1.2"]
        ) == 1
        capsys.readouterr()
        assert main(["perf", "compare", old, new, "--ratchet"]) == 0

    def test_cli_without_ratchet_never_gates(self, bench_files, capsys):
        old = bench_files("old.json", baseline("OLD", 10.0, 1.0))
        new = bench_files("new.json", baseline("NEW", 99.0, 9.0))
        assert main(["perf", "compare", old, new]) == 0
