"""Tests for the perf subsystem: timers, sweep cases, baselines."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.perf import (
    PerfReport,
    Stopwatch,
    Timing,
    compare_reports,
    reports_equal,
    run_perf_case,
    run_perf_sweep,
    time_call,
)
from repro.sim.dataplane import FastDataPlane
from repro.util.rng import RngStream


class TestTiming:
    def test_time_call_returns_result_and_timing(self):
        timing, value = time_call(lambda: 42, repeats=3, label="answer")
        assert value == 42
        assert timing.repeats == 3
        assert timing.best_s <= timing.mean_s
        assert timing.total_s >= timing.best_s * 3 * 0.99

    def test_time_call_rejects_zero_repeats(self):
        with pytest.raises(ConfigurationError):
            time_call(lambda: None, repeats=0)

    def test_stopwatch_measures(self):
        with Stopwatch() as sw:
            sum(range(1000))
        assert sw.elapsed_s > 0.0
        assert sw.elapsed_ms == sw.elapsed_s * 1000.0

    def test_timing_to_dict(self):
        timing = Timing(label="x", repeats=2, total_s=0.4, best_s=0.1)
        payload = timing.to_dict()
        assert payload["best_ms"] == 100.0
        assert payload["mean_ms"] == 200.0


class TestPerfCase:
    @pytest.fixture(scope="class")
    def case(self):
        return run_perf_case(
            8, seed=5, duration_ms=300.0, repeats=1, with_scenario=True
        )

    def test_case_shape(self, case):
        assert case.n_sites == 8
        assert case.requests > 0
        assert case.frames_delivered > 0
        assert case.build.best_s > 0
        assert case.scenario_round is not None

    def test_control_convergence_is_simulated_and_deterministic(self, case):
        from repro.perf.sweep import (
            CONTROL_DELAY_MS,
            DEBOUNCE_MS,
            _measure_control_convergence,
        )

        timing = case.control_convergence
        assert timing is not None
        assert timing.repeats >= 1
        # Simulated latency floors at debounce + one round trip (float
        # accumulation tolerance only).
        assert timing.best_ms >= DEBOUNCE_MS + 2 * CONTROL_DELAY_MS - 1e-6
        # Re-measuring yields the identical number: simulated, not wall.
        again = _measure_control_convergence(8, 5)
        assert again.best_ms == timing.best_ms
        assert again.repeats == timing.repeats

    def test_fast_and_event_agree(self, case):
        assert case.reports_identical is True
        assert case.speedup is not None and case.speedup > 0

    def test_event_plane_can_be_skipped(self):
        case = run_perf_case(
            6, seed=5, duration_ms=200.0, repeats=1,
            with_event_plane=False, with_scenario=False,
        )
        assert case.event_plane is None
        assert case.speedup is None
        assert case.reports_identical is None


class TestSweepReport:
    @pytest.fixture(scope="class")
    def report(self):
        return run_perf_sweep(
            sizes=(6, 8), seed=5, duration_ms=200.0, repeats=1,
            label="TEST", with_scenario=False,
        )

    def test_json_roundtrip(self, report):
        payload = json.loads(report.to_json())
        assert payload["label"] == "TEST"
        assert [case["n_sites"] for case in payload["cases"]] == [6, 8]
        assert payload["cases"][0]["reports_identical"] is True

    def test_summary_lists_sizes(self, report):
        summary = report.summary()
        assert "perf sweep [TEST]" in summary
        assert "speedup" in summary

    def test_case_lookup(self, report):
        assert report.case_for(8).n_sites == 8
        assert report.case_for(999) is None

    def test_compare_renders(self, report):
        payload = json.loads(report.to_json())
        table = compare_reports(payload, payload)
        assert "perf compare" in table
        assert "1.00" in table  # self-comparison ratio


class TestReportsEqual:
    def test_detects_divergence(self):
        from repro import make_builder, quick_problem, quick_session

        rng = RngStream(4)
        session = quick_session(n_sites=4, rng=rng)
        problem = quick_problem(session, rng=rng)
        forest = make_builder("rj").build(problem, rng.spawn("b")).forest
        a = FastDataPlane(session, forest, RngStream(1).spawn("dp")).run(300.0)
        b = FastDataPlane(session, forest, RngStream(1).spawn("dp")).run(300.0)
        assert reports_equal(a, b)
        b.frames_delivered += 1
        assert not reports_equal(a, b)
