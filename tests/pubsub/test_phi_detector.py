"""Unit tests for the φ-accrual failure detector.

The detector's contract has two halves the static deadline cannot offer
at once: on a quiet link a silent peer is suspected *no later* than the
static ``miss_threshold x heartbeat_ms`` bound, and on a lossy link the
widened inter-arrival history keeps a merely-unlucky peer below the
threshold where the static deadline would already have fired.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.pubsub.detector import PhiAccrualDetector
from repro.util.rng import RngStream

HEARTBEAT_MS = 40.0


def quiet_detector(threshold: float = 8.0) -> PhiAccrualDetector:
    return PhiAccrualDetector(
        threshold=threshold, initial_interval_ms=HEARTBEAT_MS
    )


class TestConstruction:
    @pytest.mark.parametrize("threshold", (0.0, -1.0, float("nan")))
    def test_bad_threshold_rejected(self, threshold):
        with pytest.raises(ConfigurationError):
            PhiAccrualDetector(threshold=threshold, initial_interval_ms=40.0)

    def test_tiny_window_rejected(self):
        with pytest.raises(ConfigurationError, match="window"):
            PhiAccrualDetector(
                threshold=8.0, initial_interval_ms=40.0, window=1
            )


class TestScoring:
    def test_unknown_peer_scores_zero(self):
        detector = quiet_detector()
        assert not detector.known(3)
        assert detector.phi(3, 1000.0) == 0.0
        assert not detector.suspect(3, 1000.0)

    def test_phi_grows_monotonically_with_silence(self):
        detector = quiet_detector()
        now = 0.0
        for _ in range(10):
            detector.observe(0, now)
            now += HEARTBEAT_MS
        scores = [detector.phi(0, now + k * HEARTBEAT_MS) for k in range(6)]
        assert scores == sorted(scores)
        assert scores[0] < 1.0  # just after a beat: not suspicious
        assert scores[-1] > 8.0  # five missed beats on a metronome: dead

    def test_quiet_link_detects_no_later_than_static_bound(self):
        """On a jitter-free cadence φ=8 fires within the static
        ``miss_threshold(3) + 1`` beat envelope the chaos scenarios pin."""
        detector = quiet_detector(threshold=8.0)
        now = 0.0
        for _ in range(20):
            detector.observe(0, now)
            now += HEARTBEAT_MS
        last_beat = now - HEARTBEAT_MS
        static_deadline = last_beat + 4 * HEARTBEAT_MS
        assert detector.suspect(0, static_deadline)

    def test_lossy_history_widens_the_threshold(self):
        """The same silence is less suspicious to a peer whose history
        already contains loss-stretched inter-arrivals."""
        quiet, lossy = quiet_detector(), quiet_detector()
        rng = RngStream(7, label="phi-loss")
        now_q = now_l = 0.0
        for _ in range(40):
            quiet.observe(0, now_q)
            now_q += HEARTBEAT_MS
            lossy.observe(0, now_l)
            # 20% loss: each gap is 1+Geometric(0.8) beats long.
            gap = 1
            while rng.random() < 0.2:
                gap += 1
            now_l += gap * HEARTBEAT_MS
        silence = 3 * HEARTBEAT_MS
        assert quiet.phi(0, now_q - HEARTBEAT_MS + silence) > lossy.phi(
            0, now_l - gap * HEARTBEAT_MS + silence
        )

    def test_no_false_suspicion_across_a_lossy_trace(self):
        """Replaying a seeded 20%-loss beat trace, φ=8 never fires at
        any surviving arrival instant — the adaptive window absorbs the
        gaps a static 3-beat deadline would misread as death."""
        detector = quiet_detector(threshold=8.0)
        rng = RngStream(23, label="phi-trace")
        now = 0.0
        detector.observe(0, now)
        static_false = 0
        last = 0.0
        for _ in range(300):
            gap = 1
            while rng.random() < 0.2:
                gap += 1
            now += gap * HEARTBEAT_MS
            assert not detector.suspect(0, now), f"false suspicion at {now}"
            if now - last > 3 * HEARTBEAT_MS:
                static_false += 1
            detector.observe(0, now)
            last = now
        assert static_false > 0  # the static deadline would have fired

    def test_phi_saturates_instead_of_overflowing(self):
        detector = quiet_detector()
        detector.observe(0, 0.0)
        assert detector.phi(0, 1e12) == 300.0


class TestObserveVersusTouch:
    def test_touch_resets_silence_without_sampling(self):
        detector = quiet_detector()
        now = 0.0
        for _ in range(5):
            detector.observe(0, now)
            now += HEARTBEAT_MS
        samples_before = list(detector._samples[0])
        detector.touch(0, now + 1.0)  # a report, mid-cadence
        assert list(detector._samples[0]) == samples_before
        assert detector.phi(0, now + 1.0) == 0.0

    def test_cadence_survives_interleaved_touches(self):
        """Bursty report traffic between beats must not shrink the
        estimated inter-arrival; the next observe still samples a full
        beat-to-beat interval."""
        detector = quiet_detector()
        detector.observe(0, 0.0)
        detector.touch(0, 10.0)
        detector.touch(0, 20.0)
        detector.observe(0, HEARTBEAT_MS)
        assert HEARTBEAT_MS in detector._samples[0]
        assert not any(
            math.isclose(s, HEARTBEAT_MS - 20.0) for s in detector._samples[0]
        )

    def test_touch_alone_makes_peer_scoreable(self):
        detector = quiet_detector()
        detector.touch(0, 0.0)
        assert detector.known(0)
        assert detector.phi(0, 10 * HEARTBEAT_MS) > 8.0

    def test_forget_and_reset_clear_all_history(self):
        detector = quiet_detector()
        detector.observe(0, 0.0)
        detector.observe(1, 0.0)
        detector.forget(0)
        assert not detector.known(0)
        assert detector.known(1)
        detector.reset()
        assert not detector.known(1)
        assert detector.phi(1, 1000.0) == 0.0
