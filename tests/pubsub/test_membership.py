"""Tests for the membership server."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.core.incremental import overlay_cost
from repro.core.randomized import RandomJoinBuilder
from repro.pubsub.membership import MembershipServer
from repro.pubsub.messages import Advertisement, SiteSubscription
from repro.session.streams import StreamId
from repro.util.rng import RngStream


@pytest.fixture
def server(small_session) -> MembershipServer:
    return MembershipServer(
        session=small_session,
        builder=RandomJoinBuilder(),
        latency_bound_ms=150.0,
    )


def advertise_all(server, session) -> None:
    for site in session.sites:
        server.register_advertisement(
            Advertisement(site=site.index, streams=tuple(site.stream_ids))
        )


class TestRegistration:
    def test_unknown_site_rejected(self, server):
        with pytest.raises(ProtocolError):
            server.register_subscription(SiteSubscription(site=99, streams=()))

    def test_unknown_stream_rejected(self, server):
        with pytest.raises(ProtocolError):
            server.register_advertisement(
                Advertisement(site=0, streams=(StreamId(0, 999),))
            )

    def test_unadvertised_subscriptions_dropped(self, server, small_session):
        # Only site 1 advertises; subscriptions to site 2 streams vanish.
        server.register_advertisement(
            Advertisement(
                site=1, streams=tuple(small_session.site(1).stream_ids)
            )
        )
        server.register_subscription(
            SiteSubscription(
                site=0, streams=(StreamId(1, 0), StreamId(2, 0))
            )
        )
        workload = server.global_workload()
        assert workload.streams_of(0) == (StreamId(1, 0),)


class TestDirtyTrackedRegistration:
    """Unchanged re-registrations must be skipped, not re-applied."""

    def test_identical_advertisement_skipped(self, server, small_session):
        advertisement = Advertisement(
            site=1, streams=tuple(small_session.site(1).stream_ids)
        )
        assert server.register_advertisement(advertisement) is True
        assert server.register_advertisement(advertisement) is False
        assert server.registrations_applied == 1
        assert server.registrations_skipped == 1

    def test_identical_subscription_skipped(self, server):
        subscription = SiteSubscription(site=0, streams=(StreamId(1, 0),))
        assert server.register_subscription(subscription) is True
        assert server.register_subscription(subscription) is False
        assert server.registrations_applied == 1
        assert server.registrations_skipped == 1

    def test_changed_subscription_applies(self, server):
        server.register_subscription(
            SiteSubscription(site=0, streams=(StreamId(1, 0),))
        )
        changed = server.register_subscription(
            SiteSubscription(site=0, streams=(StreamId(2, 0),))
        )
        assert changed is True
        assert server.registrations_applied == 2
        assert server.registrations_skipped == 0

    def test_withdraw_makes_reregistration_dirty(self, server, small_session):
        advertisement = Advertisement(
            site=1, streams=tuple(small_session.site(1).stream_ids)
        )
        server.register_advertisement(advertisement)
        server.withdraw_site(1)
        assert server.register_advertisement(advertisement) is True
        assert server.registrations_applied == 2

    def test_unchanged_rounds_apply_nothing(self, small_session, rng):
        """System-level regression: round 2 with static state registers 0."""
        from repro.core.randomized import RandomJoinBuilder
        from repro.pubsub.system import PubSubSystem

        system = PubSubSystem(
            session=small_session, builder=RandomJoinBuilder()
        )
        streams = list(small_session.site(1).stream_ids)[:2]
        system.subscribe_display(0, "disp-0-0", streams)
        system.run_control_round(rng.spawn("r1"))
        applied_after_first = system.server.registrations_applied
        system.run_control_round(rng.spawn("r2"))
        # Every per-site report of round 2 was identical: all skipped.
        assert system.server.registrations_applied == applied_after_first
        assert (
            system.server.registrations_skipped
            == 2 * small_session.n_sites
        )

    def test_registered_sites_tracks_withdrawals(self, server, small_session):
        advertise_all(server, small_session)
        server.register_subscription(
            SiteSubscription(site=0, streams=(StreamId(1, 0),))
        )
        assert server.registered_sites() == [0, 1, 2, 3]
        server.withdraw_site(2)
        assert server.registered_sites() == [0, 1, 3]


class TestWithdrawRacingPendingRound:
    """Satellite: withdraw lands after registration, before the build."""

    def test_forest_excludes_withdrawn_site_and_audits_clean(
        self, server, small_session, rng
    ):
        from repro.sim.invariants import InvariantAuditor

        advertise_all(server, small_session)
        for site in range(small_session.n_sites):
            other = (site + 1) % small_session.n_sites
            server.register_subscription(
                SiteSubscription(
                    site=site,
                    streams=tuple(
                        sorted(small_session.site(other).stream_ids)
                    )[:2],
                )
            )
        # The "round" is pending: registrations done, build not yet run.
        server.withdraw_site(2)
        directive = server.build_overlay(rng)
        assert all(
            2 not in (parent, child) for _, parent, child in directive.edges
        )
        # Nothing is delivered *to* the withdrawn site either, and no
        # satisfied request names it.
        assert directive.streams_received_by(2) == set()
        result = server.last_result
        assert all(request.subscriber != 2 for request in result.satisfied)
        auditor = InvariantAuditor(strict=True)
        auditor.audit_build(result, event="withdraw-race")
        assert auditor.report().ok


class TestDeltaDirectives:
    """Repair-served rounds emit edge deltas against the previous epoch."""

    def make_server(self, session) -> MembershipServer:
        return MembershipServer(
            session=session,
            builder=RandomJoinBuilder(),
            latency_bound_ms=150.0,
            rebuild_policy="incremental",
        )

    def subscribe(self, server, session, sites) -> None:
        advertise_all(server, session)
        for site in sites:
            other = (site + 1) % session.n_sites
            server.register_subscription(
                SiteSubscription(
                    site=site,
                    streams=tuple(sorted(session.site(other).stream_ids))[:2],
                )
            )

    def test_first_round_is_full(self, small_session):
        server = self.make_server(small_session)
        self.subscribe(server, small_session, sites=(0, 1))
        directive = server.build_overlay(RngStream(5, label="t").spawn("r1"))
        assert not directive.is_delta

    def test_repair_round_emits_delta(self, small_session):
        server = self.make_server(small_session)
        self.subscribe(server, small_session, sites=(0, 1, 2))
        rng = RngStream(5, label="t")
        first = server.build_overlay(rng.spawn("r1"))
        server.withdraw_site(2)
        second = server.build_overlay(rng.spawn("r2"))
        assert server.last_mode == "repair"
        assert second.is_delta and second.base_epoch == first.epoch
        # The delta reconstructs the full set from the previous epoch.
        patched = (set(first.edges) - set(second.removed)) | set(second.added)
        assert patched == set(second.edges)
        # And it is genuinely smaller than re-shipping the forest.
        assert second.payload_edges() < len(first.edges) + len(second.edges)

    def test_rebuild_round_is_full(self, small_session):
        """An 'always' server never emits deltas even across rounds."""
        server = MembershipServer(
            session=small_session,
            builder=RandomJoinBuilder(),
            latency_bound_ms=150.0,
            rebuild_policy="always",
        )
        self.subscribe(server, small_session, sites=(0, 1))
        rng = RngStream(5, label="t")
        server.build_overlay(rng.spawn("r1"))
        second = server.build_overlay(rng.spawn("r2"))
        assert server.last_mode == "rebuild"
        assert not second.is_delta


class TestBuildOverlay:
    def test_directive_epoch_increments(self, server, small_session, rng):
        advertise_all(server, small_session)
        server.register_subscription(
            SiteSubscription(site=0, streams=(StreamId(1, 0),))
        )
        d1 = server.build_overlay(rng.spawn("1"))
        d2 = server.build_overlay(rng.spawn("2"))
        assert (d1.epoch, d2.epoch) == (1, 2)

    def test_edges_cover_satisfied_requests(self, server, small_session, rng):
        advertise_all(server, small_session)
        server.register_subscription(
            SiteSubscription(
                site=0, streams=(StreamId(1, 0), StreamId(2, 0))
            )
        )
        directive = server.build_overlay(rng)
        received = directive.streams_received_by(0)
        assert received == {StreamId(1, 0), StreamId(2, 0)}
        assert server.last_result is not None
        assert not server.last_result.rejected


class TestRebuildPolicy:
    def make_server(self, session, policy: str) -> MembershipServer:
        return MembershipServer(
            session=session,
            builder=RandomJoinBuilder(),
            latency_bound_ms=150.0,
            rebuild_policy=policy,
        )

    def subscribe(self, server, session, sites=(0, 1)) -> None:
        advertise_all(server, session)
        for site in sites:
            other = (site + 1) % session.n_sites
            server.register_subscription(
                SiteSubscription(
                    site=site,
                    streams=tuple(sorted(session.site(other).stream_ids))[:2],
                )
            )

    def test_unknown_policy_rejected(self, small_session):
        with pytest.raises(ConfigurationError):
            self.make_server(small_session, "sometimes")

    def test_negative_drift_budget_rejected(self, small_session):
        with pytest.raises(ConfigurationError):
            MembershipServer(
                session=small_session,
                builder=RandomJoinBuilder(),
                rebuild_policy="hybrid",
                drift_budget=-0.5,
            )

    def test_policy_defaults_to_session(self, small_session):
        small_session.rebuild_policy = "incremental"
        server = MembershipServer(
            session=small_session, builder=RandomJoinBuilder()
        )
        assert server.rebuild_policy == "incremental"

    def test_always_policy_only_rebuilds(self, small_session):
        server = self.make_server(small_session, "always")
        self.subscribe(server, small_session)
        rng = RngStream(5, label="t")
        server.build_overlay(rng.spawn("r1"))
        server.build_overlay(rng.spawn("r2"))
        assert (server.repairs, server.rebuilds) == (0, 2)
        assert server.last_mode == "rebuild"

    def test_incremental_repairs_after_bootstrap(self, small_session):
        server = self.make_server(small_session, "incremental")
        self.subscribe(server, small_session)
        rng = RngStream(5, label="t")
        server.build_overlay(rng.spawn("r1"))
        assert server.last_mode == "rebuild"  # nothing to repair yet
        assert server.last_disruption is None
        server.build_overlay(rng.spawn("r2"))
        assert server.last_mode == "repair"
        assert server.last_disruption == 0.0  # unchanged workload
        assert (server.repairs, server.rebuilds) == (1, 1)

    def test_withdrawn_site_is_repaired_out(self, small_session):
        server = self.make_server(small_session, "incremental")
        self.subscribe(server, small_session, sites=(0, 1, 2))
        rng = RngStream(5, label="t")
        server.build_overlay(rng.spawn("r1"))
        server.withdraw_site(2)
        directive = server.build_overlay(rng.spawn("r2"))
        assert server.last_mode == "repair"
        assert all(
            2 not in (parent, child)
            for _, parent, child in directive.edges
        )

    def test_hybrid_stays_within_drift_budget(self, small_session):
        """The adopted forest costs at most (1+budget)x the exact scratch
        solution the server itself computed (reconstructed via the
        label-derived RNG stream)."""
        server = self.make_server(small_session, "hybrid")
        self.subscribe(server, small_session, sites=(0, 1, 2, 3))
        rng = RngStream(5, label="t")
        server.build_overlay(rng.spawn("r1"))
        server.withdraw_site(3)
        server.build_overlay(rng.spawn("r2"))
        adopted = server.last_result
        scratch = server.builder.build(
            adopted.problem, RngStream(5, label="t").spawn("r2").spawn("scratch")
        )
        assert overlay_cost(adopted) <= overlay_cost(scratch) * (
            1.0 + server.drift_budget
        ) + 1e-9
        assert len(adopted.rejected) <= len(scratch.rejected)


class TestProblemAssembly:
    def make_server(self, session, policy: str, assembly=None) -> MembershipServer:
        return MembershipServer(
            session=session,
            builder=RandomJoinBuilder(),
            latency_bound_ms=150.0,
            rebuild_policy=policy,
            problem_assembly=assembly,
        )

    def subscribe(self, server, session, sites=(0, 1)) -> None:
        advertise_all(server, session)
        for site in sites:
            other = (site + 1) % session.n_sites
            server.register_subscription(
                SiteSubscription(
                    site=site,
                    streams=tuple(sorted(session.site(other).stream_ids))[:2],
                )
            )

    def test_unknown_assembly_rejected(self, small_session):
        with pytest.raises(ConfigurationError):
            self.make_server(small_session, "always", "lazy")

    def test_assembly_defaults_to_session(self, small_session):
        server = self.make_server(small_session, "always")
        assert server.problem_assembly == "auto"

    def test_auto_under_always_stays_scratch(self, small_session):
        server = self.make_server(small_session, "always")
        self.subscribe(server, small_session)
        rng = RngStream(5, label="t")
        server.build_overlay(rng.spawn("r1"))
        server.build_overlay(rng.spawn("r2"))
        assert (server.assemblies_diffed, server.assemblies_scratch) == (0, 2)
        assert server.last_assembly == "scratch"

    def test_auto_under_incremental_diffs_after_bootstrap(self, small_session):
        server = self.make_server(small_session, "incremental")
        self.subscribe(server, small_session)
        rng = RngStream(5, label="t")
        server.build_overlay(rng.spawn("r1"))
        assert server.last_assembly == "scratch"  # no previous problem
        server.build_overlay(rng.spawn("r2"))
        assert server.last_assembly == "diffed"
        assert (server.assemblies_diffed, server.assemblies_scratch) == (1, 1)

    def test_evolved_rounds_share_dense_matrix(self, small_session):
        server = self.make_server(small_session, "incremental")
        self.subscribe(server, small_session)
        rng = RngStream(5, label="t")
        server.build_overlay(rng.spawn("r1"))
        first = server.last_result.problem
        server.register_subscription(
            SiteSubscription(
                site=2,
                streams=tuple(sorted(small_session.site(0).stream_ids))[:1],
            )
        )
        server.build_overlay(rng.spawn("r2"))
        second = server.last_result.problem
        assert second is not first
        assert second.dense_cost_matrix() is first.dense_cost_matrix()

    def test_forced_diffed_matches_scratch_directives(self, small_session):
        """Same registrations, both assemblies: identical directives."""
        rounds = []
        for assembly in ("diffed", "scratch"):
            server = self.make_server(small_session, "incremental", assembly)
            self.subscribe(server, small_session)
            rng = RngStream(5, label="t")
            directives = [server.build_overlay(rng.spawn("r1"))]
            server.withdraw_site(1)
            directives.append(server.build_overlay(rng.spawn("r2")))
            self.subscribe(server, small_session, sites=(1, 3))
            directives.append(server.build_overlay(rng.spawn("r3")))
            rounds.append(directives)
        assert rounds[0] == rounds[1]


class TestDirtyDeltaAssembly:
    """Edge cases of the O(churn) dirty-derived problem delta.

    The digest matrix in ``tests/scenarios/test_delta_digests.py`` pins
    dirty- vs scan-derived assembly end to end; these tests target the
    derivation's corner states directly: withdrawals racing dirty marks,
    dirty-but-unchanged streams, and a round where every group churns.
    """

    @pytest.fixture
    def diffed_server(self, small_session) -> MembershipServer:
        return MembershipServer(
            session=small_session,
            builder=RandomJoinBuilder(),
            latency_bound_ms=150.0,
            rebuild_policy="incremental",
            problem_assembly="diffed",
            delta_source="dirty",
        )

    @staticmethod
    def scan_groups(server: MembershipServer) -> list:
        """The reference group list, re-derived by the full scan."""
        from repro.core.problem import ForestProblem

        return ForestProblem.from_workload(
            server.session, server.global_workload(), server.latency_bound_ms
        ).groups

    def test_withdraw_while_dirty(self, diffed_server, small_session, rng):
        server = diffed_server
        advertise_all(server, small_session)
        server.register_subscription(
            SiteSubscription(site=0, streams=(StreamId(1, 0), StreamId(2, 0)))
        )
        server.register_subscription(
            SiteSubscription(site=3, streams=(StreamId(2, 0),))
        )
        server.build_overlay(rng.spawn("r1"))
        # Dirty a group of site 2's, then withdraw the advertiser before
        # the next assembly: the group must come out *removed*, not
        # changed, and site 2's other groups must vanish with it.
        server.register_subscription(
            SiteSubscription(site=3, streams=(StreamId(2, 0), StreamId(2, 1)))
        )
        server.withdraw_site(2)
        server.build_overlay(rng.spawn("r2"))
        assert server.last_assembly == "diffed"
        problem = server.last_result.problem
        assert all(group.stream.site != 2 for group in problem.groups)
        assert problem.groups == self.scan_groups(server)

    def test_reregister_identical_yields_empty_delta(
        self, diffed_server, small_session, rng
    ):
        server = diffed_server
        advertise_all(server, small_session)
        server.register_subscription(
            SiteSubscription(site=0, streams=(StreamId(1, 0),))
        )
        server.build_overlay(rng.spawn("r1"))
        first = server.last_result.problem
        # Identical re-registration is dirty-skipped outright ...
        assert (
            server.register_subscription(
                SiteSubscription(site=0, streams=(StreamId(1, 0),))
            )
            is False
        )
        # ... while a withdraw-then-restore race marks streams dirty
        # without changing any effective group: the delta must come out
        # empty and the next problem share the previous group objects.
        server.withdraw_site(0)
        server.register_advertisement(
            Advertisement(
                site=0, streams=tuple(small_session.site(0).stream_ids)
            )
        )
        server.register_subscription(
            SiteSubscription(site=0, streams=(StreamId(1, 0),))
        )
        server.build_overlay(rng.spawn("r2"))
        second = server.last_result.problem
        assert server.last_assembly == "diffed"
        assert second.groups == first.groups
        assert all(a is b for a, b in zip(second.groups, first.groups))

    def test_full_churn_round_matches_scan(
        self, diffed_server, small_session, rng
    ):
        server = diffed_server
        advertise_all(server, small_session)
        n = small_session.n_sites
        for site in range(n):
            others = [s for s in range(n) if s != site]
            server.register_subscription(
                SiteSubscription(site=site, streams=(StreamId(others[0], 0),))
            )
        server.build_overlay(rng.spawn("r1"))
        # Every site rewires at once: the delta carries removals,
        # additions and changes in the same round, touching every group.
        for site in range(n):
            others = [s for s in range(n) if s != site]
            server.register_subscription(
                SiteSubscription(
                    site=site,
                    streams=(
                        StreamId(others[1], 0),
                        StreamId(others[2], 1),
                    ),
                )
            )
        server.build_overlay(rng.spawn("r2"))
        assert server.last_assembly == "diffed"
        problem = server.last_result.problem
        scan = self.scan_groups(server)
        assert problem.groups == scan
        assert problem.total_requests() == sum(
            len(group.subscribers) for group in scan
        )

    def test_invalid_subscriptions_rejected_at_registration(
        self, diffed_server
    ):
        from repro.errors import SubscriptionError

        # The dirty path never materializes a workload, so the payload
        # validation the workload constructor used to provide must hold
        # at registration time.
        with pytest.raises(SubscriptionError):
            diffed_server.register_subscription(
                SiteSubscription(site=1, streams=(StreamId(1, 0),))
            )
        with pytest.raises(SubscriptionError):
            diffed_server.register_subscription(
                SiteSubscription(site=1, streams=(StreamId(7, 0),))
            )
