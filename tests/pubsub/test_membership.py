"""Tests for the membership server."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.core.incremental import overlay_cost
from repro.core.randomized import RandomJoinBuilder
from repro.pubsub.membership import MembershipServer
from repro.pubsub.messages import Advertisement, SiteSubscription
from repro.session.streams import StreamId
from repro.util.rng import RngStream


@pytest.fixture
def server(small_session) -> MembershipServer:
    return MembershipServer(
        session=small_session,
        builder=RandomJoinBuilder(),
        latency_bound_ms=150.0,
    )


def advertise_all(server, session) -> None:
    for site in session.sites:
        server.register_advertisement(
            Advertisement(site=site.index, streams=tuple(site.stream_ids))
        )


class TestRegistration:
    def test_unknown_site_rejected(self, server):
        with pytest.raises(ProtocolError):
            server.register_subscription(SiteSubscription(site=99, streams=()))

    def test_unknown_stream_rejected(self, server):
        with pytest.raises(ProtocolError):
            server.register_advertisement(
                Advertisement(site=0, streams=(StreamId(0, 999),))
            )

    def test_unadvertised_subscriptions_dropped(self, server, small_session):
        # Only site 1 advertises; subscriptions to site 2 streams vanish.
        server.register_advertisement(
            Advertisement(
                site=1, streams=tuple(small_session.site(1).stream_ids)
            )
        )
        server.register_subscription(
            SiteSubscription(
                site=0, streams=(StreamId(1, 0), StreamId(2, 0))
            )
        )
        workload = server.global_workload()
        assert workload.streams_of(0) == (StreamId(1, 0),)


class TestBuildOverlay:
    def test_directive_epoch_increments(self, server, small_session, rng):
        advertise_all(server, small_session)
        server.register_subscription(
            SiteSubscription(site=0, streams=(StreamId(1, 0),))
        )
        d1 = server.build_overlay(rng.spawn("1"))
        d2 = server.build_overlay(rng.spawn("2"))
        assert (d1.epoch, d2.epoch) == (1, 2)

    def test_edges_cover_satisfied_requests(self, server, small_session, rng):
        advertise_all(server, small_session)
        server.register_subscription(
            SiteSubscription(
                site=0, streams=(StreamId(1, 0), StreamId(2, 0))
            )
        )
        directive = server.build_overlay(rng)
        received = directive.streams_received_by(0)
        assert received == {StreamId(1, 0), StreamId(2, 0)}
        assert server.last_result is not None
        assert not server.last_result.rejected


class TestRebuildPolicy:
    def make_server(self, session, policy: str) -> MembershipServer:
        return MembershipServer(
            session=session,
            builder=RandomJoinBuilder(),
            latency_bound_ms=150.0,
            rebuild_policy=policy,
        )

    def subscribe(self, server, session, sites=(0, 1)) -> None:
        advertise_all(server, session)
        for site in sites:
            other = (site + 1) % session.n_sites
            server.register_subscription(
                SiteSubscription(
                    site=site,
                    streams=tuple(sorted(session.site(other).stream_ids))[:2],
                )
            )

    def test_unknown_policy_rejected(self, small_session):
        with pytest.raises(ConfigurationError):
            self.make_server(small_session, "sometimes")

    def test_negative_drift_budget_rejected(self, small_session):
        with pytest.raises(ConfigurationError):
            MembershipServer(
                session=small_session,
                builder=RandomJoinBuilder(),
                rebuild_policy="hybrid",
                drift_budget=-0.5,
            )

    def test_policy_defaults_to_session(self, small_session):
        small_session.rebuild_policy = "incremental"
        server = MembershipServer(
            session=small_session, builder=RandomJoinBuilder()
        )
        assert server.rebuild_policy == "incremental"

    def test_always_policy_only_rebuilds(self, small_session):
        server = self.make_server(small_session, "always")
        self.subscribe(server, small_session)
        rng = RngStream(5, label="t")
        server.build_overlay(rng.spawn("r1"))
        server.build_overlay(rng.spawn("r2"))
        assert (server.repairs, server.rebuilds) == (0, 2)
        assert server.last_mode == "rebuild"

    def test_incremental_repairs_after_bootstrap(self, small_session):
        server = self.make_server(small_session, "incremental")
        self.subscribe(server, small_session)
        rng = RngStream(5, label="t")
        server.build_overlay(rng.spawn("r1"))
        assert server.last_mode == "rebuild"  # nothing to repair yet
        assert server.last_disruption is None
        server.build_overlay(rng.spawn("r2"))
        assert server.last_mode == "repair"
        assert server.last_disruption == 0.0  # unchanged workload
        assert (server.repairs, server.rebuilds) == (1, 1)

    def test_withdrawn_site_is_repaired_out(self, small_session):
        server = self.make_server(small_session, "incremental")
        self.subscribe(server, small_session, sites=(0, 1, 2))
        rng = RngStream(5, label="t")
        server.build_overlay(rng.spawn("r1"))
        server.withdraw_site(2)
        directive = server.build_overlay(rng.spawn("r2"))
        assert server.last_mode == "repair"
        assert all(
            2 not in (parent, child)
            for _, parent, child in directive.edges
        )

    def test_hybrid_stays_within_drift_budget(self, small_session):
        """The adopted forest costs at most (1+budget)x the exact scratch
        solution the server itself computed (reconstructed via the
        label-derived RNG stream)."""
        server = self.make_server(small_session, "hybrid")
        self.subscribe(server, small_session, sites=(0, 1, 2, 3))
        rng = RngStream(5, label="t")
        server.build_overlay(rng.spawn("r1"))
        server.withdraw_site(3)
        server.build_overlay(rng.spawn("r2"))
        adopted = server.last_result
        scratch = server.builder.build(
            adopted.problem, RngStream(5, label="t").spawn("r2").spawn("scratch")
        )
        assert overlay_cost(adopted) <= overlay_cost(scratch) * (
            1.0 + server.drift_budget
        ) + 1e-9
        assert len(adopted.rejected) <= len(scratch.rejected)
