"""Tests for the membership server."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.core.randomized import RandomJoinBuilder
from repro.pubsub.membership import MembershipServer
from repro.pubsub.messages import Advertisement, SiteSubscription
from repro.session.streams import StreamId


@pytest.fixture
def server(small_session) -> MembershipServer:
    return MembershipServer(
        session=small_session,
        builder=RandomJoinBuilder(),
        latency_bound_ms=150.0,
    )


def advertise_all(server, session) -> None:
    for site in session.sites:
        server.register_advertisement(
            Advertisement(site=site.index, streams=tuple(site.stream_ids))
        )


class TestRegistration:
    def test_unknown_site_rejected(self, server):
        with pytest.raises(ProtocolError):
            server.register_subscription(SiteSubscription(site=99, streams=()))

    def test_unknown_stream_rejected(self, server):
        with pytest.raises(ProtocolError):
            server.register_advertisement(
                Advertisement(site=0, streams=(StreamId(0, 999),))
            )

    def test_unadvertised_subscriptions_dropped(self, server, small_session):
        # Only site 1 advertises; subscriptions to site 2 streams vanish.
        server.register_advertisement(
            Advertisement(
                site=1, streams=tuple(small_session.site(1).stream_ids)
            )
        )
        server.register_subscription(
            SiteSubscription(
                site=0, streams=(StreamId(1, 0), StreamId(2, 0))
            )
        )
        workload = server.global_workload()
        assert workload.streams_of(0) == (StreamId(1, 0),)


class TestBuildOverlay:
    def test_directive_epoch_increments(self, server, small_session, rng):
        advertise_all(server, small_session)
        server.register_subscription(
            SiteSubscription(site=0, streams=(StreamId(1, 0),))
        )
        d1 = server.build_overlay(rng.spawn("1"))
        d2 = server.build_overlay(rng.spawn("2"))
        assert (d1.epoch, d2.epoch) == (1, 2)

    def test_edges_cover_satisfied_requests(self, server, small_session, rng):
        advertise_all(server, small_session)
        server.register_subscription(
            SiteSubscription(
                site=0, streams=(StreamId(1, 0), StreamId(2, 0))
            )
        )
        directive = server.build_overlay(rng)
        received = directive.streams_received_by(0)
        assert received == {StreamId(1, 0), StreamId(2, 0)}
        assert server.last_result is not None
        assert not server.last_result.rejected
