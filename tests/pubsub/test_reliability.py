"""Tests for the control plane's self-healing machinery.

Covers the three reliability mechanisms the fault layer exists to
exercise — idempotent sequencing, retransmit with capped backoff, and
heartbeat failure detection — plus the withdraw-vs-heartbeat race the
dedupe path exists for.
"""

from __future__ import annotations

import pytest

from repro.core.randomized import RandomJoinBuilder
from repro.pubsub.faults import FaultConfig, PartitionWindow
from repro.pubsub.messages import Advertise, Subscribe, Withdraw
from repro.pubsub.service import MembershipService
from repro.pubsub.system import PubSubSystem
from repro.sim.engine import Simulator
from repro.util.rng import RngStream


def make_chaos_service(
    session,
    faults: FaultConfig | None = None,
    heartbeat_ms: float = 0.0,
    miss_threshold: int = 3,
    retransmit_timeout_ms: float = 0.0,
    drop_filter=None,
    control_delay_ms: float = 0.0,
    debounce_ms: float = 0.0,
) -> tuple[PubSubSystem, MembershipService, Simulator]:
    system = PubSubSystem(session=session, builder=RandomJoinBuilder())
    sim = Simulator()
    service = system.async_service(
        sim,
        RngStream(5, label="reliability-test"),
        control_delay_ms=control_delay_ms,
        debounce_ms=debounce_ms,
        faults=faults or FaultConfig(),
        chaos_rng=RngStream(9, label="chaos"),
        heartbeat_ms=heartbeat_ms,
        miss_threshold=miss_threshold,
        retransmit_timeout_ms=retransmit_timeout_ms,
    )
    if drop_filter is not None:
        service.link.drop_filter = drop_filter
    return system, service, sim


def announce_all(system: PubSubSystem, service: MembershipService) -> None:
    for site, rp in sorted(system.rps.items()):
        service.advertise(rp.advertisement())
        service.subscribe(rp.aggregate_subscription())


class TestSequencing:
    def test_seq_monotonic_per_site(self, small_session):
        _, service, _ = make_chaos_service(small_session)
        first = service.advertise(service.rps[0].advertisement())
        second = service.subscribe(service.rps[0].aggregate_subscription())
        other = service.advertise(service.rps[1].advertisement())
        assert (first.seq, second.seq) == (1, 2)
        assert other.seq == 1  # independent counter per site

    def test_duplicate_report_discarded(self, small_session):
        system, service, sim = make_chaos_service(small_session)
        message = service.advertise(system.rps[0].advertisement())
        sim.run()
        applied_before = system.server.registrations_applied
        rounds_before = len(service.rounds)
        service._receive(message)  # a duplicate copy arrives
        sim.run()
        assert service.duplicates_discarded == 1
        # No re-apply, and crucially no extra build round was dirtied.
        assert system.server.registrations_applied == applied_before
        assert len(service.rounds) == rounds_before

    def test_withdraw_floor_kills_reordered_pre_leave_reports(
        self, small_session
    ):
        system, service, sim = make_chaos_service(small_session)
        rp = system.rps[2]
        advertise = Advertise(
            sent_ms=0.0, epoch=-1, advertisement=rp.advertisement(), seq=1
        )
        late_subscribe = Subscribe(
            sent_ms=0.0,
            epoch=-1,
            subscription=rp.aggregate_subscription(),
            seq=2,
        )
        withdraw = Withdraw(sent_ms=0.0, epoch=-1, site=2, seq=3)
        service._receive(advertise)
        assert system.server.is_registered(2)
        service._receive(withdraw)
        assert not system.server.is_registered(2)
        # The pre-leave subscription arrives after the withdrawal: it
        # must not resurrect the departed site.
        service._receive(late_subscribe)
        assert service.stale_reports_discarded == 1
        assert not system.server.is_registered(2)

    def test_unsequenced_envelopes_always_apply(self, small_session):
        """seq=0 marks hand-built legacy envelopes: no dedup applies."""
        system, service, _ = make_chaos_service(small_session)
        rp = system.rps[0]
        message = Advertise(
            sent_ms=0.0, epoch=-1, advertisement=rp.advertisement()
        )
        assert message.seq == 0
        service._receive(message)
        service._receive(message)
        assert service.duplicates_discarded == 0
        assert system.server.is_registered(0)


class TestWithdrawHeartbeatRace:
    def test_leave_after_suspicion_does_not_double_withdraw(
        self, small_session
    ):
        """Server already suspected the site; the explicit LEAVE arriving
        afterwards must not withdraw twice or roll a second epoch."""
        system, service, sim = make_chaos_service(small_session)
        announce_all(system, service)
        sim.run()
        rounds_before = len(service.rounds)
        service._suspect(2)  # the failure detector got there first
        service.withdraw(2)  # ...then the explicit LEAVE lands
        sim.run()
        assert service.duplicate_withdraws == 1
        # Exactly one extra round: the suspicion's, not the LEAVE's.
        assert len(service.rounds) == rounds_before + 1
        assert not system.server.is_registered(2)

    def test_suspicion_after_leave_is_a_noop(self, small_session):
        """The reverse order: the site already left, so the detector
        sweep finds nothing to suspect."""
        system, service, sim = make_chaos_service(small_session)
        announce_all(system, service)
        service.withdraw(2)
        sim.run()
        service._detect()  # a sweep right after the withdrawal applied
        assert service.detected_failures == 0

    def test_rejoin_clears_the_withdrawn_latch(self, small_session):
        """A site that left and rejoins is withdrawable again."""
        system, service, sim = make_chaos_service(small_session)
        announce_all(system, service)
        service.withdraw(1)
        sim.run()
        service.advertise(system.rps[1].advertisement())
        sim.run()
        assert system.server.is_registered(1)
        service.withdraw(1)
        sim.run()
        assert not system.server.is_registered(1)
        assert service.duplicate_withdraws == 0


class TestRetransmission:
    def test_lost_reports_are_retransmitted(self, small_session):
        dropped: list[str] = []

        def drop_first_attempt(kind, message, attempt):
            if kind in ("advertise", "subscribe") and attempt == 0:
                dropped.append(kind)
                return True
            return False

        system, service, sim = make_chaos_service(
            small_session,
            retransmit_timeout_ms=20.0,
            drop_filter=drop_first_attempt,
        )
        announce_all(system, service)
        sim.run()
        assert len(dropped) == 8  # 4 sites x {advertise, subscribe}
        assert service.retransmits == 8
        assert service.retransmit_giveups == 0
        assert sorted(system.server.registered_sites()) == [0, 1, 2, 3]
        assert service.rounds and service.rounds[-1].converged

    def test_ack_stops_the_retransmit_loop(self, small_session):
        system, service, sim = make_chaos_service(
            small_session, retransmit_timeout_ms=20.0
        )
        announce_all(system, service)
        sim.run()
        # Every report was acked on first delivery: no retransmits, and
        # no pending state survives the drain.
        assert service.retransmits == 0
        assert not service._unacked
        assert not service._pending_directives

    def test_give_up_bounds_unreachable_destinations(self, small_session):
        def drop_directives(kind, message, attempt):
            return kind == "directive"

        system, service, sim = make_chaos_service(
            small_session,
            retransmit_timeout_ms=20.0,
            drop_filter=drop_directives,
        )
        announce_all(system, service)
        sim.run()  # terminating at all proves the backoff chain is capped
        # Exactly one give-up per unreachable destination — never more.
        assert service.retransmit_giveups == 4
        assert service.retransmits == 4 * service.max_retransmits
        # The round settled by giving the sites up, not by acks.
        round_ = service.rounds[-1]
        assert round_.converged
        assert round_.acked == {}
        # ...and the give-ups disarmed everything: no pending entry or
        # timer survives the drain.
        assert service.armed_retransmit_state == 0

    def test_unreachable_report_destination_gives_up_once(
        self, small_session
    ):
        """The report direction of the same bound: the server never acks
        one site's reports, so each report retries to the cap, settles,
        and is counted given-up exactly once."""

        def drop_site2_acks(kind, message, attempt):
            return kind == "control-ack" and message.site == 2

        system, service, sim = make_chaos_service(
            small_session,
            retransmit_timeout_ms=20.0,
            drop_filter=drop_site2_acks,
        )
        announce_all(system, service)
        sim.run()
        # advertise + subscribe from site 2, nothing else.
        assert service.retransmit_giveups == 2
        assert service.retransmits == 2 * service.max_retransmits
        assert service.armed_retransmit_state == 0
        # The reports themselves arrived (only the acks died), so the
        # membership is intact and the round converged.
        assert sorted(system.server.registered_sites()) == [0, 1, 2, 3]
        assert service.rounds[-1].converged


class TestRetransmitTimerHygiene:
    """A departed site's pending report must never fire a ghost
    retransmit after its ``_unacked`` entry is gone."""

    def drop_site2_report_acks(self, kind, message, attempt):
        return (
            kind == "control-ack"
            and message.site == 2
            and message.kind in ("advertise", "subscribe")
        )

    def test_withdraw_cancels_pending_report_timers(self, small_session):
        system, service, sim = make_chaos_service(
            small_session,
            retransmit_timeout_ms=20.0,
            drop_filter=self.drop_site2_report_acks,
        )
        announce_all(system, service)
        # The site leaves while its unacked reports' timers are armed
        # (the first retransmit would fire at ~20ms).
        sim.schedule_at(5.0, lambda: service.withdraw(2))
        sim.run()
        # No ghost: the withdrawal cancelled both pending reports before
        # their timers could fire a single retransmit.
        assert service.retransmits == 0
        assert service.retransmit_giveups == 0
        assert service.armed_retransmit_state == 0
        assert not system.server.is_registered(2)

    def test_fail_site_cancels_pending_report_timers(self, small_session):
        system, service, sim = make_chaos_service(
            small_session,
            retransmit_timeout_ms=20.0,
            drop_filter=self.drop_site2_report_acks,
        )
        announce_all(system, service)
        sim.schedule_at(5.0, lambda: service.fail_site(2))
        sim.run()
        assert service.retransmits == 0
        assert service.retransmit_giveups == 0
        assert service.armed_retransmit_state == 0
        assert not system.server.is_registered(2)

    def test_withdraws_own_report_stays_reliable(self, small_session):
        """Cancelling the departing site's pending reports must not eat
        the withdraw's *own* reliable delivery."""
        dropped = []

        def drop_first_withdraw_ack(kind, message, attempt):
            if (
                kind == "control-ack"
                and message.kind == "withdraw"
                and not dropped
            ):
                dropped.append(message)
                return True
            return False

        system, service, sim = make_chaos_service(
            small_session,
            retransmit_timeout_ms=20.0,
            drop_filter=drop_first_withdraw_ack,
        )
        announce_all(system, service)
        sim.run()
        service.withdraw(2)
        sim.run()
        # The lost ack forced exactly one retransmit of the withdraw —
        # its tracking survived the site's own cleanup.
        assert dropped
        assert service.retransmits == 1
        assert service.armed_retransmit_state == 0
        assert not system.server.is_registered(2)

    def test_duplicate_directive_copies_are_idempotent(self, small_session):
        system, service, sim = make_chaos_service(
            small_session,
            faults=FaultConfig(duplicate_rate=1.0),
            retransmit_timeout_ms=20.0,
        )
        announce_all(system, service)
        sim.run()
        assert service.link.duplicated > 0
        assert service.duplicate_directives > 0
        # Every site holds the final epoch exactly once.
        epochs = {rp.epoch for rp in system.rps.values()}
        assert epochs == {service.rounds[-1].epoch}
        for round_ in service.rounds:
            assert round_._install_finished


class TestHeartbeatDetection:
    def test_silent_site_detected_within_bound(self, small_session):
        system, service, sim = make_chaos_service(
            small_session, heartbeat_ms=10.0, miss_threshold=3
        )
        announce_all(system, service)
        sim.schedule_at(55.0, lambda: service.fail_site(2))
        sim.run(until_ms=200.0)
        service.quiesce()
        sim.run()
        assert service.detected_failures == 1
        assert service.false_suspicions == 0
        assert not system.server.is_registered(2)
        # Silence-to-withdrawal within miss_threshold beats + one sweep.
        assert len(service.detection_latencies) == 1
        assert service.detection_latencies[0] <= 3 * 10.0 + 10.0

    def test_live_sites_never_suspected_on_clean_links(self, small_session):
        system, service, sim = make_chaos_service(
            small_session, heartbeat_ms=10.0, miss_threshold=3
        )
        announce_all(system, service)
        sim.run(until_ms=300.0)
        service.quiesce()
        sim.run()
        assert service.detected_failures == 0
        assert sorted(system.server.registered_sites()) == [0, 1, 2, 3]
        assert service.heartbeats_sent > 0

    def test_fail_site_without_heartbeats_degrades_to_withdraw(
        self, small_session
    ):
        system, service, sim = make_chaos_service(small_session)
        announce_all(system, service)
        sim.run()
        message = service.fail_site(2)
        sim.run()
        assert isinstance(message, Withdraw)
        assert not system.server.is_registered(2)

    def test_fail_site_with_heartbeats_sends_nothing(self, small_session):
        system, service, sim = make_chaos_service(
            small_session, heartbeat_ms=10.0
        )
        announce_all(system, service)
        sim.run(until_ms=30.0)
        sent_before = service.link.sent
        assert service.fail_site(2) is None
        assert service.link.sent == sent_before  # silence, not a message

    def test_zombie_site_readmitted_after_partition_heals(
        self, small_session
    ):
        """A partitioned site is falsely suspected; once the window
        heals, its heartbeat provokes a rejoin and it re-admits itself
        as a fresh join."""
        system, service, sim = make_chaos_service(
            small_session,
            faults=FaultConfig(
                partitions=(
                    PartitionWindow(site=1, start_ms=30.0, end_ms=100.0),
                )
            ),
            heartbeat_ms=10.0,
            miss_threshold=3,
        )
        announce_all(system, service)
        sim.run(until_ms=200.0)
        service.quiesce()
        sim.run()
        assert service.false_suspicions >= 1
        assert service.rejoin_requests >= 1
        assert service.readmissions >= 1
        # The zombie round-trip healed: everyone is registered again.
        assert sorted(system.server.registered_sites()) == [0, 1, 2, 3]
        assert service.detection_latencies == []  # no *real* failure

    def test_quiesce_terminates_periodic_work(self, small_session):
        system, service, sim = make_chaos_service(
            small_session, heartbeat_ms=10.0
        )
        announce_all(system, service)
        sim.run(until_ms=50.0)
        service.quiesce()
        sim.run()  # would never return if beats kept rearming
        assert service._detector is None
        assert not service._heartbeat_timers
