"""Tests for the control-plane message vocabulary."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.core.model import RejectionReason, SubscriptionRequest
from repro.pubsub.messages import (
    Advertise,
    Advertisement,
    DirectiveAck,
    DisplaySubscription,
    OverlayDirective,
    SiteSubscription,
    Subscribe,
    Withdraw,
)
from repro.session.streams import StreamId


class TestDisplaySubscription:
    def test_local_stream_rejected(self):
        with pytest.raises(ProtocolError):
            DisplaySubscription(
                display_id="d0", site=1, streams=(StreamId(1, 0),)
            )

    def test_remote_streams_ok(self):
        sub = DisplaySubscription(
            display_id="d0", site=1, streams=(StreamId(0, 0),)
        )
        assert sub.streams == (StreamId(0, 0),)


class TestAdvertisement:
    def test_foreign_stream_rejected(self):
        with pytest.raises(ProtocolError):
            Advertisement(site=0, streams=(StreamId(1, 0),))


class TestOverlayDirective:
    def make_directive(self) -> OverlayDirective:
        s = StreamId(0, 0)
        t = StreamId(1, 0)
        return OverlayDirective(
            epoch=1,
            edges=((s, 0, 1), (s, 1, 2), (t, 1, 0)),
            rejected=(
                (SubscriptionRequest(2, t), RejectionReason.TREE_SATURATED),
            ),
        )

    def test_edges_of_site(self):
        directive = self.make_directive()
        assert directive.edges_of_site(1) == [
            (StreamId(0, 0), 2),
            (StreamId(1, 0), 0),
        ]
        assert directive.edges_of_site(2) == []

    def test_streams_received_by(self):
        directive = self.make_directive()
        assert directive.streams_received_by(0) == {StreamId(1, 0)}
        assert directive.streams_received_by(2) == {StreamId(0, 0)}

    def test_full_directive_is_not_delta(self):
        directive = self.make_directive()
        assert not directive.is_delta
        assert directive.payload_edges() == 3

    def test_delta_payload_counts_adds_and_removes(self):
        s = StreamId(0, 0)
        directive = OverlayDirective(
            epoch=2,
            edges=((s, 0, 1), (s, 0, 2)),
            base_epoch=1,
            added=((s, 0, 2),),
            removed=((s, 1, 2),),
        )
        assert directive.is_delta
        assert directive.payload_edges() == 2

    def test_delta_base_must_precede_epoch(self):
        with pytest.raises(ProtocolError):
            OverlayDirective(epoch=2, edges=(), base_epoch=2)

    def test_delta_without_base_rejected(self):
        with pytest.raises(ProtocolError):
            OverlayDirective(
                epoch=2, edges=(), added=((StreamId(0, 0), 0, 1),)
            )


class TestControlEnvelopes:
    def test_advertise_exposes_site(self):
        message = Advertise(
            sent_ms=12.5,
            epoch=3,
            advertisement=Advertisement(site=2, streams=(StreamId(2, 0),)),
        )
        assert (message.site, message.sent_ms, message.epoch) == (2, 12.5, 3)

    def test_subscribe_exposes_site(self):
        message = Subscribe(
            sent_ms=0.0,
            epoch=-1,
            subscription=SiteSubscription(site=1, streams=(StreamId(0, 0),)),
        )
        assert message.site == 1

    def test_withdraw_and_ack_carry_epoch(self):
        withdraw = Withdraw(sent_ms=5.0, epoch=2, site=4)
        ack = DirectiveAck(sent_ms=7.0, epoch=3, site=4)
        assert (withdraw.site, withdraw.epoch) == (4, 2)
        assert (ack.site, ack.epoch) == (4, 3)
