"""Tests for the control-plane message vocabulary."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.core.model import RejectionReason, SubscriptionRequest
from repro.pubsub.messages import (
    Advertisement,
    DisplaySubscription,
    OverlayDirective,
)
from repro.session.streams import StreamId


class TestDisplaySubscription:
    def test_local_stream_rejected(self):
        with pytest.raises(ProtocolError):
            DisplaySubscription(
                display_id="d0", site=1, streams=(StreamId(1, 0),)
            )

    def test_remote_streams_ok(self):
        sub = DisplaySubscription(
            display_id="d0", site=1, streams=(StreamId(0, 0),)
        )
        assert sub.streams == (StreamId(0, 0),)


class TestAdvertisement:
    def test_foreign_stream_rejected(self):
        with pytest.raises(ProtocolError):
            Advertisement(site=0, streams=(StreamId(1, 0),))


class TestOverlayDirective:
    def make_directive(self) -> OverlayDirective:
        s = StreamId(0, 0)
        t = StreamId(1, 0)
        return OverlayDirective(
            epoch=1,
            edges=((s, 0, 1), (s, 1, 2), (t, 1, 0)),
            rejected=(
                (SubscriptionRequest(2, t), RejectionReason.TREE_SATURATED),
            ),
        )

    def test_edges_of_site(self):
        directive = self.make_directive()
        assert directive.edges_of_site(1) == [
            (StreamId(0, 0), 2),
            (StreamId(1, 0), 0),
        ]
        assert directive.edges_of_site(2) == []

    def test_streams_received_by(self):
        directive = self.make_directive()
        assert directive.streams_received_by(0) == {StreamId(1, 0)}
        assert directive.streams_received_by(2) == {StreamId(0, 0)}
