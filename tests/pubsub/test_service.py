"""Tests for the event-driven membership service."""

from __future__ import annotations

import pytest

from repro.core.randomized import RandomJoinBuilder
from repro.pubsub.messages import SiteSubscription
from repro.pubsub.service import MembershipService
from repro.pubsub.system import PubSubSystem
from repro.session.streams import StreamId
from repro.sim.engine import Simulator
from repro.sim.invariants import InvariantAuditor
from repro.util.rng import RngStream


def make_service(
    session,
    control_delay_ms: float = 0.0,
    debounce_ms: float = 0.0,
    site_delays: dict[int, float] | None = None,
    auditor: InvariantAuditor | None = None,
) -> tuple[PubSubSystem, MembershipService, Simulator]:
    system = PubSubSystem(session=session, builder=RandomJoinBuilder())
    sim = Simulator()
    service = system.async_service(
        sim,
        RngStream(5, label="service-test"),
        control_delay_ms=control_delay_ms,
        debounce_ms=debounce_ms,
        site_delays=site_delays,
        auditor=auditor,
    )
    return system, service, sim


def announce_all(system: PubSubSystem, service: MembershipService) -> None:
    for site, rp in sorted(system.rps.items()):
        service.advertise(rp.advertisement())
        service.subscribe(rp.aggregate_subscription())


class TestZeroDelayRound:
    def test_round_builds_and_installs(self, small_session):
        system, service, sim = make_service(small_session)
        system.subscribe_display(
            0, "disp-0-0", list(small_session.site(1).stream_ids)[:2]
        )
        announce_all(system, service)
        sim.run()
        assert len(service.rounds) == 1
        round_ = service.rounds[0]
        assert round_.epoch == 1
        assert round_.installed == (0, 1, 2, 3)
        assert round_.converged
        assert round_.convergence_ms == 0.0
        for rp in system.rps.values():
            assert rp.epoch == 1
        assert system.rps[0].received_streams() == set(
            list(small_session.site(1).stream_ids)[:2]
        )

    def test_acks_recorded_per_site(self, small_session):
        system, service, sim = make_service(small_session)
        announce_all(system, service)
        sim.run()
        assert sorted(service.rounds[0].acked) == [0, 1, 2, 3]

    def test_empty_session_round_converges_at_build(self, small_session):
        _, service, sim = make_service(small_session, debounce_ms=4.0)
        service.mark_dirty()
        sim.run()
        (round_,) = service.rounds
        assert round_.installed == ()
        assert round_.directive.edges == ()
        assert round_.convergence_ms == 4.0

    def test_hooks_fire_in_order(self, small_session):
        system, service, sim = make_service(small_session)
        calls: list[str] = []
        service.on_round = lambda round_: calls.append(f"round-{round_.epoch}")
        service.on_installed = lambda round_: calls.append(
            f"installed-{round_.epoch}"
        )
        announce_all(system, service)
        sim.run()
        assert calls == ["round-1", "installed-1"]


class TestDebounce:
    def test_messages_inside_window_coalesce(self, small_session):
        system, service, sim = make_service(small_session, debounce_ms=10.0)
        rp0, rp1 = system.rps[0], system.rps[1]
        sim.schedule_at(0.0, lambda: service.advertise(rp0.advertisement()))
        sim.schedule_at(5.0, lambda: service.advertise(rp1.advertisement()))
        sim.run()
        assert len(service.rounds) == 1
        round_ = service.rounds[0]
        assert round_.trigger_ms == 0.0
        assert round_.built_ms == 10.0
        assert round_.coalesced == 2
        assert round_.installed == (0, 1)

    def test_message_after_window_opens_new_round(self, small_session):
        system, service, sim = make_service(small_session, debounce_ms=10.0)
        rp0, rp1 = system.rps[0], system.rps[1]
        sim.schedule_at(0.0, lambda: service.advertise(rp0.advertisement()))
        sim.schedule_at(25.0, lambda: service.advertise(rp1.advertisement()))
        sim.run()
        assert [round_.epoch for round_ in service.rounds] == [1, 2]
        assert [round_.built_ms for round_ in service.rounds] == [10.0, 35.0]

    def test_withdraw_inside_window_excludes_site(self, small_session):
        """Async variant of the withdraw-racing-a-pending-round satellite."""
        auditor = InvariantAuditor(strict=True)
        system, service, sim = make_service(
            small_session, debounce_ms=10.0, auditor=auditor
        )
        system.subscribe_display(
            0, "disp-0-0", list(small_session.site(2).stream_ids)[:2]
        )
        sim.schedule_at(0.0, lambda: announce_all(system, service))
        # Site 2 withdraws after registering, before the window closes.
        sim.schedule_at(5.0, lambda: service.withdraw(2))
        sim.run()
        (round_,) = service.rounds
        assert 2 not in round_.installed
        assert all(
            2 not in (parent, child)
            for _, parent, child in round_.directive.edges
        )
        assert auditor.report().ok

    def test_pending_build_visible(self, small_session):
        system, service, sim = make_service(small_session, debounce_ms=10.0)
        service.advertise(system.rps[0].advertisement())
        assert not service.pending_build  # message still on the link
        sim.run(until_ms=5.0)
        assert service.pending_build
        sim.run()
        assert not service.pending_build


class TestControlDelay:
    def test_convergence_is_debounce_plus_round_trip(self, small_session):
        system, service, sim = make_service(
            small_session, control_delay_ms=20.0, debounce_ms=10.0
        )
        announce_all(system, service)
        sim.run()
        (round_,) = service.rounds
        # trigger at 20 (first arrival), build at 30, install at 50, ack 70.
        assert round_.trigger_ms == 20.0
        assert round_.built_ms == 30.0
        assert round_.convergence_ms == 50.0
        assert all(time == 70.0 for time in round_.acked.values())

    def test_session_defaults_resolve(self, small_session):
        small_session.control_delay_ms = 7.0
        small_session.debounce_ms = 3.0
        _, service, _ = make_service(
            small_session, control_delay_ms=None, debounce_ms=None
        )
        assert service.control_delay_ms == 7.0
        assert service.debounce_ms == 3.0

    def test_negative_delay_rejected(self, small_session):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            make_service(small_session, control_delay_ms=-1.0)


class TestStaleDirectives:
    def test_out_of_order_delivery_discarded(self, small_session):
        """A slow link makes epoch 1 land after epoch 2: it must be dropped."""
        delays: dict[int, float] = {}
        system, service, sim = make_service(small_session, site_delays=delays)
        announce_all(system, service)   # registrations arrive at t=0
        # Slow site 0's link after its registration but before the build
        # timer fires, so epoch 1's directive crawls (lands at t=100)...
        sim.schedule_at(0.0, lambda: delays.update({0: 100.0}))

        def speed_up_and_redirty() -> None:
            # ...and the link recovers before epoch 2 is pushed, so the
            # newer directive overtakes the older one.
            delays[0] = 1.0
            service.subscribe(
                SiteSubscription(site=1, streams=(StreamId(0, 0),))
            )

        sim.schedule_at(10.0, speed_up_and_redirty)
        sim.run()
        assert [round_.epoch for round_ in service.rounds] == [1, 2]
        assert system.rps[0].epoch == 2      # installed 2, discarded 1
        assert service.stale_directives == 1
        assert service.rounds[0].stale_sites == (0,)
        # The stale site never acks epoch 1, but the round still settles.
        assert 0 not in service.rounds[0].acked
        assert service.rounds[0].converged

    def test_stale_site_audited_at_its_own_epoch(self, small_session):
        """Auditing skips sites that legitimately moved ahead."""
        auditor = InvariantAuditor(strict=True)
        delays: dict[int, float] = {}
        system, service, sim = make_service(
            small_session, site_delays=delays, auditor=auditor
        )
        announce_all(system, service)
        sim.schedule_at(0.0, lambda: delays.update({0: 100.0}))

        def speed_up_and_redirty() -> None:
            delays[0] = 1.0
            service.subscribe(
                SiteSubscription(site=1, streams=(StreamId(0, 0),))
            )

        sim.schedule_at(10.0, speed_up_and_redirty)
        sim.run()
        report = auditor.report()
        assert report.ok
        assert report.events_audited == 2


class TestOverlapDetection:
    def test_mid_install_trigger_counts_as_overlap(self, small_session):
        system, service, sim = make_service(small_session, control_delay_ms=30.0)
        announce_all(system, service)   # round 1: build t=30, acks t=90
        sim.schedule_at(
            40.0,
            lambda: service.subscribe(
                SiteSubscription(site=1, streams=(StreamId(0, 0),))
            ),
        )
        sim.run()
        assert len(service.rounds) == 2
        assert service.overlapping_rounds() == 1

    def test_sequential_rounds_do_not_overlap(self, small_session):
        system, service, sim = make_service(small_session)
        announce_all(system, service)
        sim.schedule_at(
            50.0,
            lambda: service.subscribe(
                SiteSubscription(site=1, streams=(StreamId(0, 0),))
            ),
        )
        sim.run()
        assert len(service.rounds) == 2
        assert service.overlapping_rounds() == 0


class TestAssemblyThroughService:
    """The async plane shares the server, hence the evolved problem."""

    def test_rounds_record_assembly_mode(self, small_session):
        small_session.rebuild_policy = "incremental"
        system, service, sim = make_service(small_session)
        system.subscribe_display(
            0, "disp-0-0", list(small_session.site(1).stream_ids)[:2]
        )
        announce_all(system, service)
        sim.run()
        system.subscribe_display(
            0, "disp-0-0", list(small_session.site(2).stream_ids)[:2]
        )
        service.subscribe(system.rps[0].aggregate_subscription())
        sim.run()
        assert [r.assembly for r in service.rounds] == ["scratch", "diffed"]
        assert system.server.assemblies_diffed == 1
