"""Tests for membership-server crash/recovery.

The server's registrations are *soft state* in the Scattercast sense:
the directory must survive a process death because every site can
regenerate its own slice.  These tests pin the four pillars —

* a crash erases every piece of in-server state (and only that state),
* directives and acks from a dead incarnation are discarded,
* first contact with a new incarnation triggers a full soft-state
  refresh that reconstructs the registrations bit-for-bit,
* reports a site sent into the outage are parked and replayed, so no
  membership change is ever lost,

plus the durable-checkpoint warm restart, the epoch floor that stops a
cold server from re-issuing installed epochs, and the zero-knob
guarantee that none of this machinery exists until it is asked for.
"""

from __future__ import annotations

import pytest

from repro.core.randomized import RandomJoinBuilder
from repro.errors import ConfigurationError
from repro.pubsub.faults import FaultConfig, ServerOutageWindow
from repro.pubsub.system import PubSubSystem
from repro.sim.engine import Simulator
from repro.util.rng import RngStream


def make_crash_service(
    session,
    faults: FaultConfig | None = None,
    heartbeat_ms: float = 40.0,
    miss_threshold: int = 3,
    retransmit_timeout_ms: float = 60.0,
    control_delay_ms: float = 5.0,
    debounce_ms: float = 0.0,
    phi_threshold: float | None = None,
    checkpoint_interval_ms: float | None = None,
    server_failover: bool | None = None,
):
    system = PubSubSystem(session=session, builder=RandomJoinBuilder())
    sim = Simulator()
    service = system.async_service(
        sim,
        RngStream(5, label="crash-test"),
        control_delay_ms=control_delay_ms,
        debounce_ms=debounce_ms,
        faults=faults or FaultConfig(),
        chaos_rng=RngStream(9, label="chaos"),
        heartbeat_ms=heartbeat_ms,
        miss_threshold=miss_threshold,
        retransmit_timeout_ms=retransmit_timeout_ms,
        phi_threshold=phi_threshold,
        checkpoint_interval_ms=checkpoint_interval_ms,
        server_failover=server_failover,
    )
    return system, service, sim


def announce_all(system, service) -> None:
    for site, rp in sorted(system.rps.items()):
        service.advertise(rp.advertisement())
        service.subscribe(rp.aggregate_subscription())


class TestCrashSemantics:
    def test_crash_wipes_registrations_and_pending_timers(self, small_session):
        system, service, sim = make_crash_service(small_session)
        announce_all(system, service)
        sim.run(200.0)
        assert system.server.registered_sites()
        service.crash_server()
        assert service.server_down
        assert not system.server.registered_sites()
        assert not service.pending_build
        assert service.armed_retransmit_state == 0
        assert service.server_crashes == 1

    def test_crash_is_idempotent(self, small_session):
        _, service, sim = make_crash_service(small_session)
        sim.run(50.0)
        service.crash_server()
        service.crash_server()
        assert service.server_crashes == 1
        service.recover_server()
        service.recover_server()
        assert service.server_recoveries == 1
        assert service.incarnation == 2

    def test_messages_into_a_dead_server_vanish(self, small_session):
        system, service, sim = make_crash_service(small_session)
        service.crash_server()
        service.advertise(system.rps[0].advertisement())
        sim.run(100.0)
        assert service.messages_lost_to_outage > 0
        assert not system.server.registered_sites()

    def test_observability_counters_survive_the_crash(self, small_session):
        system, service, sim = make_crash_service(small_session)
        announce_all(system, service)
        sim.run(200.0)
        rounds_before = len(service.rounds)
        service.crash_server()
        assert len(service.rounds) == rounds_before  # history is ours, not the server's


class TestIncarnations:
    def test_stale_incarnation_directive_discarded(self, small_session):
        """A dead incarnation's directive still crossing the link must
        not install anything on a site that already saw the successor."""
        system, service, sim = make_crash_service(small_session)
        announce_all(system, service)
        sim.run(300.0)
        # Site 0 learns of incarnation 3 out of band.
        service._known_incarnation[0] = 3
        round_ = service.rounds[-1]
        assert round_.incarnation == 1
        epoch_before = system.rps[0].epoch
        discards_before = service.stale_incarnation_discards
        service._deliver(0, round_)
        assert service.stale_incarnation_discards == discards_before + 1
        assert system.rps[0].epoch == epoch_before

    def test_recovery_bumps_incarnation_and_rounds_carry_it(
        self, small_session
    ):
        system, service, sim = make_crash_service(small_session)
        announce_all(system, service)
        sim.run(200.0)
        service.crash_server()
        service.recover_server()
        assert service.incarnation == 2
        announce_all(system, service)
        sim.run(600.0)
        assert service.rounds[-1].incarnation == 2

    def test_refresh_reconstructs_soft_state_exactly(self, small_session):
        """Cold restart: heartbeat-carried incarnation discovery makes
        every live site replay its advertise/subscribe pair, and the
        rebuilt registrations hash identically to the pre-crash ones."""
        system, service, sim = make_crash_service(small_session)
        announce_all(system, service)
        sim.run(300.0)
        digest_before = system.server.soft_state_digest()
        service.crash_server()
        assert system.server.soft_state_digest() != digest_before
        service.recover_server()
        sim.run(800.0)
        assert service.refresh_replays == len(service.live_sites)
        assert system.server.soft_state_digest() == digest_before

    def test_epoch_floor_survives_cold_restart(self, small_session):
        """A cold server fast-forwards to the highest epoch any report
        carries, so it can never re-issue an epoch sites installed."""
        system, service, sim = make_crash_service(small_session)
        announce_all(system, service)
        sim.run(300.0)
        installed = max(rp.epoch for rp in system.rps.values())
        assert installed > 0
        service.crash_server()
        assert system.server.epoch == 0
        service.recover_server()
        sim.run(900.0)
        assert system.server.epoch > installed
        assert all(rp.epoch > installed for rp in system.rps.values())


class TestParkingAndReplay:
    def outage_faults(self, start=200.0, end=400.0):
        return FaultConfig(outages=(ServerOutageWindow(start, end),))

    def test_ack_starved_reports_park_and_replay(self, small_session):
        """Reports sent into the outage exhaust retransmits, park, and
        land after recovery — the membership change is not lost."""
        system, service, sim = make_crash_service(
            small_session, faults=self.outage_faults()
        )
        assert service.server_failover
        announce_all(system, service)
        sim.run(150.0)
        digest_before = system.server.soft_state_digest()
        sim.run(250.0)
        service.advertise(system.rps[0].advertisement())  # into the void
        sim.run(1200.0)
        service.quiesce()
        sim.run()
        assert service.server_suspicions >= 1
        assert service.reports_parked >= 1
        assert service.reports_replayed == service.reports_parked
        assert service.parked_reports == 0
        assert not service.suspecting_sites
        assert system.server.soft_state_digest() == digest_before

    def test_withdraw_during_outage_survives_it(self, small_session):
        system, service, sim = make_crash_service(
            small_session, faults=self.outage_faults()
        )
        announce_all(system, service)
        sim.run(250.0)
        service.withdraw(0)
        sim.run(1200.0)
        service.quiesce()
        sim.run()
        assert 0 not in system.server.registered_sites()
        assert {1, 2, 3} <= set(system.server.registered_sites())
        assert service.parked_reports == 0

    def test_recovery_latency_is_measured(self, small_session):
        system, service, sim = make_crash_service(
            small_session, faults=self.outage_faults()
        )
        announce_all(system, service)
        sim.run(1200.0)
        service.quiesce()
        sim.run()
        assert service.server_recoveries == 1
        assert len(service.recovery_latencies) == 1
        assert 0.0 <= service.mean_recovery_ms() <= service.max_recovery_ms()


class TestCheckpointRestore:
    def test_warm_restart_restores_the_snapshot(self, small_session):
        system, service, sim = make_crash_service(
            small_session, checkpoint_interval_ms=50.0
        )
        announce_all(system, service)
        sim.run(300.0)
        assert service.checkpoints_taken >= 1
        digest = system.server.soft_state_digest()
        service.crash_server()
        service.recover_server()
        assert service.checkpoint_restores == 1
        assert system.server.soft_state_digest() == digest

    def test_cold_restart_without_checkpoint_is_empty(self, small_session):
        system, service, sim = make_crash_service(small_session)
        announce_all(system, service)
        sim.run(300.0)
        service.crash_server()
        service.recover_server()
        assert service.checkpoint_restores == 0
        assert not system.server.registered_sites()


class TestZeroKnob:
    def test_defaults_leave_the_machinery_dark(self, small_session):
        """No outages, no φ, no checkpointing: failover stays off, no
        ack stream is added, and every crash counter reads zero."""
        system, service, sim = make_crash_service(small_session)
        announce_all(system, service)
        sim.run(300.0)
        service.quiesce()
        sim.run()
        assert not service.server_failover
        for counter in (
            "server_crashes",
            "server_recoveries",
            "server_suspicions",
            "reports_parked",
            "reports_replayed",
            "refresh_replays",
            "stale_incarnation_discards",
            "messages_lost_to_outage",
            "checkpoints_taken",
            "checkpoint_restores",
        ):
            assert getattr(service, counter) == 0, counter
        assert service.incarnation == 1

    def test_phi_requires_heartbeats(self, small_session):
        with pytest.raises(ConfigurationError, match="phi_threshold"):
            make_crash_service(
                small_session, heartbeat_ms=0.0, phi_threshold=8.0
            )

    @pytest.mark.parametrize("value", (-1.0, float("nan")))
    def test_bad_phi_threshold_rejected(self, small_session, value):
        with pytest.raises(ConfigurationError, match="phi"):
            make_crash_service(small_session, phi_threshold=value)

    @pytest.mark.parametrize("value", (-1.0, float("nan"), float("inf")))
    def test_bad_checkpoint_interval_rejected(self, small_session, value):
        with pytest.raises(ConfigurationError, match="checkpoint"):
            make_crash_service(small_session, checkpoint_interval_ms=value)
