"""Unit tests for the control-link fault layer."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.pubsub.faults import (
    FaultConfig,
    FaultyLink,
    PartitionWindow,
    ServerOutageWindow,
)
from repro.sim.engine import Simulator
from repro.util.rng import RngStream


class CountingRng:
    """RngStream stand-in that counts every draw."""

    def __init__(self, seed: int = 1) -> None:
        self._rng = RngStream(seed, label="counting")
        self.draws = 0

    def random(self) -> float:
        self.draws += 1
        return self._rng.random()

    def uniform(self, low: float, high: float) -> float:
        self.draws += 1
        return self._rng.uniform(low, high)


def make_link(config: FaultConfig | None = None, **kwargs):
    sim = Simulator()
    rng = CountingRng()
    link = FaultyLink(sim, rng, config or FaultConfig(), **kwargs)
    return sim, rng, link


class TestZeroFaultTransparency:
    def test_no_rng_draws_and_exact_delay(self):
        sim, rng, link = make_link()
        arrivals: list[float] = []
        assert link.transmit(0, 12.5, lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [12.5]
        assert rng.draws == 0
        assert link.sent == link.delivered == 1
        assert link.dropped == 0

    def test_impaired_property(self):
        assert not FaultConfig().impaired
        assert FaultConfig(loss_rate=0.1).impaired
        assert FaultConfig(jitter_ms=1.0).impaired
        assert FaultConfig(duplicate_rate=0.1).impaired
        assert FaultConfig(
            partitions=(PartitionWindow(0, 0.0, 1.0),)
        ).impaired


class TestLoss:
    def test_certain_loss_drops_everything(self):
        sim, _, link = make_link(FaultConfig(loss_rate=1.0))
        arrivals: list[float] = []
        for _ in range(10):
            assert not link.transmit(0, 1.0, lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals == []
        assert link.dropped_loss == 10
        assert link.delivered == 0

    def test_loss_is_deterministic_per_seed(self):
        def outcomes(seed: int) -> list[bool]:
            sim = Simulator()
            link = FaultyLink(
                sim, RngStream(seed, label="loss"), FaultConfig(loss_rate=0.5)
            )
            return [link.transmit(0, 1.0, lambda: None) for _ in range(50)]

        assert outcomes(3) == outcomes(3)
        assert outcomes(3) != outcomes(4)


class TestJitter:
    def test_jitter_bounded_and_additive(self):
        sim, _, link = make_link(FaultConfig(jitter_ms=5.0))
        arrivals: list[float] = []
        for _ in range(20):
            link.transmit(0, 10.0, lambda: arrivals.append(sim.now))
        sim.run()
        assert len(arrivals) == 20
        assert all(10.0 <= t <= 15.0 for t in arrivals)
        assert len(set(arrivals)) > 1  # jitter actually varied


class TestDuplication:
    def test_certain_duplication_delivers_twice(self):
        sim, _, link = make_link(FaultConfig(duplicate_rate=1.0))
        arrivals: list[float] = []
        link.transmit(0, 3.0, lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [3.0, 3.0]
        assert link.duplicated == 1
        assert link.delivered == 1  # the copy is not counted as delivered

    def test_copy_lands_strictly_after_original(self):
        sim, _, link = make_link(FaultConfig(duplicate_rate=1.0))
        order: list[str] = []
        link.transmit(0, 3.0, lambda: order.append("arrival"))
        sim.run()
        # Same timestamp, but (time, sequence) ordering keeps the copy
        # second — two arrivals, never an inverted pair.
        assert order == ["arrival", "arrival"]


class TestPartitions:
    def test_window_cuts_then_heals(self):
        window = PartitionWindow(site=1, start_ms=10.0, end_ms=20.0)
        sim, _, link = make_link(FaultConfig(partitions=(window,)))
        arrivals: list[float] = []

        def send() -> None:
            link.transmit(1, 1.0, lambda: arrivals.append(sim.now))

        for t in (5.0, 12.0, 19.9, 25.0):
            sim.schedule_at(t, send)
        sim.run()
        assert arrivals == [6.0, 26.0]
        assert link.dropped_partition == 2

    def test_other_sites_unaffected(self):
        window = PartitionWindow(site=1, start_ms=0.0, end_ms=100.0)
        sim, _, link = make_link(FaultConfig(partitions=(window,)))
        delivered: list[int] = []
        link.transmit(0, 1.0, lambda: delivered.append(0))
        link.transmit(2, 1.0, lambda: delivered.append(2))
        sim.run()
        assert sorted(delivered) == [0, 2]

    def test_covers_is_half_open(self):
        window = PartitionWindow(site=0, start_ms=10.0, end_ms=20.0)
        assert not window.covers(0, 9.999)
        assert window.covers(0, 10.0)
        assert window.covers(0, 19.999)
        assert not window.covers(0, 20.0)
        assert not window.covers(1, 15.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PartitionWindow(site=-1, start_ms=0.0, end_ms=1.0)
        with pytest.raises(ConfigurationError):
            PartitionWindow(site=0, start_ms=-1.0, end_ms=1.0)
        with pytest.raises(ConfigurationError):
            PartitionWindow(site=0, start_ms=5.0, end_ms=5.0)


class TestDropFilter:
    def test_forced_drop_consumes_no_randomness(self):
        sim, rng, link = make_link(
            FaultConfig(), drop_filter=lambda kind, message, attempt: True
        )
        assert not link.transmit(0, 1.0, lambda: None, kind="advertise")
        assert link.dropped_forced == 1
        assert rng.draws == 0

    def test_filter_sees_kind_message_attempt(self):
        seen: list[tuple] = []

        def spy(kind, message, attempt):
            seen.append((kind, message, attempt))
            return attempt == 0

        sim, _, link = make_link(FaultConfig(), drop_filter=spy)
        assert not link.transmit(0, 1.0, lambda: None, kind="k", message="m")
        assert link.transmit(
            0, 1.0, lambda: None, kind="k", message="m", attempt=1
        )
        assert seen == [("k", "m", 0), ("k", "m", 1)]


class TestConfigValidation:
    def test_bad_probabilities_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(loss_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultConfig(duplicate_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultConfig(jitter_ms=-1.0)


class TestOutageWindowValidation:
    def test_bad_bounds_rejected_with_the_offending_values(self):
        with pytest.raises(ConfigurationError, match="start must be >= 0"):
            ServerOutageWindow(-1.0, 50.0)
        with pytest.raises(ConfigurationError, match="end 50.0 must be after"):
            ServerOutageWindow(50.0, 50.0)
        with pytest.raises(ConfigurationError, match="end 10.0 must be after"):
            ServerOutageWindow(50.0, 10.0)

    def test_overlapping_outages_rejected_with_both_windows_named(self):
        with pytest.raises(
            ConfigurationError,
            match=r"server outage windows overlap: \[100.0, 300.0\) and "
            r"\[200.0, 400.0\)",
        ):
            FaultConfig(
                outages=(
                    ServerOutageWindow(100.0, 300.0),
                    ServerOutageWindow(200.0, 400.0),
                )
            )

    def test_overlap_check_is_order_independent(self):
        with pytest.raises(ConfigurationError, match="overlap"):
            FaultConfig(
                outages=(
                    ServerOutageWindow(200.0, 400.0),
                    ServerOutageWindow(100.0, 300.0),
                )
            )

    def test_disjoint_and_touching_windows_accepted(self):
        config = FaultConfig(
            outages=(
                ServerOutageWindow(100.0, 200.0),
                ServerOutageWindow(200.0, 300.0),
            )
        )
        # Outages impair the server, not the link: the link keeps its
        # zero-fault fast path.
        assert not config.impaired
