"""Tests for the end-to-end pub-sub façade."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.core.randomized import RandomJoinBuilder
from repro.fov.geometry import Vec3
from repro.fov.viewpoint import FieldOfView
from repro.pubsub.system import PubSubSystem
from repro.session.streams import StreamId


@pytest.fixture
def system(small_session) -> PubSubSystem:
    return PubSubSystem(
        session=small_session,
        builder=RandomJoinBuilder(),
        latency_bound_ms=150.0,
    )


class TestSubscription:
    def test_explicit_subscription_round(self, system, rng):
        system.subscribe_display(0, "disp-0-0", [StreamId(1, 0)])
        system.subscribe_display(1, "disp-1-0", [StreamId(0, 0)])
        directive = system.run_control_round(rng)
        assert directive.epoch == 1
        assert system.rps[0].is_receiving(StreamId(1, 0))
        assert system.rps[1].is_receiving(StreamId(0, 0))

    def test_fov_subscription_resolves_streams(self, system):
        fov = FieldOfView(eye=Vec3(6.0, 0.0, 1.5), target=Vec3(0.0, 0.0, 1.0))
        streams = system.subscribe_display_fov(
            site=0, display_id="disp-0-0", fov=fov, target_site=1,
            max_streams=3,
        )
        assert 1 <= len(streams) <= 3
        assert all(stream.site == 1 for stream in streams)

    def test_fov_at_own_site_rejected(self, system):
        fov = FieldOfView(eye=Vec3(6.0, 0.0, 1.5), target=Vec3(0.0, 0.0, 1.0))
        with pytest.raises(ProtocolError):
            system.subscribe_display_fov(
                site=0, display_id="disp-0-0", fov=fov, target_site=0
            )

    def test_unknown_site_rejected(self, system):
        with pytest.raises(ProtocolError):
            system.subscribe_display(99, "d", [StreamId(1, 0)])


class TestControlRounds:
    def test_resubscription_changes_overlay(self, system, rng):
        system.subscribe_display(0, "disp-0-0", [StreamId(1, 0)])
        system.run_control_round(rng.spawn("1"))
        assert system.rps[0].is_receiving(StreamId(1, 0))
        system.subscribe_display(0, "disp-0-0", [StreamId(2, 0)])
        system.run_control_round(rng.spawn("2"))
        assert system.rps[0].is_receiving(StreamId(2, 0))
        assert not system.rps[0].is_receiving(StreamId(1, 0))

    def test_satisfaction_report(self, system, rng):
        system.subscribe_display(0, "disp-0-0", [StreamId(1, 0)])
        system.run_control_round(rng)
        report = system.satisfaction_report()
        assert report[0] == 1.0
        assert set(report) == {0, 1, 2, 3}

    def test_last_result_exposed(self, system, rng):
        assert system.last_result is None
        system.subscribe_display(0, "disp-0-0", [StreamId(1, 0)])
        system.run_control_round(rng)
        assert system.last_result is not None
        system.last_result.verify()
