"""Tests for the RP agent."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.pubsub.messages import DisplaySubscription, OverlayDirective
from repro.pubsub.rp import RPAgent
from repro.session.streams import StreamId


@pytest.fixture
def agent(small_session) -> RPAgent:
    return RPAgent(small_session.site(0))


def sub(display_id: str, streams) -> DisplaySubscription:
    return DisplaySubscription(
        display_id=display_id, site=0, streams=tuple(streams)
    )


class TestDisplayAggregation:
    def test_union_of_displays(self, agent):
        agent.submit_display_subscription(
            sub("disp-0-0", [StreamId(1, 0), StreamId(1, 1)])
        )
        agent.submit_display_subscription(
            sub("disp-0-1", [StreamId(1, 1), StreamId(2, 0)])
        )
        aggregated = agent.aggregate_subscription()
        assert aggregated.streams == (
            StreamId(1, 0), StreamId(1, 1), StreamId(2, 0),
        )

    def test_resubmission_replaces(self, agent):
        agent.submit_display_subscription(sub("disp-0-0", [StreamId(1, 0)]))
        agent.submit_display_subscription(sub("disp-0-0", [StreamId(2, 0)]))
        assert agent.aggregate_subscription().streams == (StreamId(2, 0),)

    def test_clear_display(self, agent):
        agent.submit_display_subscription(sub("disp-0-0", [StreamId(1, 0)]))
        agent.clear_display_subscription("disp-0-0")
        assert agent.aggregate_subscription().streams == ()

    def test_wrong_site_rejected(self, agent):
        with pytest.raises(ProtocolError):
            agent.submit_display_subscription(
                DisplaySubscription(
                    display_id="disp-0-0", site=1, streams=(StreamId(0, 0),)
                )
            )

    def test_unknown_display_rejected(self, agent):
        with pytest.raises(ProtocolError):
            agent.submit_display_subscription(
                sub("ghost-display", [StreamId(1, 0)])
            )


class TestAdvertisement:
    def test_advertises_local_streams(self, agent, small_session):
        advertisement = agent.advertisement()
        assert advertisement.site == 0
        assert set(advertisement.streams) == set(
            small_session.site(0).stream_ids
        )


class TestDirectiveApplication:
    def make_directive(self, epoch=1) -> OverlayDirective:
        return OverlayDirective(
            epoch=epoch,
            edges=(
                (StreamId(1, 0), 1, 0),   # site 0 receives s1^0
                (StreamId(1, 0), 0, 2),   # site 0 relays it to site 2
                (StreamId(0, 0), 0, 3),   # site 0 sends own stream to 3
            ),
        )

    def test_forwarding_table(self, agent):
        agent.apply_directive(self.make_directive())
        assert agent.next_hops(StreamId(1, 0)) == [2]
        assert agent.next_hops(StreamId(0, 0)) == [3]
        assert agent.next_hops(StreamId(9, 9)) == []

    def test_receiving_set(self, agent):
        agent.apply_directive(self.make_directive())
        assert agent.is_receiving(StreamId(1, 0))
        assert not agent.is_receiving(StreamId(0, 0))
        assert agent.received_streams() == {StreamId(1, 0)}

    def test_stale_epoch_rejected(self, agent):
        agent.apply_directive(self.make_directive(epoch=2))
        with pytest.raises(ProtocolError):
            agent.apply_directive(self.make_directive(epoch=2))

    def test_epoch_tracked(self, agent):
        assert agent.epoch == -1
        agent.apply_directive(self.make_directive(epoch=1))
        assert agent.epoch == 1

    def test_displays_for(self, agent):
        agent.submit_display_subscription(sub("disp-0-0", [StreamId(1, 0)]))
        agent.submit_display_subscription(sub("disp-0-1", [StreamId(2, 0)]))
        assert agent.displays_for(StreamId(1, 0)) == ["disp-0-0"]

    def test_satisfied_fraction(self, agent):
        agent.submit_display_subscription(
            sub("disp-0-0", [StreamId(1, 0), StreamId(2, 0)])
        )
        agent.apply_directive(self.make_directive())
        assert agent.satisfied_fraction() == pytest.approx(0.5)

    def test_satisfied_fraction_empty_subscription(self, agent):
        assert agent.satisfied_fraction() == 1.0


class TestDeltaDirectives:
    """apply_directive with edge deltas (repair-served rounds)."""

    FULL_1 = (
        (StreamId(1, 0), 1, 0),   # site 0 receives s1^0
        (StreamId(1, 0), 0, 2),   # relays it to 2
        (StreamId(0, 0), 0, 3),   # own stream to 3
        (StreamId(0, 0), 0, 1),   # own stream to 1
    )
    # Epoch 2: stream s1^0 now relayed to 1 instead of 2; site 0 stops
    # receiving s2^0 never had it; gains s2^0 from site 2.
    FULL_2 = (
        (StreamId(1, 0), 1, 0),
        (StreamId(1, 0), 0, 1),
        (StreamId(0, 0), 0, 3),
        (StreamId(2, 0), 2, 0),
    )

    def delta_directive(self) -> OverlayDirective:
        old, new = set(self.FULL_1), set(self.FULL_2)
        return OverlayDirective(
            epoch=2,
            edges=tuple(sorted(self.FULL_2)),
            base_epoch=1,
            added=tuple(sorted(new - old)),
            removed=tuple(sorted(old - new)),
        )

    def test_delta_equals_full_install(self, small_session):
        """Forwarding tables after a delta apply match a full install."""
        via_delta = RPAgent(small_session.site(0))
        via_full = RPAgent(small_session.site(0))
        first = OverlayDirective(epoch=1, edges=tuple(sorted(self.FULL_1)))
        via_delta.apply_directive(first)
        via_full.apply_directive(first)
        via_delta.apply_directive(self.delta_directive())
        # The twin installs the same epoch as a full-set directive.
        via_full.apply_directive(
            OverlayDirective(epoch=2, edges=tuple(sorted(self.FULL_2)))
        )
        assert via_delta.epoch == via_full.epoch == 2
        for stream in {edge[0] for edge in self.FULL_1 + self.FULL_2}:
            assert via_delta.next_hops(stream) == via_full.next_hops(stream)
        assert via_delta.received_streams() == via_full.received_streams()
        assert via_delta._forwarding == via_full._forwarding

    def test_epoch_gap_falls_back_to_full_set(self, small_session):
        """An RP that missed the base epoch installs from ``edges``."""
        agent = RPAgent(small_session.site(0))   # epoch -1: never installed
        agent.apply_directive(self.delta_directive())
        assert agent.epoch == 2
        assert agent.next_hops(StreamId(1, 0)) == [1]
        assert agent.received_streams() == {StreamId(1, 0), StreamId(2, 0)}

    def test_delta_removing_unknown_edge_rejected(self, small_session):
        agent = RPAgent(small_session.site(0))
        agent.apply_directive(
            OverlayDirective(epoch=1, edges=tuple(sorted(self.FULL_1)))
        )
        bogus = OverlayDirective(
            epoch=2,
            edges=tuple(sorted(self.FULL_1)),
            base_epoch=1,
            removed=((StreamId(5, 5), 0, 2),),
        )
        with pytest.raises(ProtocolError, match="unknown edge"):
            agent.apply_directive(bogus)
