"""Tests for the ViewCast-style selector."""

from __future__ import annotations

import pytest

from repro.errors import SubscriptionError
from repro.fov.camera import camera_ring
from repro.fov.geometry import Vec3
from repro.fov.viewcast import ViewCastSelector
from repro.fov.viewpoint import FieldOfView
from repro.session.streams import StreamId


def make_selector(max_streams: int = 4) -> ViewCastSelector:
    poses = {
        StreamId(0, q): pose for q, pose in enumerate(camera_ring(8))
    }
    return ViewCastSelector(camera_poses=poses, max_streams=max_streams)


def frontal_fov() -> FieldOfView:
    return FieldOfView(eye=Vec3(6.0, 0.0, 1.5), target=Vec3(0.0, 0.0, 1.0))


class TestSelect:
    def test_respects_budget(self):
        assert len(make_selector(3).select(frontal_fov())) == 3

    def test_front_camera_always_selected(self):
        assert StreamId(0, 0) in make_selector().select(frontal_fov())

    def test_candidates_restriction(self):
        selector = make_selector()
        subset = [StreamId(0, 3), StreamId(0, 4)]
        selected = selector.select(frontal_fov(), candidates=subset)
        assert set(selected) <= set(subset)

    def test_unknown_candidate_rejected(self):
        with pytest.raises(SubscriptionError):
            make_selector().select(frontal_fov(), candidates=[StreamId(9, 9)])

    def test_min_score_floor_filters(self):
        poses = {StreamId(0, q): pose for q, pose in enumerate(camera_ring(8))}
        selector = ViewCastSelector(
            camera_poses=poses, max_streams=8, min_score=0.0
        )
        selected = selector.select(frontal_fov())
        # Rear cameras score 0 and must not be selected even with budget.
        assert StreamId(0, 4) not in selected

    def test_invalid_parameters(self):
        with pytest.raises(SubscriptionError):
            ViewCastSelector(camera_poses={}, max_streams=0)
        with pytest.raises(SubscriptionError):
            ViewCastSelector(camera_poses={}, min_score=-0.1)


class TestSelectionOrderAndFloors:
    def test_best_contributor_first(self):
        """Selection preserves the contribution ranking."""
        from repro.fov.contribution import contribution_score

        selector = make_selector(max_streams=4)
        selected = selector.select(frontal_fov())
        scores = [
            contribution_score(frontal_fov(), selector.camera_poses[s])
            for s in selected
        ]
        assert scores == sorted(scores, reverse=True)

    def test_min_score_floor_shrinks_selection(self):
        poses = {StreamId(0, q): pose for q, pose in enumerate(camera_ring(8))}
        permissive = ViewCastSelector(camera_poses=poses, max_streams=8)
        strict = ViewCastSelector(
            camera_poses=poses, max_streams=8, min_score=0.9
        )
        assert len(strict.select(frontal_fov())) <= len(
            permissive.select(frontal_fov())
        )

    def test_budget_above_pool_returns_contributors_only(self):
        selector = make_selector(max_streams=50)
        selected = selector.select(frontal_fov())
        assert 0 < len(selected) < 8  # rear cameras never contribute

    def test_deterministic(self):
        assert make_selector().select(frontal_fov()) == make_selector().select(
            frontal_fov()
        )

    def test_empty_candidates_selects_nothing(self):
        assert make_selector().select(frontal_fov(), candidates=[]) == []

    def test_multi_site_catalogue_restricted_by_candidates(self):
        poses = {
            StreamId(site, q): pose
            for site in (0, 1)
            for q, pose in enumerate(camera_ring(4))
        }
        selector = ViewCastSelector(camera_poses=poses, max_streams=8)
        only_site_1 = [s for s in poses if s.site == 1]
        selected = selector.select(frontal_fov(), candidates=only_site_1)
        assert selected
        assert all(stream.site == 1 for stream in selected)
