"""Tests for the FieldOfView specification."""

from __future__ import annotations

import pytest

from repro.fov.geometry import Vec3
from repro.fov.viewpoint import FieldOfView


class TestFieldOfView:
    def test_pose_points_at_target(self):
        fov = FieldOfView(eye=Vec3(5, 0, 0), target=Vec3(0, 0, 0))
        assert fov.pose.direction == Vec3(-1, 0, 0)
        assert fov.pose.position == Vec3(5, 0, 0)

    def test_default_half_angle(self):
        fov = FieldOfView(eye=Vec3(1, 0, 0), target=Vec3(0, 0, 0))
        assert fov.half_angle_deg == 60.0

    def test_half_angle_upper_bound(self):
        FieldOfView(eye=Vec3(1, 0, 0), target=Vec3(0, 0, 0),
                    half_angle_deg=180.0)
        with pytest.raises(ValueError):
            FieldOfView(eye=Vec3(1, 0, 0), target=Vec3(0, 0, 0),
                        half_angle_deg=180.1)

    def test_frozen(self):
        fov = FieldOfView(eye=Vec3(1, 0, 0), target=Vec3(0, 0, 0))
        with pytest.raises(Exception):
            fov.half_angle_deg = 10.0  # type: ignore[misc]

    def test_view_direction_unit_norm(self):
        fov = FieldOfView(eye=Vec3(3, 4, 0), target=Vec3(0, 0, 0))
        assert fov.view_direction.norm() == pytest.approx(1.0)
