"""Tests for FOV contribution scoring (the Fig. 4 semantics)."""

from __future__ import annotations

import pytest

from repro.fov.camera import camera_ring
from repro.fov.contribution import contribution_score, rank_streams
from repro.fov.geometry import Pose, Vec3
from repro.fov.viewpoint import FieldOfView
from repro.session.streams import StreamId


def frontal_fov() -> FieldOfView:
    """A viewer on the +x axis looking at the stage centre."""
    return FieldOfView(eye=Vec3(6.0, 0.0, 1.5), target=Vec3(0.0, 0.0, 1.0))


class TestContributionScore:
    def test_front_camera_scores_highest(self):
        fov = frontal_fov()
        ring = camera_ring(8)
        scores = [contribution_score(fov, pose) for pose in ring]
        # Camera 0 sits on the +x axis (facing the viewer's side).
        assert scores[0] == max(scores)

    def test_rear_camera_scores_zero(self):
        fov = frontal_fov()
        ring = camera_ring(8)
        # Camera 4 is diametrically opposite: it films the far side.
        assert scores_zeroish(contribution_score(fov, ring[4]))

    def test_score_bounded(self):
        fov = frontal_fov()
        for pose in camera_ring(16):
            assert 0.0 <= contribution_score(fov, pose) <= 1.0

    def test_outside_cone_is_zero(self):
        fov = FieldOfView(
            eye=Vec3(6.0, 0.0, 1.5),
            target=Vec3(0.0, 0.0, 1.0),
            half_angle_deg=5.0,
        )
        behind = Pose.look_at(Vec3(-6.0, 0.0, 1.5), Vec3(6.0, 0.0, 1.5))
        # The camera is far off the (narrow) view axis: no contribution.
        assert contribution_score(fov, behind) == pytest.approx(0.0, abs=1e-9)

    def test_camera_at_eye_counts_on_axis(self):
        fov = frontal_fov()
        at_eye = Pose.look_at(fov.eye, fov.target)
        assert contribution_score(fov, at_eye) > 0.5


def scores_zeroish(value: float) -> bool:
    return value == pytest.approx(0.0, abs=1e-6)


class TestRankStreams:
    def test_figure4_style_ranking(self):
        """The cameras facing the viewpoint rank first (paper Fig. 4)."""
        fov = frontal_fov()
        ring = camera_ring(8)
        pairs = [(StreamId(0, q), pose) for q, pose in enumerate(ring)]
        ranked = rank_streams(fov, pairs)
        top4 = {stream.index for stream, _ in ranked[:4]}
        # Front-facing side of the ring: cameras 0, 1, 7 certainly; the
        # fourth is 2 or 6 by symmetry (ties break deterministically).
        assert 0 in top4 and 1 in top4 and 7 in top4
        assert top4 <= {0, 1, 2, 6, 7}

    def test_deterministic_tie_break(self):
        fov = frontal_fov()
        ring = camera_ring(8)
        pairs = [(StreamId(0, q), pose) for q, pose in enumerate(ring)]
        assert rank_streams(fov, pairs) == rank_streams(fov, pairs)

    def test_scores_descending(self):
        fov = frontal_fov()
        pairs = [
            (StreamId(0, q), pose) for q, pose in enumerate(camera_ring(12))
        ]
        scores = [score for _, score in rank_streams(fov, pairs)]
        assert scores == sorted(scores, reverse=True)


class TestFieldOfView:
    def test_bad_half_angle(self):
        with pytest.raises(ValueError):
            FieldOfView(eye=Vec3(1, 0, 0), target=Vec3(0, 0, 0), half_angle_deg=0.0)

    def test_eye_equals_target_rejected(self):
        with pytest.raises(ValueError):
            FieldOfView(eye=Vec3(1, 1, 1), target=Vec3(1, 1, 1))

    def test_view_direction_unit(self):
        fov = frontal_fov()
        assert fov.view_direction.norm() == pytest.approx(1.0)
