"""Tests for vector/pose math."""

from __future__ import annotations

import math

import pytest

from repro.fov.geometry import ORIGIN, UP, Pose, Vec3, angle_between_deg


class TestVec3:
    def test_add_sub(self):
        assert Vec3(1, 2, 3) + Vec3(1, 1, 1) == Vec3(2, 3, 4)
        assert Vec3(1, 2, 3) - Vec3(1, 1, 1) == Vec3(0, 1, 2)

    def test_scalar_multiplication_both_sides(self):
        assert 2 * Vec3(1, 0, 0) == Vec3(2, 0, 0)
        assert Vec3(1, 0, 0) * 2 == Vec3(2, 0, 0)

    def test_dot(self):
        assert Vec3(1, 2, 3).dot(Vec3(4, 5, 6)) == 32

    def test_cross_right_handed(self):
        x, y = Vec3(1, 0, 0), Vec3(0, 1, 0)
        assert x.cross(y) == Vec3(0, 0, 1)

    def test_norm(self):
        assert Vec3(3, 4, 0).norm() == pytest.approx(5.0)

    def test_normalized(self):
        v = Vec3(0, 0, 9).normalized()
        assert v == Vec3(0, 0, 1)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            ORIGIN.normalized()

    def test_distance(self):
        assert Vec3(0, 0, 0).distance_to(Vec3(0, 3, 4)) == pytest.approx(5.0)


class TestAngle:
    def test_parallel_zero(self):
        assert angle_between_deg(UP, UP * 3.0) == pytest.approx(0.0)

    def test_orthogonal_ninety(self):
        assert angle_between_deg(Vec3(1, 0, 0), Vec3(0, 1, 0)) == pytest.approx(90.0)

    def test_opposite_180(self):
        assert angle_between_deg(UP, UP * -1.0) == pytest.approx(180.0)

    def test_zero_vector_raises(self):
        with pytest.raises(ValueError):
            angle_between_deg(ORIGIN, UP)

    def test_45_degrees(self):
        assert angle_between_deg(Vec3(1, 0, 0), Vec3(1, 1, 0)) == pytest.approx(45.0)


class TestPose:
    def test_direction_normalized(self):
        pose = Pose(ORIGIN, Vec3(0, 0, 10))
        assert pose.direction.norm() == pytest.approx(1.0)

    def test_zero_direction_rejected(self):
        with pytest.raises(ValueError):
            Pose(ORIGIN, ORIGIN)

    def test_look_at(self):
        pose = Pose.look_at(Vec3(0, 0, 0), Vec3(5, 0, 0))
        assert pose.direction == Vec3(1, 0, 0)

    def test_looking_at_keeps_position(self):
        pose = Pose(Vec3(1, 1, 1), Vec3(1, 0, 0)).looking_at(Vec3(1, 1, 5))
        assert pose.position == Vec3(1, 1, 1)
        assert pose.direction == Vec3(0, 0, 1)


class TestCameraRing:
    def test_count_and_aim(self):
        from repro.fov.camera import camera_ring

        poses = camera_ring(8, radius=3.0, height=1.5)
        assert len(poses) == 8
        for pose in poses:
            # every camera points inward (negative radial component)
            radial = Vec3(pose.position.x, pose.position.y, 0.0)
            assert pose.direction.dot(radial) < 0

    def test_positions_on_circle(self):
        from repro.fov.camera import camera_ring

        for pose in camera_ring(6, radius=2.0):
            r = math.hypot(pose.position.x, pose.position.y)
            assert r == pytest.approx(2.0)

    def test_invalid_args(self):
        from repro.fov.camera import camera_ring

        with pytest.raises(ValueError):
            camera_ring(0)
        with pytest.raises(ValueError):
            camera_ring(4, radius=0.0)

    def test_phase_rotates_first_camera(self):
        from repro.fov.camera import camera_ring

        a = camera_ring(4, phase_deg=0.0)[0]
        b = camera_ring(4, phase_deg=90.0)[0]
        assert a.position != b.position
