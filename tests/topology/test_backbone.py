"""Tests for the embedded backbone datasets."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.backbone import BACKBONES, load_backbone


class TestDatasets:
    @pytest.mark.parametrize("name", sorted(BACKBONES))
    def test_loads_and_connected(self, name):
        topo = load_backbone(name)
        assert len(topo) >= 10
        assert topo.is_connected()

    @pytest.mark.parametrize("name", sorted(BACKBONES))
    def test_all_link_costs_positive(self, name):
        topo = load_backbone(name)
        assert all(link.cost_ms > 0 for link in topo.links())

    def test_abilene_has_eleven_pops(self):
        assert len(load_backbone("abilene")) == 11

    def test_tier1_spans_continents(self):
        topo = load_backbone("tier1")
        assert "tokyo" in topo and "london" in topo and "sao-paulo" in topo

    def test_unknown_name(self):
        with pytest.raises(TopologyError, match="unknown backbone"):
            load_backbone("arpanet")

    def test_transcontinental_costs_realistic(self):
        topo = load_backbone("tier1")
        # One-way NY-London: ~28ms propagation at 2/3 c plus hop delay.
        cost = topo.cost_ms("new-york", "london")
        assert 25.0 < cost < 40.0

    def test_transpacific_more_expensive_than_domestic(self):
        topo = load_backbone("tier1")
        assert topo.cost_ms("seattle", "tokyo") > topo.cost_ms(
            "seattle", "denver"
        )

    def test_instances_are_independent(self):
        a = load_backbone("abilene")
        b = load_backbone("abilene")
        a.add_pop("extra", a.location("seattle"))
        assert "extra" not in b
