"""Tests for the Topology graph and its shortest-path costs."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.geo import GeoPoint
from repro.topology.graph import Link, Topology, TopologyStats


def line_topology() -> Topology:
    """a -- b -- c with explicit costs 1 and 2."""
    topo = Topology("line")
    topo.add_pop("a", GeoPoint(0.0, 0.0))
    topo.add_pop("b", GeoPoint(0.0, 1.0))
    topo.add_pop("c", GeoPoint(0.0, 2.0))
    topo.add_link("a", "b", 1.0)
    topo.add_link("b", "c", 2.0)
    return topo


class TestConstruction:
    def test_duplicate_pop_rejected(self):
        topo = Topology()
        topo.add_pop("a", GeoPoint(0, 0))
        with pytest.raises(TopologyError):
            topo.add_pop("a", GeoPoint(1, 1))

    def test_link_unknown_pop_rejected(self):
        topo = Topology()
        topo.add_pop("a", GeoPoint(0, 0))
        with pytest.raises(TopologyError):
            topo.add_link("a", "missing")

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_pop("a", GeoPoint(0, 0))
        with pytest.raises(TopologyError):
            topo.add_link("a", "a")

    def test_negative_cost_rejected(self):
        topo = line_topology()
        with pytest.raises(TopologyError):
            topo.add_link("a", "c", -1.0)

    def test_derived_cost_from_distance(self):
        topo = Topology()
        topo.add_pop("x", GeoPoint(0.0, 0.0))
        topo.add_pop("y", GeoPoint(0.0, 10.0))  # ~1113 km on the equator
        link = topo.add_link("x", "y")
        assert link.cost_ms > 5.0  # ~5.6ms propagation + hop delay

    def test_link_other(self):
        link = Link("a", "b", 1.0)
        assert link.other("a") == "b"
        assert link.other("b") == "a"
        with pytest.raises(TopologyError):
            link.other("c")

    def test_link_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Link("a", "a", 1.0)


class TestInspection:
    def test_len_and_contains(self):
        topo = line_topology()
        assert len(topo) == 3
        assert "a" in topo and "z" not in topo

    def test_location_unknown(self):
        with pytest.raises(TopologyError):
            line_topology().location("z")

    def test_neighbors(self):
        topo = line_topology()
        assert topo.neighbors("b") == {"a": 1.0, "c": 2.0}

    def test_links_iterated_once(self):
        topo = line_topology()
        assert topo.link_count() == 2

    def test_connectivity(self):
        topo = line_topology()
        assert topo.is_connected()
        topo.add_pop("island", GeoPoint(5, 5))
        assert not topo.is_connected()

    def test_empty_topology_connected(self):
        assert Topology().is_connected()


class TestShortestPaths:
    def test_direct_and_two_hop(self):
        topo = line_topology()
        assert topo.cost_ms("a", "b") == pytest.approx(1.0)
        assert topo.cost_ms("a", "c") == pytest.approx(3.0)

    def test_self_cost_zero(self):
        assert line_topology().cost_ms("a", "a") == 0.0

    def test_symmetric(self):
        topo = line_topology()
        assert topo.cost_ms("a", "c") == topo.cost_ms("c", "a")

    def test_shortcut_preferred(self):
        topo = line_topology()
        topo.add_link("a", "c", 0.5)
        assert topo.cost_ms("a", "c") == pytest.approx(0.5)

    def test_no_path_raises(self):
        topo = line_topology()
        topo.add_pop("island", GeoPoint(5, 5))
        with pytest.raises(TopologyError):
            topo.cost_ms("a", "island")

    def test_cost_matrix_subset(self):
        topo = line_topology()
        matrix = topo.cost_matrix(["a", "c"])
        assert set(matrix) == {"a", "c"}
        assert matrix["a"]["c"] == pytest.approx(3.0)
        assert matrix["a"]["a"] == 0.0

    def test_cost_matrix_unknown_pop(self):
        with pytest.raises(TopologyError):
            line_topology().cost_matrix(["a", "zz"])

    def test_cache_invalidated_by_new_link(self):
        topo = line_topology()
        assert topo.cost_ms("a", "c") == pytest.approx(3.0)
        topo.add_link("a", "c", 0.25)
        assert topo.cost_ms("a", "c") == pytest.approx(0.25)

    def test_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        topo = line_topology()
        topo.add_link("a", "c", 2.5)
        graph = networkx.Graph()
        for link in topo.links():
            graph.add_edge(link.a, link.b, weight=link.cost_ms)
        for src in topo.pop_ids:
            expected = networkx.single_source_dijkstra_path_length(
                graph, src, weight="weight"
            )
            mine = topo.shortest_costs_from(src)
            for dst, cost in expected.items():
                assert mine[dst] == pytest.approx(cost)


class TestStats:
    def test_stats_of_line(self):
        stats = TopologyStats.of(line_topology())
        assert stats.pops == 3
        assert stats.links == 2
        assert stats.mean_link_cost_ms == pytest.approx(1.5)
        assert stats.max_link_cost_ms == pytest.approx(2.0)
        assert stats.diameter_ms == pytest.approx(3.0)

    def test_stats_of_empty(self):
        stats = TopologyStats.of(Topology())
        assert stats.pops == 0
        assert stats.links == 0
