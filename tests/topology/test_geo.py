"""Tests for geographic primitives."""

from __future__ import annotations

import pytest

from repro.topology.geo import EARTH_RADIUS_KM, GeoPoint, haversine_km


class TestGeoPoint:
    def test_valid_point(self):
        p = GeoPoint(40.71, -74.01)
        assert p.lat == 40.71

    def test_latitude_bounds(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(ValueError):
            GeoPoint(-91.0, 0.0)

    def test_longitude_bounds(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 181.0)

    def test_frozen(self):
        p = GeoPoint(0.0, 0.0)
        with pytest.raises(Exception):
            p.lat = 1.0  # type: ignore[misc]


class TestHaversine:
    def test_zero_distance(self):
        p = GeoPoint(12.0, 34.0)
        assert haversine_km(p, p) == pytest.approx(0.0)

    def test_symmetry(self):
        a = GeoPoint(40.71, -74.01)
        b = GeoPoint(51.51, -0.13)
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    def test_new_york_to_london(self):
        # Well-known great-circle distance ~5570 km.
        ny = GeoPoint(40.71, -74.01)
        london = GeoPoint(51.51, -0.13)
        assert haversine_km(ny, london) == pytest.approx(5570, rel=0.01)

    def test_quarter_circumference(self):
        equator = GeoPoint(0.0, 0.0)
        pole = GeoPoint(90.0, 0.0)
        import math

        assert haversine_km(equator, pole) == pytest.approx(
            math.pi * EARTH_RADIUS_KM / 2, rel=1e-6
        )

    def test_antipodal_points(self):
        import math

        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 180.0)
        assert haversine_km(a, b) == pytest.approx(
            math.pi * EARTH_RADIUS_KM, rel=1e-6
        )

    def test_method_matches_function(self):
        a = GeoPoint(10.0, 20.0)
        b = GeoPoint(-30.0, 60.0)
        assert a.distance_km(b) == haversine_km(a, b)
