"""Tests for site placement strategies."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.topology.geo import haversine_km
from repro.topology.placement import place_sites
from repro.util.rng import RngStream


class TestRandomPlacement:
    def test_distinct_sites(self, tier1_topology, rng):
        sites = place_sites(tier1_topology, 8, rng=rng)
        assert len(sites) == 8
        assert len(set(sites)) == 8

    def test_requires_rng(self, tier1_topology):
        with pytest.raises(ConfigurationError):
            place_sites(tier1_topology, 3, rng=None, strategy="random")

    def test_too_many_sites(self, tier1_topology, rng):
        with pytest.raises(TopologyError):
            place_sites(tier1_topology, len(tier1_topology) + 1, rng=rng)

    def test_zero_sites_rejected(self, tier1_topology, rng):
        with pytest.raises(ConfigurationError):
            place_sites(tier1_topology, 0, rng=rng)

    def test_deterministic(self, tier1_topology):
        a = place_sites(tier1_topology, 5, rng=RngStream(3))
        b = place_sites(tier1_topology, 5, rng=RngStream(3))
        assert a == b


class TestSpreadPlacement:
    def test_distinct_sites(self, tier1_topology, rng):
        sites = place_sites(tier1_topology, 6, rng=rng, strategy="spread")
        assert len(set(sites)) == 6

    def test_spread_beats_random_min_distance(self, tier1_topology):
        def min_pairwise(sites):
            return min(
                haversine_km(
                    tier1_topology.location(a), tier1_topology.location(b)
                )
                for i, a in enumerate(sites)
                for b in sites[i + 1 :]
            )

        rng = RngStream(5)
        spread = place_sites(tier1_topology, 6, rng=RngStream(5), strategy="spread")
        randoms = [
            place_sites(tier1_topology, 6, rng=rng.spawn(str(k)))
            for k in range(10)
        ]
        mean_random = sum(min_pairwise(s) for s in randoms) / len(randoms)
        assert min_pairwise(spread) >= mean_random

    def test_works_without_rng(self, tier1_topology):
        sites = place_sites(tier1_topology, 4, rng=None, strategy="spread")
        assert len(set(sites)) == 4


class TestErrors:
    def test_unknown_strategy(self, tier1_topology, rng):
        with pytest.raises(ConfigurationError, match="strategy"):
            place_sites(tier1_topology, 3, rng=rng, strategy="magnetic")


class TestEdgeCases:
    def test_full_coverage_uses_every_pop(self, tier1_topology):
        n = len(tier1_topology)
        placed = place_sites(tier1_topology, n, rng=RngStream(9))
        assert sorted(placed) == sorted(tier1_topology.pop_ids)

    def test_single_site(self, tier1_topology, rng):
        placed = place_sites(tier1_topology, 1, rng=rng)
        assert len(placed) == 1
        assert placed[0] in tier1_topology.pop_ids

    def test_spread_deterministic_given_seed(self, tier1_topology):
        a = place_sites(tier1_topology, 5, rng=RngStream(4), strategy="spread")
        b = place_sites(tier1_topology, 5, rng=RngStream(4), strategy="spread")
        assert a == b

    def test_spread_full_coverage(self, tier1_topology):
        n = len(tier1_topology)
        placed = place_sites(
            tier1_topology, n, rng=RngStream(2), strategy="spread"
        )
        assert sorted(placed) == sorted(tier1_topology.pop_ids)

    def test_spread_all_pops_valid(self, abilene_topology):
        placed = place_sites(abilene_topology, 4, rng=None, strategy="spread")
        assert all(pop in abilene_topology.pop_ids for pop in placed)

    def test_random_and_spread_work_on_abilene(self, abilene_topology):
        random_placed = place_sites(abilene_topology, 3, rng=RngStream(8))
        spread_placed = place_sites(
            abilene_topology, 3, rng=RngStream(8), strategy="spread"
        )
        assert len(set(random_placed)) == 3
        assert len(set(spread_placed)) == 3
