"""Tests for the synthetic Waxman-geographic backbone generator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.topology.synthetic import SyntheticBackboneConfig, synthetic_backbone
from repro.util.rng import RngStream


class TestConfig:
    def test_defaults_valid(self):
        SyntheticBackboneConfig().validate()

    def test_too_few_pops(self):
        with pytest.raises(ConfigurationError):
            SyntheticBackboneConfig(n_pops=1).validate()

    def test_bad_beta(self):
        with pytest.raises(ConfigurationError):
            SyntheticBackboneConfig(waxman_beta=1.5).validate()

    def test_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            SyntheticBackboneConfig(waxman_alpha=0.0).validate()

    def test_negative_extra_degree(self):
        with pytest.raises(ConfigurationError):
            SyntheticBackboneConfig(extra_degree=-1.0).validate()

    def test_empty_regions(self):
        with pytest.raises(ConfigurationError):
            SyntheticBackboneConfig(regions=[]).validate()


class TestGenerator:
    def test_pop_count(self):
        topo = synthetic_backbone(
            SyntheticBackboneConfig(n_pops=15), RngStream(3)
        )
        assert len(topo) == 15

    def test_always_connected(self):
        for seed in range(5):
            topo = synthetic_backbone(
                SyntheticBackboneConfig(n_pops=12, waxman_beta=0.1),
                RngStream(seed),
            )
            assert topo.is_connected()

    def test_deterministic_given_seed(self):
        config = SyntheticBackboneConfig(n_pops=10)
        a = synthetic_backbone(config, RngStream(5))
        b = synthetic_backbone(config, RngStream(5))
        assert sorted((l.a, l.b) for l in a.links()) == sorted(
            (l.a, l.b) for l in b.links()
        )

    def test_seed_changes_graph(self):
        config = SyntheticBackboneConfig(n_pops=10)
        a = synthetic_backbone(config, RngStream(5))
        b = synthetic_backbone(config, RngStream(6))
        assert sorted((l.a, l.b) for l in a.links()) != sorted(
            (l.a, l.b) for l in b.links()
        )

    def test_extra_degree_adds_links(self):
        sparse = synthetic_backbone(
            SyntheticBackboneConfig(n_pops=20, extra_degree=0.0, waxman_beta=1.0),
            RngStream(1),
        )
        dense = synthetic_backbone(
            SyntheticBackboneConfig(n_pops=20, extra_degree=4.0, waxman_beta=1.0),
            RngStream(1),
        )
        assert dense.link_count() > sparse.link_count()

    def test_minimum_two_pops(self):
        topo = synthetic_backbone(
            SyntheticBackboneConfig(n_pops=2), RngStream(1)
        )
        assert topo.is_connected()
        assert topo.link_count() >= 1

    def test_pops_carry_region_names(self):
        topo = synthetic_backbone(
            SyntheticBackboneConfig(n_pops=8), RngStream(2)
        )
        assert all("pop-" in pop for pop in topo.pop_ids)
