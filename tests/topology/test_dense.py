"""Tests for the dense cost matrix and its topology/session threading."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.backbone import load_backbone
from repro.topology.dense import DenseCostMatrix


@pytest.fixture(scope="module")
def abilene():
    return load_backbone("abilene")


class TestDenseCostMatrix:
    def test_from_nested_roundtrip(self):
        nested = {0: {0: 0.0, 1: 2.0}, 1: {0: 2.0, 1: 0.0}}
        matrix = DenseCostMatrix.from_nested(nested, nodes=range(2))
        assert matrix.edge_cost(0, 1) == 2.0
        assert matrix.to_nested() == nested

    def test_row_and_column_views(self):
        matrix = DenseCostMatrix([[0.0, 1.0], [3.0, 0.0]])
        assert matrix.row(1) == [3.0, 0.0]
        assert matrix.column(1) == [1.0, 0.0]

    def test_set_cost_invalidates_transpose(self):
        matrix = DenseCostMatrix([[0.0, 1.0], [3.0, 0.0]])
        assert matrix.column(0) == [0.0, 3.0]
        matrix.set_cost(1, 0, 9.0)
        assert matrix.column(0) == [0.0, 9.0]
        assert matrix.edge_cost(1, 0) == 9.0

    def test_set_cost_patches_transpose_in_place(self):
        # Regression: set_cost used to drop the lazy transpose, so any
        # caller holding a column view kept reading the stale cost and
        # the next column() call re-paid the O(N²) rebuild.
        matrix = DenseCostMatrix([[0.0, 1.0], [3.0, 0.0]])
        column = matrix.column(0)
        matrix.set_cost(1, 0, 9.0)
        assert matrix.column(0) is column  # patched, not rebuilt
        assert column == [0.0, 9.0]

    def test_set_cost_patches_array_mirrors(self):
        pytest.importorskip("numpy")
        matrix = DenseCostMatrix(
            [[0.0, 1.0], [3.0, 0.0]], backend="numpy"
        )
        row = matrix.row_array(1)
        column = matrix.column_array(0)
        matrix.set_cost(1, 0, 9.0)
        # The previously handed-out views see the patch: the mirrors are
        # updated in place, not discarded.
        assert float(row[0]) == 9.0
        assert float(column[1]) == 9.0

    def test_symmetry_check(self):
        assert DenseCostMatrix([[0.0, 1.0], [1.0, 0.0]]).is_symmetric()
        assert not DenseCostMatrix([[0.0, 1.0], [2.0, 0.0]]).is_symmetric()

    def test_label_mapping(self):
        matrix = DenseCostMatrix([[0.0, 5.0], [5.0, 0.0]], labels=["a", "b"])
        assert matrix.index_of("b") == 1
        assert matrix.labels == ["a", "b"]
        with pytest.raises(TopologyError):
            matrix.index_of("zz")

    def test_ragged_rows_rejected(self):
        with pytest.raises(TopologyError):
            DenseCostMatrix([[0.0, 1.0], [1.0]])

    def test_missing_entry_rejected(self):
        with pytest.raises(TopologyError):
            DenseCostMatrix.from_nested({0: {0: 0.0}}, nodes=[0, 1])


class TestTopologyDenseMatrix:
    def test_matches_nested_cost_matrix(self, abilene):
        pops = abilene.pop_ids[:5]
        nested = abilene.cost_matrix(pops)
        dense = abilene.dense_cost_matrix(pops)
        # Dijkstra sums a path's edges in opposite orders for the two
        # directions, so APSP symmetry only holds to float tolerance.
        assert dense.is_symmetric(tolerance=1e-9)
        for i, a in enumerate(pops):
            for j, b in enumerate(pops):
                assert dense.edge_cost(i, j) == nested[a][b]

    def test_unknown_pop_rejected(self, abilene):
        with pytest.raises(TopologyError):
            abilene.dense_cost_matrix(["nowhere"])


class TestShortestCostsCaching:
    def test_cache_hit_returns_same_mapping(self, abilene):
        src = abilene.pop_ids[0]
        first = abilene.shortest_costs_from(src)
        second = abilene.shortest_costs_from(src)
        # Both views must be backed by the same cached row (no copying).
        assert dict(first) == dict(second)
        assert first[src] == 0.0

    def test_returned_row_is_read_only(self, abilene):
        src = abilene.pop_ids[0]
        costs = abilene.shortest_costs_from(src)
        with pytest.raises(TypeError):
            costs[src] = 123.0  # type: ignore[index]

    def test_mutable_copy_still_available(self, abilene):
        src = abilene.pop_ids[0]
        copy = dict(abilene.shortest_costs_from(src))
        copy[src] = 99.0  # fine: it is a copy
        assert abilene.shortest_costs_from(src)[src] == 0.0


class TestSessionDenseMatrix:
    def test_session_exposes_dense_costs(self, small_session):
        dense = small_session.dense_cost_matrix()
        assert len(dense) == small_session.n_sites
        for a in range(small_session.n_sites):
            for b in range(small_session.n_sites):
                assert dense.edge_cost(a, b) == small_session.cost_ms(a, b)

    def test_problem_rows_and_columns(self, small_problem):
        n = small_problem.n_nodes
        for a in range(n):
            row = small_problem.costs_row(a)
            col = small_problem.costs_to(a)
            for b in range(n):
                assert row[b] == small_problem.edge_cost(a, b)
                assert col[b] == small_problem.edge_cost(b, a)

    def test_problem_cost_writes_through(self, small_problem):
        small_problem.cost[0][1] = 55.5
        assert small_problem.edge_cost(0, 1) == 55.5
        assert small_problem.costs_to(1)[0] == 55.5
        assert small_problem.costs_row(0)[1] == 55.5
