"""Tests for the declarative scenario specification."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.library import get_scenario, scenario_names
from repro.scenarios.spec import EventKind, SchedulePhase, ScenarioSpec
from repro.util.rng import RngStream


def minimal_spec(**overrides) -> ScenarioSpec:
    fields = dict(
        name="t",
        n_sites=4,
        initial_active=2,
        duration_ms=100.0,
        seed=1,
        schedule=(SchedulePhase(EventKind.JOIN, 0.0, 50.0, 3),),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestValidation:
    def test_valid_spec_accepted(self):
        spec = minimal_spec()
        assert spec.total_events() == 3

    @pytest.mark.parametrize(
        "overrides",
        [
            {"n_sites": 0},
            {"initial_active": 5},
            {"initial_active": -1},
            {"duration_ms": 0.0},
            {"nodes": "exotic"},
            {"fov_size": 0},
            {"capacity_base": 0},
        ],
    )
    def test_bad_field_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            minimal_spec(**overrides)

    def test_bad_phase_rejected(self):
        with pytest.raises(ConfigurationError):
            SchedulePhase(EventKind.JOIN, 10.0, 5.0, 1)
        with pytest.raises(ConfigurationError):
            SchedulePhase(EventKind.JOIN, -1.0, 5.0, 1)
        with pytest.raises(ConfigurationError):
            SchedulePhase(EventKind.JOIN, 0.0, 5.0, -1)


class TestCompile:
    def test_event_count_and_kinds(self):
        spec = minimal_spec(
            schedule=(
                SchedulePhase(EventKind.JOIN, 0.0, 50.0, 3),
                SchedulePhase(EventKind.LEAVE, 20.0, 80.0, 2),
            )
        )
        events = spec.compile(RngStream(5))
        assert len(events) == 5
        kinds = [event.kind for event in events]
        assert kinds.count(EventKind.JOIN) == 3
        assert kinds.count(EventKind.LEAVE) == 2

    def test_sorted_by_time(self):
        events = minimal_spec().compile(RngStream(5))
        times = [event.time_ms for event in events]
        assert times == sorted(times)

    def test_within_phase_window_and_duration(self):
        spec = minimal_spec(
            duration_ms=40.0,
            schedule=(SchedulePhase(EventKind.FOV_CHANGE, 10.0, 90.0, 8),),
        )
        for event in spec.compile(RngStream(5)):
            assert 10.0 <= event.time_ms <= 40.0

    def test_deterministic_given_seed(self):
        spec = minimal_spec()
        assert spec.compile(RngStream(5)) == spec.compile(RngStream(5))

    def test_different_seed_differs(self):
        spec = minimal_spec(
            schedule=(SchedulePhase(EventKind.JOIN, 0.0, 100.0, 10),)
        )
        assert spec.compile(RngStream(5)) != spec.compile(RngStream(6))

    def test_empty_schedule_compiles_empty(self):
        assert minimal_spec(schedule=()).compile(RngStream(5)) == []


class TestLibrary:
    def test_six_named_scenarios(self):
        names = scenario_names()
        assert len(names) == 6
        assert names == sorted(names)

    def test_all_factories_scale(self):
        for name in scenario_names():
            for sites in (2, 8, 16):
                spec = get_scenario(name, sites=sites, seed=3)
                assert spec.n_sites == sites
                assert spec.seed == 3
                assert spec.initial_active <= sites

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario("tsunami")

    def test_lookup_case_insensitive(self):
        assert get_scenario("FLASH-CROWD").name == "flash-crowd"

    def test_describe_mentions_mix(self):
        description = get_scenario("mixed-churn", sites=8, seed=1).describe()
        assert "mixed-churn" in description
        assert "join" in description
