"""Tests for scenario execution against the live control plane."""

from __future__ import annotations

import pytest

from repro.scenarios.library import get_scenario
from repro.scenarios.runtime import ScenarioRuntime, run_scenario
from repro.scenarios.spec import EventKind, SchedulePhase, ScenarioSpec


def tiny_spec(**overrides) -> ScenarioSpec:
    fields = dict(
        name="tiny",
        n_sites=4,
        initial_active=4,
        duration_ms=200.0,
        seed=5,
        streams_per_site=4,
        schedule=(
            SchedulePhase(EventKind.FOV_CHANGE, 0.0, 100.0, 2),
            SchedulePhase(EventKind.LEAVE, 100.0, 150.0, 1),
            SchedulePhase(EventKind.JOIN, 150.0, 190.0, 1),
        ),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestRun:
    def test_report_shape(self):
        report = run_scenario(tiny_spec())
        # bootstrap + one round per executed event
        assert report.rounds == 1 + sum(report.events.values())
        assert report.events == {"fov-change": 2, "leave": 1, "join": 1}
        assert report.final_active == 4
        assert report.requests_total > 0
        assert report.ok
        assert report.audit is not None
        assert report.audit.events_audited == report.rounds

    def test_audit_disabled(self):
        report = run_scenario(tiny_spec(), audit=False)
        assert report.audit is None
        assert report.ok

    def test_leave_shrinks_active_set(self):
        spec = tiny_spec(
            schedule=(SchedulePhase(EventKind.LEAVE, 0.0, 100.0, 3),)
        )
        report = run_scenario(spec)
        assert report.final_active == 1
        assert report.events == {"leave": 3}

    def test_join_without_candidates_skipped(self):
        spec = tiny_spec(
            schedule=(SchedulePhase(EventKind.JOIN, 0.0, 100.0, 2),)
        )
        report = run_scenario(spec)
        # All four sites already active: both joins are no-ops.
        assert report.skipped_events == 2
        assert report.rounds == 1

    def test_failure_withdraws_server_side_only(self):
        spec = tiny_spec(
            schedule=(SchedulePhase(EventKind.FAIL, 0.0, 50.0, 1),)
        )
        runtime = ScenarioRuntime(spec)
        report = runtime.run()
        assert report.ok
        failed = (set(range(4)) - runtime.active).pop()
        # Abrupt failure: the RP keeps its display subscriptions...
        assert runtime.rps[failed].aggregate_subscription().streams
        # ...but the server no longer sees the site.
        workload = runtime.server.global_workload()
        assert workload.streams_of(failed) == ()

    def test_graceful_leave_clears_rp(self):
        spec = tiny_spec(
            schedule=(SchedulePhase(EventKind.LEAVE, 0.0, 50.0, 1),)
        )
        runtime = ScenarioRuntime(spec)
        runtime.run()
        left = (set(range(4)) - runtime.active).pop()
        assert runtime.rps[left].aggregate_subscription().streams == ()

    def test_departed_publisher_drops_subscriptions(self):
        """Surviving sites subscribed to a failed site's streams lose them
        via advertisement matching, not via an error."""
        spec = tiny_spec(
            schedule=(SchedulePhase(EventKind.FAIL, 0.0, 50.0, 2),)
        )
        report = run_scenario(spec)
        assert report.ok

    def test_single_site_session_runs_empty_rounds(self):
        spec = tiny_spec(
            n_sites=1,
            initial_active=1,
            schedule=(SchedulePhase(EventKind.FOV_CHANGE, 0.0, 100.0, 1),),
        )
        report = run_scenario(spec)
        assert report.ok
        assert report.requests_total == 0

    def test_rejection_ratio_bounds(self):
        report = run_scenario(get_scenario("capacity-starvation", sites=4, seed=2))
        assert 0.0 < report.rejection_ratio < 1.0
        assert report.rejected_total <= report.requests_total

    def test_summary_mentions_digest_and_events(self):
        report = run_scenario(tiny_spec())
        summary = report.summary()
        assert "digest" in summary
        assert "control" in summary
        assert "leave=1" in summary


class TestRebuildPolicy:
    def test_default_policy_always_rebuilds(self):
        report = run_scenario(tiny_spec())
        assert report.rebuild_policy == "always"
        assert report.repairs == 0
        assert report.rebuilds == report.rounds

    def test_incremental_policy_repairs_after_bootstrap(self):
        report = run_scenario(tiny_spec(rebuild_policy="incremental"))
        assert report.ok, report.summary()
        assert report.rebuild_policy == "incremental"
        assert report.repairs + report.rebuilds == report.rounds
        assert report.repairs >= 1

    def test_disruption_counts_all_but_bootstrap(self):
        report = run_scenario(tiny_spec())
        assert report.disruption_rounds == report.rounds - 1
        assert report.mean_disruption >= 0.0

    def test_summary_mentions_maintenance(self):
        report = run_scenario(tiny_spec(rebuild_policy="hybrid"))
        summary = report.summary()
        assert "overlay maintenance [hybrid]" in summary
        assert "mean disruption" in summary

    def test_policy_threaded_into_server_and_session(self):
        runtime = ScenarioRuntime(tiny_spec(rebuild_policy="incremental"))
        assert runtime.server.rebuild_policy == "incremental"
        assert runtime.session.rebuild_policy == "incremental"


class TestEpochs:
    def test_epochs_monotonic_across_rejoin(self):
        """A site that fails and rejoins accepts the newer directive."""
        spec = tiny_spec(
            duration_ms=400.0,
            schedule=(
                SchedulePhase(EventKind.FAIL, 0.0, 100.0, 2),
                SchedulePhase(EventKind.JOIN, 200.0, 300.0, 2),
            ),
        )
        runtime = ScenarioRuntime(spec)
        report = runtime.run()
        assert report.ok
        assert runtime.active == set(range(4))
        epochs = {runtime.rps[s].epoch for s in runtime.active}
        assert epochs == {runtime.server.epoch}
