"""Cross-backend audit-digest equivalence on the scenario matrix.

The audit digest hashes every structural fact of every control round, so
two runs with equal digests built byte-identical overlays through
byte-identical intermediate states.  Running each cell once per array
backend therefore pins the numpy kernels to the python reference at
full-system granularity — any divergence in parent selection, float
arithmetic or table bookkeeping changes the digest.

The tier-1 subset keeps the fast loop fast; ``--runslow`` enables the
full six-scenario x seed x algorithm x assembly matrix from the PR's
acceptance criteria.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.backend import numpy_available
from repro.scenarios import get_scenario, run_scenario, scenario_names

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not importable"
)

ALL_SCENARIOS = (
    "capacity-starvation",
    "flash-crowd",
    "fov-thrash",
    "mass-leave",
    "mixed-churn",
    "rolling-failure",
)


def _digest(name: str, seed: int, algorithm: str, backend: str, **overrides):
    spec = replace(
        get_scenario(name, sites=6, seed=seed),
        algorithm=algorithm,
        backend=backend,
        **overrides,
    )
    report = run_scenario(spec, audit=True)
    assert report.audit is not None and report.audit.ok
    return report.audit.digest


def test_library_matches_matrix():
    # The slow matrix must not silently rot when scenarios are added.
    assert tuple(scenario_names()) == ALL_SCENARIOS


@needs_numpy
@pytest.mark.parametrize("algorithm", ["rj", "co-rj"])
@pytest.mark.parametrize("name", ["flash-crowd", "mixed-churn"])
def test_backends_agree_tier1(name, algorithm):
    assert _digest(name, 13, algorithm, "python") == _digest(
        name, 13, algorithm, "numpy"
    )


@needs_numpy
@pytest.mark.slow
@pytest.mark.parametrize("seed", [13, 29])
@pytest.mark.parametrize("algorithm", ["rj", "co-rj"])
@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_backends_agree_full_matrix(name, algorithm, seed):
    assert _digest(name, seed, algorithm, "python") == _digest(
        name, seed, algorithm, "numpy"
    )


@needs_numpy
@pytest.mark.slow
@pytest.mark.parametrize("assembly", ["diffed", "scratch"])
@pytest.mark.parametrize("algorithm", ["rj", "co-rj"])
def test_backends_agree_on_assembly_paths(algorithm, assembly):
    """Diffed (evolve + COW tables) vs scratch assembly, both backends."""
    kwargs = dict(rebuild_policy="incremental", problem_assembly=assembly)
    assert _digest(
        "mixed-churn", 13, algorithm, "python", **kwargs
    ) == _digest("mixed-churn", 13, algorithm, "numpy", **kwargs)
