"""Randomized chaos-schedule property tests.

The hand-written chaos scenarios each pin one failure shape; this suite
throws *combinations* at the control plane — random loss, jitter,
duplication, per-site partitions and server outage windows layered over
a churning membership — and asserts the properties that must hold for
every schedule, not just the curated ones:

* the strict invariant audit stays clean on every installed round,
* every suspicion and every parked report recovers by the drain
  (schedules are generated so chaos ends well before the horizon),
* retransmit give-ups stay bounded (no runaway storm), and
* the drain terminates with no armed retransmit state.

Schedules derive from ``random.Random(seed)`` so a failure reproduces
from the printed seed alone.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.pubsub.faults import PartitionWindow, ServerOutageWindow
from repro.scenarios.library import get_scenario
from repro.scenarios.runtime import ScenarioRuntime

#: Chaos quiets down this long before the horizon so every suspicion,
#: parked report and zombie re-admission has room to heal.
SETTLE_MS = 400.0


def random_chaos_spec(seed: int):
    """One random-but-valid chaos schedule over the mixed-churn base."""
    rng = random.Random(seed)
    spec = get_scenario("server-restart-churn", sites=8, seed=seed)
    horizon = spec.duration_ms - SETTLE_MS

    def windows(max_windows: int):
        """Up to ``max_windows`` disjoint [start, end) pairs before the horizon."""
        cuts = sorted(
            rng.uniform(100.0, horizon)
            for _ in range(2 * rng.randint(0, max_windows))
        )
        return [
            (cuts[i], cuts[i + 1])
            for i in range(0, len(cuts) - 1, 2)
            if cuts[i + 1] - cuts[i] > 50.0
        ]

    partitions = tuple(
        PartitionWindow(site=rng.randrange(8), start_ms=start, end_ms=end)
        for start, end in windows(2)
    )
    outages = tuple(
        ServerOutageWindow(start, end) for start, end in windows(2)
    )
    return replace(
        spec,
        loss_rate=rng.uniform(0.0, 0.25),
        jitter_ms=rng.uniform(0.0, 10.0),
        duplicate_rate=rng.uniform(0.0, 0.3),
        partitions=partitions,
        server_outages=outages,
        phi_threshold=rng.choice((0.0, 8.0)),
        checkpoint_interval_ms=rng.choice((0.0, 150.0)),
    )


@pytest.mark.parametrize("seed", range(6))
def test_random_schedule_holds_the_invariants(seed):
    spec = random_chaos_spec(seed)
    runtime = ScenarioRuntime(spec, strict=True)
    runtime.run()
    report = runtime.report
    context = f"fuzz seed {seed}: {spec.describe()}"
    assert report.ok, context
    assert report.audit.events_audited == report.rounds, context
    # Everything that suspected or parked must have healed by the drain.
    # (A site may still *suspect* at the drain — an ack starvation after
    # quiesce has no heal path — but only while holding nothing the
    # server hasn't already applied, which unrecovered_reports counts.)
    assert report.unrecovered_suspicions == 0, context
    assert report.unrecovered_reports == 0, context
    # Give-ups bounded: abandonment is a per-epoch, per-site event, not
    # a storm (directive give-ups to partitioned sites are legitimate).
    assert report.retransmit_giveups <= 8 * report.server_crashes + 16, context
    # The drain actually drained: no timer is still armed.
    assert runtime.service.armed_retransmit_state == 0, context


@pytest.mark.parametrize("seed", (0, 3))
def test_random_schedule_replays_bit_identically(seed):
    spec = random_chaos_spec(seed)
    first = ScenarioRuntime(spec, strict=True)
    first.run()
    second = ScenarioRuntime(spec, strict=True)
    second.run()
    assert first.report.audit.digest == second.report.audit.digest
    assert (
        first.server.soft_state_digest() == second.server.soft_state_digest()
    )


def test_crash_free_schedule_matches_reference_soft_state():
    """A random schedule with its outages stripped is the reference run;
    the crashed variant must reconverge to the same registrations."""
    spec = random_chaos_spec(1)
    if not spec.server_outages:  # pragma: no cover - seed-dependent guard
        pytest.skip("seed produced no outage windows")
    crashed = ScenarioRuntime(spec)
    crashed.run()
    reference = ScenarioRuntime(
        replace(spec, server_outages=(), checkpoint_interval_ms=0.0)
    )
    reference.run()
    assert crashed.report.server_crashes >= 1
    assert (
        crashed.server.soft_state_digest()
        == reference.server.soft_state_digest()
    )
