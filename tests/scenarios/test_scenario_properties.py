"""Property tests: every named scenario, audited, at several scales.

These are the regression net for later scaling PRs: any change to the
builders, the pub-sub layer or the session machinery that breaks a
structural invariant under churn fails here, with a seed to replay.

The rebuild-policy matrix is the acceptance net for incremental
re-solve: for every named scenario the ``incremental`` policy must keep
every invariant, reject no more than a from-scratch rebuild (within
tolerance), and disturb strictly fewer surviving subscribers per round.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.incremental import overlay_cost
from repro.core.registry import available_algorithms, make_builder
from repro.experiments.disruption import policy_spec
from repro.scenarios.library import get_scenario, scenario_names
from repro.scenarios.runtime import ScenarioRuntime, run_scenario
from repro.util.rng import RngStream

SIZES = (3, 5, 8)

#: Extra rejection ratio the incremental policy may cost vs scratch.
REJECTION_TOLERANCE = 0.05


@pytest.mark.parametrize("name", scenario_names())
@pytest.mark.parametrize("sites", SIZES)
class TestZeroViolations:
    def test_audited_run_is_clean(self, name, sites):
        report = run_scenario(get_scenario(name, sites=sites, seed=13))
        assert report.audit is not None
        assert report.audit.ok, report.summary()
        assert report.rounds >= 1


@pytest.mark.parametrize("name", scenario_names())
class TestSeedMatrixDeterminism:
    def test_same_seed_identical_digest(self, name):
        """Same spec + seed ⇒ bit-for-bit identical audit digest."""
        spec = get_scenario(name, sites=6, seed=21)
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert first.audit.digest == second.audit.digest
        assert first.rounds == second.rounds
        assert first.events == second.events
        assert first.requests_total == second.requests_total

    def test_different_seed_diverges(self, name):
        """Different seeds produce observably different runs."""
        first = run_scenario(get_scenario(name, sites=6, seed=1))
        second = run_scenario(get_scenario(name, sites=6, seed=2))
        assert first.audit.digest != second.audit.digest


class TestAlgorithmMatrix:
    @pytest.mark.parametrize("algorithm", sorted(available_algorithms()))
    def test_every_builder_survives_starvation(self, algorithm):
        """All six builders keep every invariant under capacity starvation."""
        spec = replace(
            get_scenario("capacity-starvation", sites=5, seed=9),
            algorithm=algorithm,
        )
        report = run_scenario(spec)
        assert report.ok, report.summary()


@pytest.mark.parametrize("name", scenario_names())
class TestIncrementalRepairAt64:
    """Acceptance: at N=64 incremental repair must beat always-rebuild.

    Every named scenario runs once per policy over the same compiled
    event schedule; the auditor re-derives every invariant each round,
    so a clean report means repair never corrupted the overlay.
    """

    def test_incremental_strictly_less_disruptive(self, name):
        always = run_scenario(policy_spec(name, 64, 13, "always"))
        incremental = run_scenario(policy_spec(name, 64, 13, "incremental"))
        assert always.audit is not None and always.ok, always.summary()
        assert incremental.audit is not None and incremental.ok, (
            incremental.summary()
        )
        assert incremental.repairs >= 1
        assert (
            incremental.mean_disruption < always.mean_disruption
        ), (
            f"{name}: incremental {incremental.mean_disruption:.4f} not "
            f"below always {always.mean_disruption:.4f}"
        )
        assert incremental.rejection_ratio <= (
            always.rejection_ratio + REJECTION_TOLERANCE
        )


class TestHybridDriftBudget:
    @pytest.mark.parametrize("name", ("mass-leave", "mixed-churn"))
    def test_final_forest_within_budget_of_scratch(self, name):
        """The forest hybrid ends on costs at most (1+budget)x the exact
        from-scratch solution the server guarded it against.

        The internal scratch build is reconstructed bit-for-bit: RNG
        sub-streams are label-derived, so the server's
        ``rng.spawn("scratch")`` of the final round is reproducible from
        the spec seed alone.
        """
        spec = policy_spec(name, 8, 13, "hybrid")
        runtime = ScenarioRuntime(spec)
        report = runtime.run()
        assert report.ok, report.summary()
        final = runtime.server.last_result
        final_round = runtime.server.epoch - 1  # epoch at build time
        scratch_rng = (
            RngStream(spec.seed, label=f"scenario/{spec.name}")
            .spawn("build")
            .spawn(f"round-{final_round}")
            .spawn("scratch")
        )
        scratch = make_builder(spec.algorithm).build(
            final.problem, scratch_rng
        )
        budget = runtime.server.drift_budget
        assert overlay_cost(final) <= overlay_cost(scratch) * (
            1.0 + budget
        ) + 1e-9
        assert len(final.rejected) <= len(scratch.rejected)


@pytest.mark.stress
class TestStressMatrix:
    """Larger pools and more seeds; enabled with ``--runslow``."""

    @pytest.mark.parametrize("name", scenario_names())
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_large_pool_clean(self, name, seed):
        report = run_scenario(get_scenario(name, sites=12, seed=seed))
        assert report.ok, report.summary()

    @pytest.mark.parametrize("algorithm", sorted(available_algorithms()))
    def test_mixed_churn_all_builders(self, algorithm):
        spec = replace(
            get_scenario("mixed-churn", sites=10, seed=4), algorithm=algorithm
        )
        report = run_scenario(spec)
        assert report.ok, report.summary()


@pytest.mark.stress
@pytest.mark.parametrize("name", scenario_names())
@pytest.mark.parametrize("seed", (13, 29))
@pytest.mark.parametrize("sites", (16, 32, 64))
class TestPolicyMatrixStress:
    """The full scenario x seed x N policy matrix (``--runslow``)."""

    def test_policies_agree_on_quality(self, name, seed, sites):
        always = run_scenario(policy_spec(name, sites, seed, "always"))
        incremental = run_scenario(
            policy_spec(name, sites, seed, "incremental")
        )
        hybrid = run_scenario(policy_spec(name, sites, seed, "hybrid"))
        for report in (always, incremental, hybrid):
            assert report.audit is not None and report.ok, report.summary()
        assert incremental.rejection_ratio <= (
            always.rejection_ratio + REJECTION_TOLERANCE
        )
        assert hybrid.rejection_ratio <= (
            always.rejection_ratio + REJECTION_TOLERANCE
        )
        assert incremental.mean_disruption <= always.mean_disruption
        assert hybrid.mean_disruption <= always.mean_disruption


@pytest.mark.stress
class TestDiffedAssemblyHighChurn:
    """An audited high-churn scenario on the diffed-assembly path.

    This is the diffed-assembly acceptance net: a long mixed-churn run
    (every event kind, tripled event counts, a large pool) whose every
    round evolves the previous problem instead of rebuilding it — the
    auditor re-derives every structural invariant per round, so one run
    checks the whole patch machinery under adversarial diffs.
    """

    def high_churn_spec(self, sites: int, seed: int):
        base = policy_spec("mixed-churn", sites, seed, "incremental")
        schedule = tuple(
            replace(phase, count=phase.count * 3) for phase in base.schedule
        )
        return replace(
            base,
            name="high-churn-diffed",
            schedule=schedule,
            problem_assembly="diffed",
        )

    @pytest.mark.parametrize("seed", (13, 29))
    @pytest.mark.parametrize("sites", (16, 32))
    def test_auditor_clean_every_round(self, sites, seed):
        report = run_scenario(self.high_churn_spec(sites, seed))
        assert report.audit is not None and report.ok, report.summary()
        # Every round past the bootstrap ran the diffed path.
        assert report.assemblies_scratch == 1
        assert report.assemblies_diffed == report.rounds - 1
        assert report.rounds > 2 * sites  # genuinely high churn

    def test_diffed_matches_scratch_under_high_churn(self):
        spec = self.high_churn_spec(16, seed=13)
        diffed_rt = ScenarioRuntime(spec)
        scratch_rt = ScenarioRuntime(
            replace(spec, problem_assembly="scratch")
        )
        diffed = diffed_rt.run()
        scratch = scratch_rt.run()
        assert diffed_rt.directives == scratch_rt.directives
        assert diffed.audit.digest == scratch.audit.digest
