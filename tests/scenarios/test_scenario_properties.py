"""Property tests: every named scenario, audited, at several scales.

These are the regression net for later scaling PRs: any change to the
builders, the pub-sub layer or the session machinery that breaks a
structural invariant under churn fails here, with a seed to replay.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.registry import available_algorithms
from repro.scenarios.library import get_scenario, scenario_names
from repro.scenarios.runtime import run_scenario

SIZES = (3, 5, 8)


@pytest.mark.parametrize("name", scenario_names())
@pytest.mark.parametrize("sites", SIZES)
class TestZeroViolations:
    def test_audited_run_is_clean(self, name, sites):
        report = run_scenario(get_scenario(name, sites=sites, seed=13))
        assert report.audit is not None
        assert report.audit.ok, report.summary()
        assert report.rounds >= 1


@pytest.mark.parametrize("name", scenario_names())
class TestSeedMatrixDeterminism:
    def test_same_seed_identical_digest(self, name):
        """Same spec + seed ⇒ bit-for-bit identical audit digest."""
        spec = get_scenario(name, sites=6, seed=21)
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert first.audit.digest == second.audit.digest
        assert first.rounds == second.rounds
        assert first.events == second.events
        assert first.requests_total == second.requests_total

    def test_different_seed_diverges(self, name):
        """Different seeds produce observably different runs."""
        first = run_scenario(get_scenario(name, sites=6, seed=1))
        second = run_scenario(get_scenario(name, sites=6, seed=2))
        assert first.audit.digest != second.audit.digest


class TestAlgorithmMatrix:
    @pytest.mark.parametrize("algorithm", sorted(available_algorithms()))
    def test_every_builder_survives_starvation(self, algorithm):
        """All six builders keep every invariant under capacity starvation."""
        spec = replace(
            get_scenario("capacity-starvation", sites=5, seed=9),
            algorithm=algorithm,
        )
        report = run_scenario(spec)
        assert report.ok, report.summary()


@pytest.mark.stress
class TestStressMatrix:
    """Larger pools and more seeds; enabled with ``--runslow``."""

    @pytest.mark.parametrize("name", scenario_names())
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_large_pool_clean(self, name, seed):
        report = run_scenario(get_scenario(name, sites=12, seed=seed))
        assert report.ok, report.summary()

    @pytest.mark.parametrize("algorithm", sorted(available_algorithms()))
    def test_mixed_churn_all_builders(self, algorithm):
        spec = replace(
            get_scenario("mixed-churn", sites=10, seed=4), algorithm=algorithm
        )
        report = run_scenario(spec)
        assert report.ok, report.summary()
