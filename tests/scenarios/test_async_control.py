"""The async-control acceptance suite.

Two pillars:

* **Equivalence** — with ``control_delay_ms = debounce_ms = 0`` the
  event-driven control plane is the *degenerate case* of the
  synchronous one: for every named scenario, seed and builder, both
  paths must emit bit-identical directive sequences (same epochs, same
  edges, same rejections, same delta fields) and end on the same
  forest.  This is what lets the service replace the synchronous model
  without re-litigating any existing behavior.
* **Asynchrony** — with nonzero delay the regimes the synchronous model
  cannot express (overlapping rounds, joins landing mid-build,
  debounce coalescing) actually occur *and* every installed epoch keeps
  the :class:`~repro.sim.invariants.InvariantAuditor` clean.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.scenarios.library import get_scenario, scenario_names
from repro.scenarios.runtime import ScenarioRuntime
from repro.scenarios.spec import EventKind, SchedulePhase, ScenarioSpec
from repro.errors import ConfigurationError

SITES = 6

#: The acceptance matrix: every named scenario x 2 seeds x {RJ, CO-RJ}.
SEEDS = (7, 23)
BUILDERS = ("rj", "co-rj")


def run_pair(spec: ScenarioSpec) -> tuple[ScenarioRuntime, ScenarioRuntime]:
    """Run a spec synchronously and async-with-zero-delay."""
    sync_rt = ScenarioRuntime(spec)
    sync_rt.run()
    async_rt = ScenarioRuntime(replace(spec, async_control=True))
    async_rt.run()
    return sync_rt, async_rt


class TestZeroDelayEquivalence:
    @pytest.mark.parametrize("algorithm", BUILDERS)
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", scenario_names())
    def test_directives_bit_identical(self, name, seed, algorithm):
        spec = replace(
            get_scenario(name, sites=SITES, seed=seed), algorithm=algorithm
        )
        sync_rt, async_rt = run_pair(spec)
        assert sync_rt.directives == async_rt.directives
        # Same final forest behind the last directive.
        sync_forest = sorted(sync_rt.server.last_result.forest.edges())
        async_forest = sorted(async_rt.server.last_result.forest.edges())
        assert sync_forest == async_forest
        # Same per-round accounting and clean audits on both sides.
        assert sync_rt.report.rounds == async_rt.report.rounds
        assert sync_rt.report.requests_total == async_rt.report.requests_total
        assert sync_rt.report.rejected_total == async_rt.report.rejected_total
        assert sync_rt.report.ok and async_rt.report.ok

    def test_equivalence_holds_under_incremental_policy(self):
        """Delta directives flow through both paths identically."""
        spec = replace(
            get_scenario("mixed-churn", sites=SITES, seed=7),
            rebuild_policy="incremental",
        )
        sync_rt, async_rt = run_pair(spec)
        assert sync_rt.directives == async_rt.directives
        assert any(d.is_delta for d in sync_rt.directives)

    def test_rp_state_identical_after_run(self):
        spec = get_scenario("flash-crowd", sites=SITES, seed=7)
        sync_rt, async_rt = run_pair(spec)
        for site in range(SITES):
            sync_rp, async_rp = sync_rt.rps[site], async_rt.rps[site]
            assert sync_rp.epoch == async_rp.epoch
            assert sync_rp.received_streams() == async_rp.received_streams()
            assert sync_rp._forwarding == async_rp._forwarding


class TestAsyncRegimes:
    def mid_build_join_spec(self, seed: int = 7) -> ScenarioSpec:
        """A join burst dense enough that joins land while rounds are
        still propagating (delay 50ms, events every ~35ms)."""
        return replace(
            get_scenario("flash-crowd", sites=8, seed=seed),
            async_control=True,
            control_delay_ms=50.0,
            debounce_ms=15.0,
        )

    def test_mid_build_joins_audit_clean(self):
        runtime = ScenarioRuntime(self.mid_build_join_spec(), strict=True)
        report = runtime.run()
        assert report.ok
        assert report.events.get("join", 0) > 0
        # The async-only regime actually occurred: rounds were triggered
        # while their predecessor was still converging.
        assert report.overlapping_rounds > 0
        assert report.audit is not None
        assert report.audit.events_audited == report.rounds

    def test_every_triggered_round_converges(self):
        runtime = ScenarioRuntime(self.mid_build_join_spec())
        report = runtime.run()
        service = runtime.service
        assert all(round_.converged for round_ in service.rounds)
        assert report.convergence_rounds == report.rounds
        # Convergence can't beat debounce + two link traversals.
        floor = service.debounce_ms + 2 * service.control_delay_ms
        assert report.mean_convergence_ms >= floor
        assert report.max_convergence_ms >= report.mean_convergence_ms

    def test_debounce_coalesces_event_bursts(self):
        """A wide debounce window folds a join burst into fewer rounds."""
        spec = replace(
            get_scenario("flash-crowd", sites=8, seed=7),
            async_control=True,
            debounce_ms=120.0,
        )
        runtime = ScenarioRuntime(spec, strict=True)
        report = runtime.run()
        events = sum(report.events.values())
        assert report.rounds < 1 + events   # sync would run 1 + events
        assert any(round_.coalesced > 1 for round_ in runtime.service.rounds)
        assert report.ok

    @pytest.mark.parametrize("name", scenario_names())
    def test_named_scenarios_clean_under_delay(self, name):
        spec = replace(
            get_scenario(name, sites=SITES, seed=7),
            async_control=True,
            control_delay_ms=25.0,
            debounce_ms=10.0,
        )
        report = ScenarioRuntime(spec, strict=True).run()
        assert report.ok
        assert report.async_control

    def test_summary_mentions_async_control(self):
        report = ScenarioRuntime(self.mid_build_join_spec()).run()
        summary = report.summary()
        assert "async control" in summary
        assert "convergence" in summary


class TestReliableZeroFaultEquivalence:
    """Arming retransmission without any link faults must be a no-op:
    acks flow, but nothing is ever retransmitted and the audited
    timeline is bit-identical to the plain async path."""

    @pytest.mark.parametrize("algorithm", BUILDERS)
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", scenario_names())
    def test_armed_retransmit_transparent_without_faults(
        self, name, seed, algorithm
    ):
        spec = replace(
            get_scenario(name, sites=SITES, seed=seed),
            algorithm=algorithm,
            async_control=True,
        )
        clean = ScenarioRuntime(spec)
        clean.run()
        armed = ScenarioRuntime(replace(spec, retransmit_timeout_ms=60.0))
        armed.run()
        assert clean.directives == armed.directives
        assert clean.report.audit.digest == armed.report.audit.digest
        assert armed.report.chaos
        assert armed.report.retransmits == 0
        assert armed.report.retransmit_giveups == 0


class TestSpecValidation:
    def test_delay_without_async_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                name="bad",
                n_sites=4,
                initial_active=4,
                duration_ms=100.0,
                seed=1,
                control_delay_ms=10.0,
            )

    def test_negative_debounce_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                name="bad",
                n_sites=4,
                initial_active=4,
                duration_ms=100.0,
                seed=1,
                async_control=True,
                debounce_ms=-1.0,
            )

    def test_describe_mentions_async(self):
        spec = replace(
            get_scenario("flash-crowd"),
            async_control=True,
            control_delay_ms=50.0,
        )
        assert "async" in spec.describe()


class TestAsyncBootstrap:
    def test_empty_session_still_runs_bootstrap_round(self):
        spec = ScenarioSpec(
            name="empty",
            n_sites=4,
            initial_active=0,
            duration_ms=100.0,
            seed=3,
            async_control=True,
        )
        sync_report = ScenarioRuntime(replace(spec, async_control=False)).run()
        async_report = ScenarioRuntime(spec).run()
        assert async_report.rounds == sync_report.rounds == 1

    def test_fail_mid_flight_directive_still_installs(self):
        """A site that fails while a directive is in flight still applies
        it (the failure is server-side only), and stays audit-clean."""
        spec = replace(
            get_scenario("rolling-failure", sites=8, seed=11),
            async_control=True,
            control_delay_ms=60.0,
            debounce_ms=5.0,
        )
        report = ScenarioRuntime(spec, strict=True).run()
        assert report.ok
        assert report.events.get("fail", 0) > 0
