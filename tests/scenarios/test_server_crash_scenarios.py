"""Acceptance suite for the server-crash scenario family.

The headline guarantee: a membership-server crash is *survivable soft
state*.  After recovery the reconstructed registrations must hash
bit-identically to a never-crashed reference run — possible because
chaos draws from its own RNG stream, so killing the server perturbs
neither the membership schedule nor the workload, only the path by
which the directory re-learns it.  Riding along: nothing a site
reported during the outage may be lost (zero parked reports at drain),
and every strict invariant the lossless chaos family pins keeps
holding through the crash.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.scenarios.library import get_scenario
from repro.scenarios.runtime import ScenarioRuntime

CRASH_SCENARIOS = (
    "server-crash-flash-crowd",
    "server-restart-churn",
    "server-crash-partition-overlap",
)
SEEDS = (7, 23)


def run_runtime(spec, strict: bool = False) -> ScenarioRuntime:
    runtime = ScenarioRuntime(spec, strict=strict)
    runtime.run()
    return runtime


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", CRASH_SCENARIOS)
class TestCrashFamily:
    def test_strict_audit_survives_the_crash(self, name, seed):
        runtime = run_runtime(get_scenario(name, sites=8, seed=seed), strict=True)
        report = runtime.report
        assert report.ok
        assert report.server_recovery
        assert report.server_crashes >= 1
        assert report.server_recoveries == report.server_crashes
        assert report.audit.events_audited == report.rounds

    def test_no_membership_change_is_lost(self, name, seed):
        report = run_runtime(get_scenario(name, sites=8, seed=seed)).report
        assert report.reports_parked > 0  # the outage actually bit
        assert report.reports_replayed == report.reports_parked
        assert report.unrecovered_reports == 0
        assert report.unrecovered_suspicions == 0

    def test_soft_state_reconverges_to_never_crashed_reference(
        self, name, seed
    ):
        """The tentpole acceptance pin: post-recovery registrations are
        bit-identical to a run where the server never died."""
        spec = get_scenario(name, sites=8, seed=seed)
        crashed = run_runtime(spec)
        reference = run_runtime(
            replace(spec, server_outages=(), checkpoint_interval_ms=0.0)
        )
        assert crashed.report.server_crashes >= 1
        assert reference.report.server_crashes == 0
        assert (
            crashed.server.soft_state_digest()
            == reference.server.soft_state_digest()
        )

    def test_recovery_latency_is_measured_and_bounded(self, name, seed):
        spec = get_scenario(name, sites=8, seed=seed)
        report = run_runtime(spec).report
        assert report.mean_recovery_ms > 0.0
        assert report.mean_recovery_ms <= report.max_recovery_ms
        assert report.max_recovery_ms < spec.duration_ms

    def test_summary_reports_the_recovery_line(self, name, seed):
        summary = run_runtime(get_scenario(name, sites=8, seed=seed)).report.summary()
        assert "server recovery:" in summary
        assert "0 unrecovered" in summary


class TestScenarioShapes:
    def test_flash_crowd_crash_refreshes_every_live_site(self):
        """Cold restart mid-join-burst: every live site replays its
        advertise/subscribe pair exactly once for the new incarnation."""
        runtime = run_runtime(
            get_scenario("server-crash-flash-crowd", sites=8, seed=7)
        )
        report = runtime.report
        assert report.server_crashes == 1
        assert report.refresh_replays == len(runtime.service.live_sites)
        assert report.checkpoint_restores == 0  # no checkpointing: cold

    def test_restart_churn_restores_warm_from_checkpoints(self):
        report = run_runtime(
            get_scenario("server-restart-churn", sites=8, seed=7)
        ).report
        assert report.server_crashes == 2
        assert report.checkpoints_taken >= 1
        assert report.checkpoint_restores == report.server_crashes

    def test_partition_overlap_still_reconverges(self):
        """The outage sits inside a partition window: the cut-off site
        must survive both the cut and the cold restart."""
        report = run_runtime(
            get_scenario("server-crash-partition-overlap", sites=8, seed=7),
            strict=True,
        ).report
        assert report.ok
        assert report.unrecovered_suspicions == 0
        assert report.unrecovered_reports == 0

    def test_recovery_counters_replay_bit_identically(self):
        """The chaos determinism pin, extended to the recovery fields:
        crash scheduling, parking, replay and checkpointing all draw
        from seeded streams, so a replayed run matches counter for
        counter."""
        spec = get_scenario("server-restart-churn", sites=8, seed=7)
        first, second = run_runtime(spec).report, run_runtime(spec).report
        for attr in (
            "server_crashes",
            "server_recoveries",
            "mean_recovery_ms",
            "max_recovery_ms",
            "refresh_replays",
            "stale_incarnation_discards",
            "server_suspicions",
            "reports_parked",
            "reports_replayed",
            "messages_lost_to_outage",
            "checkpoints_taken",
            "checkpoint_restores",
            "unrecovered_reports",
        ):
            assert getattr(first, attr) == getattr(second, attr), attr


class TestPhiVersusStatic:
    """The φ-accrual acceptance pins, on the rolling-failure scenario."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_zero_false_suspicions_at_twenty_percent_loss(self, seed):
        spec = replace(
            get_scenario("heartbeat-rolling-failure", sites=8, seed=seed),
            phi_threshold=8.0,
        )
        assert spec.loss_rate == 0.2
        report = run_runtime(spec, strict=True).report
        assert report.ok
        assert report.detected_failures > 0
        assert report.false_suspicions == 0
        assert report.unrecovered_suspicions == 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_quiet_link_detects_no_later_than_static(self, seed):
        quiet = replace(
            get_scenario("heartbeat-rolling-failure", sites=8, seed=seed),
            loss_rate=0.0,
        )
        static = run_runtime(quiet).report
        phi = run_runtime(replace(quiet, phi_threshold=8.0)).report
        assert static.detected_failures > 0
        assert phi.detected_failures > 0
        assert phi.mean_detection_ms <= static.mean_detection_ms
