"""Acceptance suite for the chaos scenario family.

Three pillars:

* **Determinism** — chaos is drawn from the seeded simulator RNG, so a
  lossy, jittered, partitioned run replays bit-identically per seed
  (same audit digest, same drop/retransmit/detection counters).
* **Cleanliness** — under 20% loss, jitter, duplication and partitions
  every *installed* round still satisfies the full invariant audit, and
  the membership the server acts on reconverges to the truth.
* **Transparency** — impairments the reliability layer fully absorbs
  (duplication, lost acks forcing retransmits) leave the audited
  timeline bit-identical to the unimpaired run: the overlay cannot tell
  the chaos happened.
"""

from __future__ import annotations

import re
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.library import (
    chaos_scenario_names,
    get_scenario,
    scenario_names,
)
from repro.scenarios.runtime import ScenarioRuntime


def run_runtime(spec, strict: bool = False) -> ScenarioRuntime:
    runtime = ScenarioRuntime(spec, strict=strict)
    runtime.run()
    return runtime


class TestRegistry:
    def test_chaos_family_names(self):
        assert chaos_scenario_names() == [
            "heartbeat-rolling-failure",
            "lossy-dissemination",
            "lossy-flash-crowd",
            "partitioned-churn",
            "server-crash-flash-crowd",
            "server-crash-partition-overlap",
            "server-restart-churn",
        ]

    def test_base_family_unpolluted(self):
        """The digest suite pins scenario_names() to the six base shapes;
        the chaos family must not leak into it."""
        assert set(scenario_names()).isdisjoint(chaos_scenario_names())
        assert len(scenario_names()) == 6

    @pytest.mark.parametrize("name", chaos_scenario_names())
    def test_chaos_specs_resolve_and_are_async(self, name):
        spec = get_scenario(name, sites=6, seed=3)
        assert spec.async_control
        assert spec.retransmit_timeout_ms > 0
        assert (
            spec.loss_rate > 0 or spec.jitter_ms > 0 or spec.partitions
        )

    def test_chaos_knobs_require_async_control(self):
        with pytest.raises(ConfigurationError):
            replace(get_scenario("flash-crowd"), loss_rate=0.2)
        with pytest.raises(ConfigurationError):
            replace(get_scenario("flash-crowd"), heartbeat_ms=40.0)

    def test_describe_mentions_chaos(self):
        text = get_scenario("lossy-flash-crowd").describe()
        assert "chaos" in text
        assert "loss=20%" in text


class TestDeterminism:
    @pytest.mark.parametrize("name", chaos_scenario_names())
    def test_same_seed_replays_bit_identically(self, name):
        spec = get_scenario(name, sites=8, seed=7)
        first, second = run_runtime(spec), run_runtime(spec)
        assert first.report.audit.digest == second.report.audit.digest
        for attr in (
            "rounds",
            "messages_sent",
            "messages_dropped",
            "messages_duplicated",
            "retransmits",
            "retransmit_giveups",
            "detected_failures",
            "false_suspicions",
            "readmissions",
            "unrecovered_suspicions",
        ):
            assert getattr(first.report, attr) == getattr(
                second.report, attr
            ), attr

    def test_different_seeds_diverge(self):
        one = run_runtime(get_scenario("lossy-flash-crowd", sites=8, seed=7))
        two = run_runtime(get_scenario("lossy-flash-crowd", sites=8, seed=23))
        assert one.report.audit.digest != two.report.audit.digest


class TestLossyCleanliness:
    @pytest.mark.parametrize("seed", (7, 23))
    @pytest.mark.parametrize("name", chaos_scenario_names())
    def test_every_installed_round_audits_clean(self, name, seed):
        runtime = run_runtime(get_scenario(name, sites=8, seed=seed), strict=True)
        report = runtime.report
        assert report.ok
        assert report.chaos
        assert report.messages_dropped > 0  # the chaos actually happened
        assert report.audit.events_audited == report.rounds

    def test_retransmits_recover_lost_admissions(self):
        """20% loss on the join burst: retransmission still registers
        every surviving site."""
        runtime = run_runtime(get_scenario("lossy-flash-crowd", sites=8, seed=7))
        report = runtime.report
        assert report.retransmits > 0
        assert report.unrecovered_suspicions == 0
        registered = set(runtime.server.registered_sites())
        assert runtime.active <= registered


class TestHeartbeatScenarios:
    def test_failures_detected_within_bound(self):
        spec = get_scenario("heartbeat-rolling-failure", sites=8, seed=7)
        report = run_runtime(spec).report
        assert report.events.get("fail", 0) > 0
        assert report.detected_failures > 0
        # Silence-to-withdrawal within miss_threshold beats plus one
        # detector sweep, despite 20% heartbeat loss.
        bound = (spec.miss_threshold + 1) * spec.heartbeat_ms
        assert 0 < report.mean_detection_ms <= report.max_detection_ms
        assert report.max_detection_ms <= bound
        assert report.ok

    def test_partition_heals_via_readmission(self):
        report = run_runtime(
            get_scenario("partitioned-churn", sites=8, seed=7)
        ).report
        assert report.false_suspicions >= 1  # the cut mimicked a death
        assert report.readmissions >= 1  # ...and the zombie healed
        assert report.unrecovered_suspicions == 0
        assert report.ok

    def test_summary_reports_chaos_lines(self):
        summary = run_runtime(
            get_scenario("heartbeat-rolling-failure", sites=8, seed=7)
        ).report.summary()
        assert "chaos:" in summary
        assert "detection:" in summary
        # Duplicates and stale reports are distinct failure modes and
        # must be reported as two numbers, never one conflated sum.
        assert re.search(
            r"\d+ duplicate / \d+ stale reports discarded", summary
        )


class TestDataChaos:
    def test_lossy_dissemination_recovers_everything(self):
        report = run_runtime(
            get_scenario("lossy-dissemination", sites=8, seed=7)
        ).report
        assert report.data_chaos
        assert report.dataplane_sends_dropped > 0
        assert report.dataplane_nacks_sent > 0
        assert report.dataplane_repairs_sent > 0
        assert report.dataplane_frames_recovered > 0
        assert report.dataplane_frames_unrecovered == 0
        summary = report.summary()
        assert "data chaos:" in summary
        assert "0 unrecovered" in summary

    def test_data_knobs_do_not_require_async_control(self):
        """Control chaos needs the event-driven service; data chaos
        rides the dissemination sidecar's own simulator and must stay
        legal on a synchronous-control spec."""
        spec = replace(
            get_scenario("flash-crowd", sites=5, seed=7),
            data_loss_rate=0.1,
            data_jitter_ms=2.0,
        )
        assert not spec.async_control
        assert spec.data_chaotic

    def test_data_chaos_auto_enables_the_dataplane_sidecar(self):
        spec = replace(
            get_scenario("flash-crowd", sites=5, seed=7), data_loss_rate=0.1
        )
        report = ScenarioRuntime(spec, audit=False).run()
        assert report.data_chaos
        assert report.dataplane_frames_delivered > 0
        assert report.dataplane_sends_dropped > 0


class TestTransparency:
    """Impairments the reliability layer fully absorbs are invisible."""

    def base_spec(self, seed: int = 7):
        return replace(
            get_scenario("flash-crowd", sites=8, seed=seed),
            async_control=True,
            control_delay_ms=20.0,
            debounce_ms=10.0,
        )

    def test_pure_duplication_is_absorbed(self):
        """duplicate_rate=1.0 doubles every envelope; idempotent receive
        discards every copy, so the audited timeline is bit-identical to
        the unimpaired run."""
        clean = run_runtime(self.base_spec())
        doubled = run_runtime(replace(self.base_spec(), duplicate_rate=1.0))
        assert doubled.report.messages_duplicated > 0
        assert doubled.report.duplicates_discarded > 0
        assert clean.directives == doubled.directives
        assert clean.report.audit.digest == doubled.report.audit.digest

    def test_forced_retransmits_are_absorbed(self):
        """Dropping every first-attempt ack forces the full retransmit
        machinery to run; since the originals all arrived, the audited
        overlay timeline must not move."""
        armed = replace(self.base_spec(), retransmit_timeout_ms=60.0)
        clean = run_runtime(armed)
        assert clean.report.retransmits == 0

        forced = ScenarioRuntime(armed)
        forced.service.link.drop_filter = (
            lambda kind, message, attempt: attempt == 0
            and kind in ("control-ack", "directive-ack")
        )
        forced.run()
        assert forced.report.retransmits > 0
        assert forced.service.duplicates_discarded > 0  # re-sent reports
        assert forced.service.duplicate_directives > 0  # re-sent installs
        assert clean.directives == forced.directives
        assert clean.report.audit.digest == forced.report.audit.digest
