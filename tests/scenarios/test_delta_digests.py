"""Audit-digest equivalence for the O(churn) control-round paths.

Two pure-cost rewrites ride the round path: diffed assembly may consume
the server's dirty-registration delta (``delta_source="dirty"``) instead
of rescanning the workload's groups, and hybrid may gate its scratch
verification behind the repairer's drift estimate
(``drift_mode="estimate"``) instead of re-solving every round.  Neither
is allowed to change a single structural fact of any round: each must be
digest-identical to its reference path (``scan`` / ``measure``) across
the scenario matrix, on both array backends.

The tier-1 subset keeps the fast loop fast; ``--runslow`` enables the
full six-scenario x seed x algorithm x backend matrix from the PR's
acceptance criteria.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.backend import numpy_available
from repro.scenarios import get_scenario, run_scenario

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not importable"
)

ALL_SCENARIOS = (
    "capacity-starvation",
    "flash-crowd",
    "fov-thrash",
    "mass-leave",
    "mixed-churn",
    "rolling-failure",
)

BACKENDS = ("python", "numpy")


def _digest(name: str, seed: int, algorithm: str, backend: str, **overrides):
    spec = replace(
        get_scenario(name, sites=6, seed=seed),
        algorithm=algorithm,
        backend=backend,
        **overrides,
    )
    report = run_scenario(spec, audit=True)
    assert report.audit is not None and report.audit.ok
    return report.audit.digest


def _delta_source_digest(
    name: str, seed: int, algorithm: str, backend: str, delta_source: str
):
    return _digest(
        name,
        seed,
        algorithm,
        backend,
        rebuild_policy="incremental",
        problem_assembly="diffed",
        delta_source=delta_source,
    )


def _drift_mode_digest(
    name: str, seed: int, algorithm: str, backend: str, drift_mode: str
):
    return _digest(
        name,
        seed,
        algorithm,
        backend,
        rebuild_policy="hybrid",
        drift_mode=drift_mode,
    )


@pytest.mark.parametrize("algorithm", ["rj", "co-rj"])
@pytest.mark.parametrize("name", ["flash-crowd", "mixed-churn"])
def test_dirty_delta_matches_scan_tier1(name, algorithm):
    assert _delta_source_digest(
        name, 13, algorithm, "auto", "dirty"
    ) == _delta_source_digest(name, 13, algorithm, "auto", "scan")


@pytest.mark.parametrize("algorithm", ["rj", "co-rj"])
@pytest.mark.parametrize("name", ["capacity-starvation", "mixed-churn"])
def test_estimated_drift_matches_measured_tier1(name, algorithm):
    # capacity-starvation is the load-bearing cell: the only scenario
    # whose hybrid guard ever fails, i.e. where a missed verification
    # would actually change the adopted forest.
    assert _drift_mode_digest(
        name, 13, algorithm, "auto", "estimate"
    ) == _drift_mode_digest(name, 13, algorithm, "auto", "measure")


@needs_numpy
@pytest.mark.slow
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", [13, 29])
@pytest.mark.parametrize("algorithm", ["rj", "co-rj"])
@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_dirty_delta_matches_scan_full_matrix(name, algorithm, seed, backend):
    assert _delta_source_digest(
        name, seed, algorithm, backend, "dirty"
    ) == _delta_source_digest(name, seed, algorithm, backend, "scan")


@needs_numpy
@pytest.mark.slow
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", [13, 29])
@pytest.mark.parametrize("algorithm", ["rj", "co-rj"])
@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_estimated_drift_matches_measured_full_matrix(
    name, algorithm, seed, backend
):
    assert _drift_mode_digest(
        name, seed, algorithm, backend, "estimate"
    ) == _drift_mode_digest(name, seed, algorithm, backend, "measure")
