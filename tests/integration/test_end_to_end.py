"""Integration tests: the full pipeline, end to end."""

from __future__ import annotations

import pytest

from repro import (
    ForestMetrics,
    make_builder,
    quick_problem,
    quick_session,
)
from repro.cli import main
from repro.core.randomized import RandomJoinBuilder
from repro.pubsub.system import PubSubSystem
from repro.sim.dataplane import ForestDataPlane
from repro.util.rng import RngStream
from repro.workload.generator import WorkloadGenerator
from repro.workload.uniform import UniformPopularity


class TestQuickApi:
    def test_session_problem_build_metrics(self):
        rng = RngStream(21)
        session = quick_session(n_sites=5, rng=rng)
        problem = quick_problem(session, rng=rng, popularity="zipf")
        result = make_builder("rj").build(problem, rng.spawn("build"))
        result.verify()
        metrics = ForestMetrics.of(result)
        assert metrics.total_requests == problem.total_requests()

    def test_heterogeneous_nodes(self):
        rng = RngStream(22)
        session = quick_session(n_sites=4, rng=rng, nodes="heterogeneous")
        limits = {site.rp.inbound_limit for site in session.sites}
        assert limits <= {10, 20, 30}

    def test_bad_arguments(self):
        rng = RngStream(23)
        with pytest.raises(Exception):
            quick_session(n_sites=3, rng=rng, nodes="nonsense")
        session = quick_session(n_sites=3, rng=rng)
        with pytest.raises(Exception):
            quick_problem(session, rng=rng, popularity="nonsense")


class TestControlPlusDataPlane:
    def test_pubsub_round_then_dataplane(self):
        rng = RngStream(31)
        session = quick_session(n_sites=4, rng=rng)
        system = PubSubSystem(
            session=session, builder=RandomJoinBuilder(), latency_bound_ms=150.0
        )
        generator = WorkloadGenerator(
            session=session, popularity=UniformPopularity()
        )
        workload = generator.generate(rng.spawn("wl"))
        for site in session.sites:
            streams = list(workload.streams_of(site.index))
            if streams:
                system.subscribe_display(
                    site.index, site.displays[0].display_id, streams
                )
        directive = system.run_control_round(rng.spawn("round"))
        assert directive.epoch == 1
        result = system.last_result
        result.verify()

        plane = ForestDataPlane(
            session, result.forest, rng.spawn("dp"), latency_bound_ms=150.0
        )
        report = plane.run(duration_ms=400.0)
        assert report.bound_violations() == 0
        # every satisfied subscription actually receives media
        for request in result.satisfied:
            assert (request.stream, request.subscriber) in report.deliveries

    def test_forwarding_tables_match_forest(self):
        rng = RngStream(32)
        session = quick_session(n_sites=4, rng=rng)
        system = PubSubSystem(session=session, builder=RandomJoinBuilder())
        workload = WorkloadGenerator(
            session=session, popularity=UniformPopularity()
        ).generate(rng.spawn("wl"))
        for site in session.sites:
            streams = list(workload.streams_of(site.index))
            if streams:
                system.subscribe_display(
                    site.index, site.displays[0].display_id, streams
                )
        system.run_control_round(rng.spawn("round"))
        forest = system.last_result.forest
        for stream, tree in forest.trees.items():
            for parent, child in tree.edges():
                assert child in system.rps[parent].next_hops(stream)


class TestCli:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--sites", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "data plane" in out

    def test_fig8_tiny(self, capsys):
        code = main(
            ["fig8", "--workload", "random", "--nodes", "uniform",
             "--samples", "2", "--no-plot"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out and "rj" in out

    def test_fig9_tiny(self, capsys):
        assert main(["fig9", "--samples", "2", "--no-plot"]) == 0
        assert "granularity" in capsys.readouterr().out

    def test_fig10_tiny(self, capsys):
        assert main(["fig10", "--samples", "2", "--no-plot"]) == 0
        assert "utilization" in capsys.readouterr().out

    def test_fig11_tiny(self, capsys):
        assert main(["fig11", "--samples", "2", "--no-plot"]) == 0
        out = capsys.readouterr().out
        assert "co-rj" in out and "improvement" in out
