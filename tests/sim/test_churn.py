"""Tests for churn / rebuild experiments."""

from __future__ import annotations

import pytest

from repro.core.problem import ForestProblem
from repro.core.randomized import RandomJoinBuilder
from repro.sim.churn import problem_without_site, rebuild_after_leave
from repro.workload.coverage import CoverageWorkloadModel


@pytest.fixture
def workload(small_session, rng):
    return CoverageWorkloadModel(interest=0.3).generate(
        small_session, rng.spawn("wl")
    )


class TestProblemWithoutSite:
    def test_site_fully_removed(self, small_session, workload):
        problem = ForestProblem.from_workload(small_session, workload, 200.0)
        reduced = problem_without_site(problem, 1)
        assert reduced.inbound_limit(1) == 0
        assert reduced.outbound_limit(1) == 0
        for group in reduced.groups:
            assert group.source != 1
            assert 1 not in group.subscribers

    def test_other_groups_preserved(self, small_session, workload):
        problem = ForestProblem.from_workload(small_session, workload, 200.0)
        reduced = problem_without_site(problem, 1)
        survivors = {
            g.stream for g in problem.groups
            if g.source != 1 and g.subscribers - {1}
        }
        assert {g.stream for g in reduced.groups} == survivors


class TestRebuild:
    def test_report_consistency(self, small_session, workload, rng):
        report, before, after = rebuild_after_leave(
            small_session, workload, 2, RandomJoinBuilder(), rng, 200.0
        )
        before.verify()
        after.verify()
        assert report.leaving_site == 2
        assert report.satisfied_before == len(before.satisfied)
        assert report.satisfied_after == len(after.satisfied)
        assert 0 <= report.disruption_ratio <= 1.0
        assert report.parent_changes <= report.surviving_requests

    def test_leaving_site_absent_after(self, small_session, workload, rng):
        _, _, after = rebuild_after_leave(
            small_session, workload, 0, RandomJoinBuilder(), rng, 200.0
        )
        for request in after.satisfied:
            assert request.subscriber != 0
            assert request.source != 0

    def test_empty_survivors_zero_disruption(self):
        from repro.sim.churn import RebuildReport

        report = RebuildReport(
            leaving_site=0,
            satisfied_before=0,
            satisfied_after=0,
            surviving_requests=0,
            parent_changes=0,
            rejection_ratio_before=0.0,
            rejection_ratio_after=0.0,
        )
        assert report.disruption_ratio == 0.0
