"""Tests for churn / rebuild experiments."""

from __future__ import annotations

import pytest

from repro.core.problem import ForestProblem
from repro.core.randomized import RandomJoinBuilder
from repro.sim.churn import problem_without_site, rebuild_after_leave
from repro.workload.coverage import CoverageWorkloadModel


@pytest.fixture
def workload(small_session, rng):
    return CoverageWorkloadModel(interest=0.3).generate(
        small_session, rng.spawn("wl")
    )


class TestProblemWithoutSite:
    def test_site_fully_removed(self, small_session, workload):
        problem = ForestProblem.from_workload(small_session, workload, 200.0)
        reduced = problem_without_site(problem, 1)
        assert reduced.inbound_limit(1) == 0
        assert reduced.outbound_limit(1) == 0
        for group in reduced.groups:
            assert group.source != 1
            assert 1 not in group.subscribers

    def test_other_groups_preserved(self, small_session, workload):
        problem = ForestProblem.from_workload(small_session, workload, 200.0)
        reduced = problem_without_site(problem, 1)
        survivors = {
            g.stream for g in problem.groups
            if g.source != 1 and g.subscribers - {1}
        }
        assert {g.stream for g in reduced.groups} == survivors


class TestRebuild:
    def test_report_consistency(self, small_session, workload, rng):
        report, before, after = rebuild_after_leave(
            small_session, workload, 2, RandomJoinBuilder(), rng, 200.0
        )
        before.verify()
        after.verify()
        assert report.leaving_site == 2
        assert report.satisfied_before == len(before.satisfied)
        assert report.satisfied_after == len(after.satisfied)
        assert 0 <= report.disruption_ratio <= 1.0
        assert report.parent_changes <= report.surviving_requests

    def test_leaving_site_absent_after(self, small_session, workload, rng):
        _, _, after = rebuild_after_leave(
            small_session, workload, 0, RandomJoinBuilder(), rng, 200.0
        )
        for request in after.satisfied:
            assert request.subscriber != 0
            assert request.source != 0

    def test_empty_survivors_zero_disruption(self):
        from repro.sim.churn import RebuildReport

        report = RebuildReport(
            leaving_site=0,
            satisfied_before=0,
            satisfied_after=0,
            surviving_requests=0,
            parent_changes=0,
            rejection_ratio_before=0.0,
            rejection_ratio_after=0.0,
        )
        assert report.disruption_ratio == 0.0

    def test_deterministic_given_seed(self, small_session, workload):
        from repro.util.rng import RngStream

        runs = [
            rebuild_after_leave(
                small_session, workload, 1, RandomJoinBuilder(),
                RngStream(77), 200.0,
            )[0]
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_rejection_ratios_bounded(self, small_session, workload, rng):
        report, _, _ = rebuild_after_leave(
            small_session, workload, 3, RandomJoinBuilder(), rng, 200.0
        )
        assert 0.0 <= report.rejection_ratio_before <= 1.0
        assert 0.0 <= report.rejection_ratio_after <= 1.0

    def test_departed_site_relays_nothing_after(self, small_session, workload, rng):
        _, _, after = rebuild_after_leave(
            small_session, workload, 2, RandomJoinBuilder(), rng, 200.0
        )
        assert after.forest.out_degree(2) == 0
        assert after.forest.in_degree(2) == 0

    def test_rebuilt_overlay_passes_audit(self, small_session, workload, rng):
        from repro.sim.invariants import InvariantAuditor

        _, before, after = rebuild_after_leave(
            small_session, workload, 1, RandomJoinBuilder(), rng, 200.0
        )
        auditor = InvariantAuditor()
        assert auditor.audit_build(before, event="before") == []
        assert auditor.audit_build(after, event="after") == []


class TestProblemDerivation:
    def test_cost_matrix_and_bound_preserved(self, small_session, workload):
        problem = ForestProblem.from_workload(small_session, workload, 200.0)
        reduced = problem_without_site(problem, 1)
        assert reduced.latency_bound_ms == problem.latency_bound_ms
        assert reduced.n_nodes == problem.n_nodes
        for a in range(problem.n_nodes):
            for b in range(problem.n_nodes):
                assert reduced.edge_cost(a, b) == problem.edge_cost(a, b)

    def test_other_degree_bounds_untouched(self, small_session, workload):
        problem = ForestProblem.from_workload(small_session, workload, 200.0)
        reduced = problem_without_site(problem, 0)
        for node in range(1, problem.n_nodes):
            assert reduced.inbound_limit(node) == problem.inbound_limit(node)
            assert reduced.outbound_limit(node) == problem.outbound_limit(node)
