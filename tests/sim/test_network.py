"""Tests for the latency network model."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.network import LatencyNetwork
from repro.util.rng import RngStream


def make_network(small_session, **kwargs) -> tuple[LatencyNetwork, Simulator]:
    simulator = Simulator()
    network = LatencyNetwork(
        session=small_session,
        simulator=simulator,
        rng=RngStream(5),
        **kwargs,
    )
    return network, simulator


class TestDelivery:
    def test_latency_equals_cost(self, small_session):
        network, simulator = make_network(small_session)
        deliveries = []
        network.send(0, 1, "payload", lambda p, lat: deliveries.append((p, lat)))
        simulator.run()
        assert deliveries == [("payload", small_session.cost_ms(0, 1))]
        assert simulator.now == pytest.approx(small_session.cost_ms(0, 1))

    def test_jitter_adds_bounded_delay(self, small_session):
        network, simulator = make_network(small_session, jitter_ms=5.0)
        latencies = []
        for _ in range(50):
            network.send(0, 1, None, lambda _p, lat: latencies.append(lat))
        simulator.run()
        base = small_session.cost_ms(0, 1)
        assert all(base <= lat <= base + 5.0 for lat in latencies)
        assert max(latencies) > base  # jitter actually applied

    def test_loss_drops_messages(self, small_session):
        network, simulator = make_network(small_session, loss_probability=1.0)
        deliveries = []
        network.send(0, 1, None, lambda _p, _l: deliveries.append(1))
        simulator.run()
        assert deliveries == []
        assert network.dropped == 1
        assert network.sent == 1
        assert network.delivered == 0

    def test_counters(self, small_session):
        network, simulator = make_network(small_session)
        for _ in range(3):
            network.send(0, 2, None, lambda _p, _l: None)
        simulator.run()
        assert network.sent == 3
        assert network.delivered == 3

    def test_self_send_rejected(self, small_session):
        network, _ = make_network(small_session)
        with pytest.raises(SimulationError):
            network.send(1, 1, None, lambda _p, _l: None)


class TestDuplication:
    def test_certain_duplication_delivers_twice(self, small_session):
        network, simulator = make_network(
            small_session, duplicate_probability=1.0
        )
        deliveries = []
        network.send(0, 1, "payload", lambda p, lat: deliveries.append((p, lat)))
        simulator.run()
        base = small_session.cost_ms(0, 1)
        assert deliveries == [("payload", base), ("payload", base)]
        assert network.duplicated == 1
        assert network.sent == 1
        assert network.delivered == 2

    def test_copy_never_precedes_original(self, small_session):
        network, simulator = make_network(
            small_session, duplicate_probability=1.0, jitter_ms=5.0
        )
        latencies = []
        for _ in range(20):
            network.send(0, 1, None, lambda _p, lat: latencies.append(lat))
        simulator.run()
        assert len(latencies) == 40
        # Each copy carries the original latency plus its own jitter, so
        # it can only trail its original.
        assert network.duplicated == 20

    def test_bad_probability_rejected(self, small_session):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            make_network(small_session, duplicate_probability=1.5)
