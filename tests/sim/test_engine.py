"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_time_ordering(self):
        sim = Simulator()
        order = []
        sim.schedule_at(5.0, lambda: order.append("b"))
        sim.schedule_at(1.0, lambda: order.append("a"))
        sim.schedule_at(9.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_for_equal_times(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            sim.schedule_at(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_schedule_in_relative(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(10.0, lambda: sim.schedule_in(5.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [15.0]

    def test_now_advances(self):
        sim = Simulator()
        sim.schedule_at(4.0, lambda: None)
        sim.run()
        assert sim.now == 4.0

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.schedule_at(10.0, lambda: sim.schedule_at(5.0, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_in(-1.0, lambda: None)


class TestTimer:
    def test_one_shot_fires_once(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule_timer(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]
        assert timer.fired == 1
        assert not timer.cancelled

    def test_cancel_before_firing(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule_timer(5.0, lambda: fired.append(sim.now))
        timer.cancel()
        sim.run()
        assert fired == []
        assert timer.fired == 0

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        timer = sim.schedule_timer(5.0, lambda: None)
        timer.cancel()
        timer.cancel()
        sim.run()
        assert timer.cancelled

    def test_recurring_fires_until_cancelled(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule_timer(
            5.0, lambda: fired.append(sim.now), interval_ms=10.0
        )
        sim.run(until_ms=40.0)
        timer.cancel()
        sim.run()
        assert fired == [5.0, 15.0, 25.0, 35.0]

    def test_recurring_cancel_from_inside_callback(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule_timer(
            1.0, lambda: (fired.append(sim.now), timer.cancel()),
            interval_ms=1.0,
        )
        sim.run()
        assert fired == [1.0]

    def test_non_positive_interval_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_timer(1.0, lambda: None, interval_ms=0.0)

    def test_cancelled_event_is_noop_not_removed(self):
        # Cancellation is lazy: the heap entry stays and pops as a no-op.
        sim = Simulator()
        timer = sim.schedule_timer(5.0, lambda: None)
        timer.cancel()
        assert sim.pending_events == 1
        sim.run()
        assert sim.pending_events == 0


class TestRun:
    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.0, lambda: seen.append(1))
        sim.schedule_at(10.0, lambda: seen.append(10))
        executed = sim.run(until_ms=5.0)
        assert executed == 1
        assert seen == [1]
        assert sim.pending_events == 1
        assert sim.now == 5.0

    def test_resume_after_until(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(10.0, lambda: seen.append(10))
        sim.run(until_ms=5.0)
        sim.run()
        assert seen == [10]

    def test_event_counters(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule_at(float(t), lambda: None)
        sim.run()
        assert sim.processed_events == 5

    def test_runaway_guard(self):
        sim = Simulator()

        def reschedule():
            sim.schedule_in(1.0, reschedule)

        sim.schedule_at(0.0, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_not_reentrant(self):
        sim = Simulator()
        failures = []

        def nested():
            try:
                sim.run()
            except SimulationError:
                failures.append(True)

        sim.schedule_at(0.0, nested)
        sim.run()
        assert failures == [True]
