"""NACK/repair layer tests for the event-driven data plane.

Three pillars:

* **Transparency** — at zero noise the armed NACK machinery draws no
  RNG, sends no messages and touches no counters, so the report stays
  bit-identical to the analytic :class:`FastDataPlane`.
* **Recovery** — under 20% loss with a generous repair budget every
  lost frame instance is recovered: the delivery accounting converges
  to exactly what the lossless run would have produced.
* **Bounded give-up** — an unreachable receiver burns exactly
  ``max_repair_attempts`` NACKs per missing instance, is counted
  unrecovered exactly once, and leaves no armed timers behind.
"""

from __future__ import annotations

import pytest

from repro import make_builder, quick_problem, quick_session
from repro.errors import SimulationError
from repro.media.frames import Frame3D
from repro.perf.sweep import reports_equal
from repro.sim.dataplane import (
    FastDataPlane,
    ForestDataPlane,
    make_dataplane,
)
from repro.util.rng import RngStream

#: A repair budget loss cannot realistically exhaust (see the
#: lossy-dissemination scenario for the sizing rationale).
GENEROUS = {"max_repair_attempts": 30, "repair_deadline_factor": 20.0}


def build_forest(n_sites: int, seed: int, algorithm: str = "rj"):
    rng = RngStream(seed)
    session = quick_session(n_sites=n_sites, rng=rng)
    problem = quick_problem(session, rng=rng)
    result = make_builder(algorithm).build(problem, rng.spawn("build"))
    return session, result.forest


class TestZeroNoiseTransparency:
    @pytest.mark.parametrize("seed", (3, 7, 21))
    def test_nack_armed_deterministic_run_is_bit_identical(self, seed):
        """Arming NACK on a zero-noise run must not move a single bit of
        the report relative to the analytic plane."""
        session, forest = build_forest(6, seed)
        dp_rng = RngStream(seed, label="dp")
        fast = FastDataPlane(session, forest, dp_rng.spawn("x")).run(777.0)
        armed = ForestDataPlane(
            session, forest, dp_rng.spawn("x"), nack_enabled=True, **GENEROUS
        ).run(777.0)
        assert reports_equal(fast, armed)
        assert armed.nacks_sent == 0
        assert armed.repairs_sent == 0
        assert armed.frames_recovered == 0
        assert armed.frames_unrecovered == 0
        assert armed.duplicates_discarded == 0
        assert armed.sends_dropped == 0
        assert armed.latency_percentiles == {}


class TestRecovery:
    def run_lossy(self, seed: int = 7, duration_ms: float = 1000.0):
        session, forest = build_forest(8, seed)
        plane = ForestDataPlane(
            session,
            forest,
            RngStream(seed, label="dp").spawn("x"),
            jitter_ms=5.0,
            loss_probability=0.2,
            nack_enabled=True,
            **GENEROUS,
        )
        return session, forest, plane.run(duration_ms)

    def test_all_losses_recovered(self):
        session, forest, report = self.run_lossy()
        assert report.sends_dropped > 0  # the chaos actually happened
        assert report.nacks_sent > 0
        assert report.repairs_sent > 0
        assert report.frames_recovered > 0
        assert report.frames_unrecovered == 0

    def test_recovery_restores_lossless_delivery_accounting(self):
        """With every loss repaired, frame counts per (stream, receiver)
        equal the lossless run's exactly — only latencies differ."""
        session, forest, lossy = self.run_lossy()
        fast = FastDataPlane(
            session, forest, RngStream(7, label="dp").spawn("x")
        ).run(1000.0)
        assert lossy.frames_captured == fast.frames_captured
        assert lossy.frames_delivered == fast.frames_delivered
        assert set(lossy.deliveries) == set(fast.deliveries)
        for key, stats in lossy.deliveries.items():
            assert stats.frames == fast.deliveries[key].frames, key

    def test_recovery_is_deterministic(self):
        _, _, first = self.run_lossy(seed=23)
        _, _, second = self.run_lossy(seed=23)
        assert reports_equal(first, second)
        assert first.latency_percentiles == second.latency_percentiles

    def test_starved_budget_leaves_frames_unrecovered(self):
        session, forest = build_forest(8, 7)
        report = ForestDataPlane(
            session,
            forest,
            RngStream(7, label="dp").spawn("x"),
            loss_probability=0.2,
            nack_enabled=True,
            max_repair_attempts=1,
            repair_deadline_factor=0.01,
        ).run(1000.0)
        assert report.frames_unrecovered > 0


class TestBoundedGiveUp:
    def starve_one_leaf(self, attempts: int):
        """Drop one stream's every frame to one of its leaf receivers.

        A leaf of that tree relays to nobody, so the starvation is
        contained to exactly one (stream, site) instance set and the
        repair counts are exact.
        """
        session, forest = build_forest(6, 11)
        stream, leaf = next(
            (stream_id, site)
            for stream_id, tree in forest.trees.items()
            for site in tree.receivers()
            if not tree.children(site)
        )
        plane = ForestDataPlane(
            session,
            forest,
            RngStream(11, label="dp").spawn("x"),
            nack_enabled=True,
            max_repair_attempts=attempts,
            repair_deadline_factor=1000.0,  # only the attempt cap binds
        )
        plane.network.drop_filter = (
            lambda src, dst, payload: dst == leaf
            and isinstance(payload, Frame3D)
            and payload.stream_id == stream
        )
        report = plane.run(500.0)
        # Every stream runs the same 15fps clock, so frames split evenly
        # across the active trees; the starved instances are one full
        # stream's worth.
        active = forest_trees_with_receivers(forest)
        instances = report.frames_captured // len(active)
        return plane, report, (stream, leaf), instances

    def test_give_up_is_exact_and_settles(self):
        plane, report, starved, instances = self.starve_one_leaf(attempts=2)
        assert instances > 0
        # Each missing instance burned exactly its attempt budget and
        # was counted unrecovered exactly once.
        assert report.frames_unrecovered == instances
        assert report.nacks_sent == 2 * instances
        assert report.repairs_sent == 2 * instances  # parents had copies
        assert report.frames_recovered == 0
        # The run terminated with no repair state still armed.
        assert not plane._pending
        # The starvation was contained: the starved pair delivered
        # nothing, everyone else everything.
        assert starved not in report.deliveries
        frames_per_tree = instances
        for key, stats in report.deliveries.items():
            assert stats.frames == frames_per_tree, key

    def test_larger_budget_scales_linearly(self):
        _, two, _, instances = self.starve_one_leaf(attempts=2)
        _, five, _, _ = self.starve_one_leaf(attempts=5)
        assert five.nacks_sent == 5 * instances
        assert five.frames_unrecovered == two.frames_unrecovered


def forest_trees_with_receivers(forest):
    return [t for t in forest.trees.values() if t.receivers()]


class TestDuplicationDispatch:
    """make_dataplane must route duplication to the event plane (it used
    to drop the knob on the floor and hand back the fast plane)."""

    def test_duplication_routes_to_event_plane(self):
        session, forest = build_forest(4, 1)
        plane = make_dataplane(
            session,
            forest,
            RngStream(1).spawn("dp"),
            duplicate_probability=0.3,
        )
        assert isinstance(plane, ForestDataPlane)
        assert plane.kind == "event"
        assert plane.network.duplicate_probability == 0.3

    def test_duplicates_are_discarded_and_counted(self):
        session, forest = build_forest(4, 1)
        report = make_dataplane(
            session,
            forest,
            RngStream(1).spawn("dp"),
            duplicate_probability=0.5,
        ).run(500.0)
        assert report.duplicates_discarded > 0
        # Dedup means duplication never inflates the delivery counts.
        fast = make_dataplane(
            session, forest, RngStream(1).spawn("dp")
        ).run(500.0)
        assert report.frames_delivered == fast.frames_delivered

    def test_fast_plane_refuses_duplication(self):
        session, forest = build_forest(4, 1)
        with pytest.raises(SimulationError):
            make_dataplane(
                session,
                forest,
                RngStream(1).spawn("dp"),
                duplicate_probability=0.3,
                plane="fast",
            )

    def test_nack_alone_keeps_the_fast_plane(self):
        """NACK armed with zero noise is pinned transparent, so auto
        dispatch may (and does) keep the analytic plane."""
        session, forest = build_forest(4, 1)
        plane = make_dataplane(
            session, forest, RngStream(1).spawn("dp"), nack_enabled=True
        )
        assert isinstance(plane, FastDataPlane)
