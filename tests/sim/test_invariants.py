"""Tests for the runtime invariant auditor."""

from __future__ import annotations

import pytest

from repro.core.randomized import RandomJoinBuilder
from repro.errors import SimulationError
from repro.pubsub.system import PubSubSystem
from repro.session.streams import StreamId
from repro.sim.invariants import InvariantAuditor, Violation
from repro.util.rng import RngStream


@pytest.fixture
def clean_result(small_problem, rng):
    return RandomJoinBuilder().build(small_problem, rng.spawn("build"))


def invariants_of(violations: list[Violation]) -> set[str]:
    return {violation.invariant for violation in violations}


class TestCleanBuild:
    def test_no_violations(self, clean_result):
        auditor = InvariantAuditor()
        found = auditor.audit_build(clean_result)
        assert found == []
        report = auditor.report()
        assert report.ok
        assert report.events_audited == 1
        assert report.checks_run > 0
        assert len(report.digest) == 64

    def test_digest_deterministic_across_auditors(self, clean_result):
        first = InvariantAuditor()
        second = InvariantAuditor()
        first.audit_build(clean_result, event="e", time_ms=5.0)
        second.audit_build(clean_result, event="e", time_ms=5.0)
        assert first.report().digest == second.report().digest

    def test_digest_sensitive_to_event_label(self, clean_result):
        first = InvariantAuditor()
        second = InvariantAuditor()
        first.audit_build(clean_result, event="a")
        second.audit_build(clean_result, event="b")
        assert first.report().digest != second.report().digest

    def test_report_summary_mentions_counts(self, clean_result):
        auditor = InvariantAuditor()
        auditor.audit_build(clean_result)
        summary = auditor.report().summary()
        assert "1 events" in summary
        assert "0 violations" in summary


class TestStructuralViolations:
    def test_cycle_detected(self, clean_result):
        tree = next(
            t for t in clean_result.forest.trees.values() if len(t) >= 2
        )
        member = next(n for n in tree.members() if n != tree.source)
        # Corrupt: point the member's parent back at itself.
        tree._parent[member] = member
        found = InvariantAuditor().audit_build(clean_result)
        assert "acyclicity" in invariants_of(found)

    def test_symmetry_breach_detected(self, clean_result):
        tree = next(
            t for t in clean_result.forest.trees.values() if len(t) >= 2
        )
        member = next(n for n in tree.members() if n != tree.source)
        # Corrupt: drop the child from its parent's children list.
        tree._children[tree._parent[member]].remove(member)
        found = InvariantAuditor().audit_build(clean_result)
        assert "parent-child-symmetry" in invariants_of(found)

    def test_degree_ledger_mismatch_detected(self, clean_result):
        clean_result.state.dout[0] += 1
        found = InvariantAuditor().audit_build(clean_result)
        assert "degree-ledger" in invariants_of(found)

    def test_inbound_bound_violation_detected(self, clean_result):
        node = clean_result.satisfied[0].subscriber
        clean_result.problem.inbound[node] = 0
        found = InvariantAuditor().audit_build(clean_result)
        assert "inbound-bound" in invariants_of(found)

    def test_latency_violation_detected(self, clean_result):
        request = clean_result.satisfied[0]
        tree = clean_result.forest.trees[request.stream]
        tree._cost_from_source[request.subscriber] = 10_000.0
        found = InvariantAuditor().audit_build(clean_result)
        assert "latency-bound" in invariants_of(found)

    def test_reservation_accounting_mismatch_detected(self, clean_result):
        source = clean_result.problem.groups[0].source
        clean_result.state.m_hat[source] += 1
        clean_result.state.m[source] += 1  # keep the range check quiet
        found = InvariantAuditor().audit_build(clean_result)
        assert "reservation-accounting" in invariants_of(found)

    def test_accounting_mismatch_detected(self, clean_result):
        clean_result.forest.satisfied.pop()
        found = InvariantAuditor().audit_build(clean_result)
        assert "request-accounting" in invariants_of(found)

    def test_strict_mode_raises(self, clean_result):
        clean_result.state.dout[0] += 1
        with pytest.raises(SimulationError, match="invariant violated"):
            InvariantAuditor(strict=True).audit_build(clean_result)

    def test_violations_carry_event_and_time(self, clean_result):
        clean_result.state.dout[0] += 1
        auditor = InvariantAuditor()
        auditor.audit_build(clean_result, event="probe", time_ms=42.0)
        violation = auditor.report().violations[0]
        assert violation.event == "probe"
        assert violation.time_ms == 42.0
        assert "probe" in violation.render()


@pytest.fixture
def round_state(small_session):
    """One full control round through the pub-sub façade."""
    rng = RngStream(99, label="round")
    system = PubSubSystem(
        session=small_session,
        builder=RandomJoinBuilder(),
        latency_bound_ms=200.0,
    )
    for site in small_session.sites:
        remote = sorted(
            stream_id
            for other in small_session.sites
            if other.index != site.index
            for stream_id in other.stream_ids
        )[:3]
        system.subscribe_display(
            site.index, site.displays[0].display_id, remote
        )
    directive = system.run_control_round(rng)
    return system, directive


class TestAuditRound:
    def test_clean_round(self, round_state, small_session):
        system, directive = round_state
        auditor = InvariantAuditor()
        found = auditor.audit_round(
            system.last_result,
            directive,
            system.rps,
            active=range(small_session.n_sites),
        )
        assert found == []

    def test_phantom_directive_edge_detected(self, round_state, small_session):
        from dataclasses import replace

        system, directive = round_state
        phantom = (StreamId(0, 999), 0, 1)
        corrupted = replace(directive, edges=directive.edges + (phantom,))
        found = InvariantAuditor().audit_round(
            system.last_result,
            corrupted,
            system.rps,
            active=range(small_session.n_sites),
        )
        assert "directive-fidelity" in invariants_of(found)

    def test_stale_rp_epoch_detected(self, round_state, small_session):
        system, directive = round_state
        system.rps[0]._epoch = directive.epoch + 5
        found = InvariantAuditor().audit_round(
            system.last_result,
            directive,
            system.rps,
            active=range(small_session.n_sites),
        )
        assert "directive-fidelity" in invariants_of(found)

    def test_forwarding_table_tamper_detected(self, round_state, small_session):
        system, directive = round_state
        rp = next(
            rp for rp in system.rps.values() if rp._forwarding
        )
        stream = next(iter(rp._forwarding))
        rp._forwarding[stream] = rp._forwarding[stream] + [0]
        found = InvariantAuditor().audit_round(
            system.last_result,
            directive,
            system.rps,
            active=range(small_session.n_sites),
        )
        assert "forwarding-table" in invariants_of(found)

    def test_missing_rp_for_active_site_detected(self, round_state, small_session):
        system, directive = round_state
        rps = dict(system.rps)
        del rps[0]
        found = InvariantAuditor().audit_round(
            system.last_result,
            directive,
            rps,
            active=range(small_session.n_sites),
        )
        assert "membership" in invariants_of(found)
