"""Tests for the forest data plane."""

from __future__ import annotations

import pytest

from repro.core.randomized import RandomJoinBuilder
from repro.sim.dataplane import ForestDataPlane
from repro.util.rng import RngStream


@pytest.fixture
def built(small_session, small_problem, rng):
    result = RandomJoinBuilder().build(small_problem, rng.spawn("build"))
    result.verify()
    return result


class TestDataPlane:
    def run_plane(self, small_session, built, rng, **kwargs):
        plane = ForestDataPlane(
            session=small_session,
            forest=built.forest,
            rng=rng.spawn("dp"),
            latency_bound_ms=built.problem.latency_bound_ms,
            **kwargs,
        )
        return plane.run(duration_ms=500.0)

    def test_delivery_latency_equals_tree_cost(
        self, small_session, built, rng
    ):
        report = self.run_plane(small_session, built, rng)
        for (stream, site), stats in report.deliveries.items():
            tree = built.forest.trees[stream]
            assert stats.mean_latency_ms == pytest.approx(
                tree.cost_from_source(site)
            )
            assert stats.max_latency_ms == pytest.approx(
                tree.cost_from_source(site)
            )

    def test_no_bound_violations_without_jitter(
        self, small_session, built, rng
    ):
        report = self.run_plane(small_session, built, rng)
        assert report.bound_violations() == 0

    def test_every_satisfied_receiver_got_frames(
        self, small_session, built, rng
    ):
        report = self.run_plane(small_session, built, rng)
        for request in built.satisfied:
            key = (request.stream, request.subscriber)
            assert key in report.deliveries
            assert report.deliveries[key].frames > 0

    def test_frames_delivered_counts(self, small_session, built, rng):
        report = self.run_plane(small_session, built, rng)
        expected_receivers = sum(
            len(tree.receivers()) for tree in built.forest.trees.values()
        )
        # each receiver gets one delivery per captured frame of its stream
        assert report.frames_delivered == sum(
            stats.frames for stats in report.deliveries.values()
        )
        assert len(report.deliveries) == expected_receivers

    def test_bytes_accounted_per_relay(self, small_session, built, rng):
        report = self.run_plane(small_session, built, rng)
        total_sent = sum(report.bytes_sent_by_site.values())
        assert total_sent > 0
        # Conservation: every delivered frame was sent exactly once.
        assert report.frames_delivered > 0

    def test_out_mbps_positive_for_sources(self, small_session, built, rng):
        report = self.run_plane(small_session, built, rng)
        rates = report.out_mbps_by_site()
        active_sources = {
            stream.site
            for stream, tree in built.forest.trees.items()
            if tree.receivers()
        }
        for site in active_sources:
            assert rates[site] > 0.0

    def test_loss_reduces_deliveries(self, small_session, built, rng):
        lossless = self.run_plane(small_session, built, rng)
        lossy = self.run_plane(
            small_session, built, rng, loss_probability=0.5
        )
        assert lossy.frames_delivered < lossless.frames_delivered

    def test_unsubscribed_streams_stay_local(
        self, small_session, built, rng
    ):
        report = self.run_plane(small_session, built, rng)
        receiverless = [
            stream
            for stream, tree in built.forest.trees.items()
            if not tree.receivers()
        ]
        for stream in receiverless:
            assert all(key[0] != stream for key in report.deliveries)
