"""Sampled-percentile plane tests: exactness, agreement, dispatch, speed.

The :class:`SampledDataPlane` replaces the event heap with bulk draws
convolved along tree paths.  Its contract has three legs:

* at **zero noise** it degrades to the exact :class:`FastDataPlane`
  arithmetic (same report, bit for bit — except it always fills the
  percentiles);
* under **noise** it matches the event-driven oracle's latency
  percentiles within a small tolerance (the distributions are equal in
  law; only the draw order differs);
* it is **deterministic per seed and identical across array backends**
  (all randomness comes from the RngStream, never the backend).
"""

from __future__ import annotations

import time

import pytest

from repro import make_builder, quick_problem, quick_session
from repro.errors import SimulationError
from repro.perf.sweep import reports_equal
from repro.sim.dataplane import (
    FastDataPlane,
    ForestDataPlane,
    SampledDataPlane,
    make_dataplane,
)
from repro.util.rng import RngStream

#: Relative oracle-agreement tolerances pinned here and documented in
#: docs/PERFORMANCE.md: the tail percentile sees fewer samples, so it
#: gets the looser bound.
P50_P90_RTOL = 0.05
P99_RTOL = 0.10

NOISY = {"jitter_ms": 5.0, "loss_probability": 0.2}


def build_forest(n_sites: int, seed: int, algorithm: str = "rj"):
    rng = RngStream(seed)
    session = quick_session(n_sites=n_sites, rng=rng)
    problem = quick_problem(session, rng=rng)
    result = make_builder(algorithm).build(problem, rng.spawn("build"))
    return session, result.forest


class TestZeroNoiseExactness:
    @pytest.mark.parametrize("seed", (3, 7, 21))
    @pytest.mark.parametrize("n_sites", (3, 6, 8))
    def test_collapses_to_fast_plane(self, n_sites, seed):
        session, forest = build_forest(n_sites, seed)
        dp_rng = RngStream(seed, label="dp")
        fast = FastDataPlane(session, forest, dp_rng.spawn("x")).run(777.0)
        sampled = SampledDataPlane(session, forest, dp_rng.spawn("x")).run(
            777.0
        )
        assert reports_equal(fast, sampled)
        assert sampled.sends_dropped == 0
        # The one deliberate difference: the sampled plane always
        # summarizes its latencies.
        assert fast.latency_percentiles == {}
        if sampled.frames_delivered:
            assert sampled.latency_percentiles


class TestOracleAgreement:
    @pytest.mark.parametrize("seed", (3, 7, 21))
    def test_noisy_percentiles_match_event_plane(self, seed):
        session, forest = build_forest(8, seed)
        dp_rng = RngStream(seed, label="dp")
        event = ForestDataPlane(
            session,
            forest,
            dp_rng.spawn("e"),
            collect_percentiles=True,
            **NOISY,
        ).run(2000.0)
        sampled = SampledDataPlane(
            session, forest, dp_rng.spawn("s"), **NOISY
        ).run(2000.0)
        for q, rtol in ((50, P50_P90_RTOL), (90, P50_P90_RTOL), (99, P99_RTOL)):
            oracle = event.latency_percentiles[q]
            ours = sampled.latency_percentiles[q]
            assert abs(ours - oracle) <= rtol * oracle, (
                f"p{q}: sampled {ours:.2f} vs event {oracle:.2f}"
            )
        # Loss hits both planes at the configured rate: delivered
        # volumes agree within a few percent.
        assert (
            abs(sampled.frames_delivered - event.frames_delivered)
            <= 0.05 * event.frames_delivered
        )

    def test_loss_correlates_down_the_subtree(self):
        """A frame lost at a hop must be lost for the entire subtree
        below it: delivered fraction at depth d is (1-p)^d on average,
        not (1-p) independently per node."""
        session, forest = build_forest(8, 7)
        report = SampledDataPlane(
            session,
            forest,
            RngStream(7, label="dp").spawn("x"),
            loss_probability=0.3,
        ).run(2000.0)
        depths: dict[int, list[float]] = {}
        for (stream_id, node), stats in report.deliveries.items():
            tree = forest.trees[stream_id]
            depth, cursor = 0, node
            while tree.parent(cursor) is not None:
                cursor = tree.parent(cursor)
                depth += 1
            n_frames = report.frames_captured // len(
                [t for t in forest.trees.values() if t.receivers()]
            )
            depths.setdefault(depth, []).append(stats.frames / n_frames)
        rates = {d: sum(v) / len(v) for d, v in sorted(depths.items())}
        assert len(rates) >= 2  # the forest actually has depth
        for shallow, deep in zip(sorted(rates), sorted(rates)[1:]):
            assert rates[deep] < rates[shallow]


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        session, forest = build_forest(8, 23)

        def run():
            return SampledDataPlane(
                session,
                forest,
                RngStream(23, label="dp").spawn("x"),
                **NOISY,
            ).run(1000.0)

        first, second = run(), run()
        assert reports_equal(first, second)
        assert first.latency_percentiles == second.latency_percentiles

    def test_different_seeds_diverge(self):
        session, forest = build_forest(8, 23)
        one = SampledDataPlane(
            session, forest, RngStream(1, label="dp").spawn("x"), **NOISY
        ).run(1000.0)
        two = SampledDataPlane(
            session, forest, RngStream(2, label="dp").spawn("x"), **NOISY
        ).run(1000.0)
        assert not reports_equal(one, two)


class TestDispatch:
    def test_sampled_is_explicit_opt_in(self):
        session, forest = build_forest(4, 1)
        plane = make_dataplane(
            session,
            forest,
            RngStream(1).spawn("dp"),
            loss_probability=0.2,
            plane="sampled",
        )
        assert isinstance(plane, SampledDataPlane)
        assert plane.kind == "sampled"
        # auto keeps routing noise to the oracle.
        auto = make_dataplane(
            session, forest, RngStream(1).spawn("dp"), loss_probability=0.2
        )
        assert isinstance(auto, ForestDataPlane)

    def test_sampled_refuses_duplication_and_nack(self):
        session, forest = build_forest(4, 1)
        with pytest.raises(SimulationError):
            make_dataplane(
                session,
                forest,
                RngStream(1).spawn("dp"),
                duplicate_probability=0.1,
                plane="sampled",
            )
        with pytest.raises(SimulationError):
            make_dataplane(
                session,
                forest,
                RngStream(1).spawn("dp"),
                nack_enabled=True,
                plane="sampled",
            )

    def test_unknown_plane_rejected(self):
        session, forest = build_forest(4, 1)
        with pytest.raises(SimulationError):
            make_dataplane(
                session, forest, RngStream(1).spawn("dp"), plane="warp"
            )

    def test_event_can_be_forced_at_zero_noise(self):
        session, forest = build_forest(4, 1)
        plane = make_dataplane(
            session, forest, RngStream(1).spawn("dp"), plane="event"
        )
        assert isinstance(plane, ForestDataPlane)


@pytest.mark.slow
class TestSpeedup:
    def test_five_x_faster_than_event_plane_at_256(self):
        """The acceptance bar: >= 5x over the event plane at N=256 under
        20% loss (best-of to shave scheduler noise)."""
        from repro.core.problem import ForestProblem
        from repro.perf.sweep import (
            DEFAULT_LATENCY_BOUND_MS,
            DEFAULT_MEAN_SUBSCRIBERS,
            DEFAULT_STREAMS_PER_SITE,
            _sweep_session,
        )
        from repro.workload.coverage import CoverageWorkloadModel

        session = _sweep_session(256, 42, DEFAULT_STREAMS_PER_SITE)
        rng = RngStream(42, label="perf/N256")
        workload = CoverageWorkloadModel(
            mean_subscribers=DEFAULT_MEAN_SUBSCRIBERS,
            guarantee_coverage=False,
        ).generate(session, rng.spawn("workload"))
        problem = ForestProblem.from_workload(
            session, workload, DEFAULT_LATENCY_BOUND_MS
        )
        forest = make_builder("rj").build(problem, rng.spawn("build")).forest

        def best_of(runs, plane_cls):
            best = float("inf")
            for _ in range(runs):
                start = time.perf_counter()
                plane_cls(
                    session, forest, rng.spawn("timing"), **NOISY
                ).run(1000.0)
                best = min(best, time.perf_counter() - start)
            return best

        event_s = best_of(1, ForestDataPlane)
        sampled_s = best_of(3, SampledDataPlane)
        assert event_s / sampled_s >= 5.0, (
            f"sampled {sampled_s * 1000:.1f}ms vs event "
            f"{event_s * 1000:.1f}ms: {event_s / sampled_s:.1f}x"
        )
