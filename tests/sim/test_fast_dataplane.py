"""Fast-vs-event data-plane equivalence and dispatch tests.

The analytic :class:`FastDataPlane` must be *bit-identical* to the
event-driven plane on every zero-jitter run — same frame counts, same
per-pair latency statistics (exact floats), same byte accounting — and
:func:`make_dataplane` must route stochastic runs back to the
event-driven simulator.
"""

from __future__ import annotations

import pytest

from repro import make_builder, quick_problem, quick_session
from repro.errors import SimulationError
from repro.scenarios.library import get_scenario, scenario_names
from repro.scenarios.runtime import ScenarioRuntime
from repro.sim.dataplane import FastDataPlane, ForestDataPlane, make_dataplane
from repro.util.rng import RngStream


def assert_reports_identical(fast, event) -> None:
    """Field-exact equality, floats compared with ``==`` on purpose."""
    assert fast.duration_ms == event.duration_ms
    assert fast.frames_captured == event.frames_captured
    assert fast.frames_delivered == event.frames_delivered
    assert fast.latency_bound_ms == event.latency_bound_ms
    assert fast.bytes_sent_by_site == event.bytes_sent_by_site
    assert set(fast.deliveries) == set(event.deliveries)
    for key, stats in fast.deliveries.items():
        other = event.deliveries[key]
        assert stats.frames == other.frames, key
        assert stats.total_latency_ms == other.total_latency_ms, key
        assert stats.max_latency_ms == other.max_latency_ms, key


def build_forest(n_sites: int, seed: int, algorithm: str):
    rng = RngStream(seed)
    session = quick_session(n_sites=n_sites, rng=rng)
    problem = quick_problem(session, rng=rng)
    result = make_builder(algorithm).build(problem, rng.spawn("build"))
    return session, result.forest


class TestBitIdentity:
    @pytest.mark.parametrize("seed", (3, 7, 21))
    @pytest.mark.parametrize("n_sites", (3, 5, 8))
    def test_size_seed_matrix(self, n_sites, seed):
        session, forest = build_forest(n_sites, seed, "rj")
        dp_rng = RngStream(seed, label="dp")
        fast = FastDataPlane(session, forest, dp_rng.spawn("x")).run(777.0)
        event = ForestDataPlane(session, forest, dp_rng.spawn("x")).run(777.0)
        assert_reports_identical(fast, event)

    @pytest.mark.parametrize("algorithm", ("ltf", "co-rj", "gran-ltf"))
    def test_algorithm_matrix(self, algorithm):
        session, forest = build_forest(6, 11, algorithm)
        dp_rng = RngStream(5, label="dp")
        fast = FastDataPlane(session, forest, dp_rng.spawn("x")).run(1000.0)
        event = ForestDataPlane(session, forest, dp_rng.spawn("x")).run(1000.0)
        assert_reports_identical(fast, event)

    @pytest.mark.parametrize("name", scenario_names())
    def test_scenario_matrix(self, name):
        """Forests produced by live scenario churn disseminate identically."""
        runtime = ScenarioRuntime(
            get_scenario(name, sites=6, seed=17), audit=False
        )
        runtime.run()
        result = runtime.server.last_result
        assert result is not None
        dp_rng = RngStream(17, label="dp")
        fast = FastDataPlane(
            runtime.session, result.forest, dp_rng.spawn("x")
        ).run(500.0)
        event = ForestDataPlane(
            runtime.session, result.forest, dp_rng.spawn("x")
        ).run(500.0)
        assert_reports_identical(fast, event)

    @pytest.mark.parametrize("duration_ms", (0.0, 66.0, 333.3, 2000.0))
    def test_duration_edge_cases(self, duration_ms):
        """Capture-cadence float accumulation matches at any horizon."""
        session, forest = build_forest(4, 2, "rj")
        dp_rng = RngStream(9, label="dp")
        fast = FastDataPlane(session, forest, dp_rng.spawn("x")).run(duration_ms)
        event = ForestDataPlane(session, forest, dp_rng.spawn("x")).run(duration_ms)
        assert_reports_identical(fast, event)


class TestDispatch:
    def test_zero_noise_gets_fast_plane(self):
        session, forest = build_forest(4, 1, "rj")
        plane = make_dataplane(session, forest, RngStream(1).spawn("dp"))
        assert isinstance(plane, FastDataPlane)
        assert plane.kind == "fast"

    @pytest.mark.parametrize(
        "kwargs",
        (
            {"jitter_ms": 4.0},
            {"loss_probability": 0.1},
            {"jitter_ms": 2.0, "loss_probability": 0.05},
        ),
    )
    def test_noise_gets_event_plane(self, kwargs):
        session, forest = build_forest(4, 1, "rj")
        plane = make_dataplane(
            session, forest, RngStream(1).spawn("dp"), **kwargs
        )
        assert isinstance(plane, ForestDataPlane)
        assert plane.kind == "event"
        # and it actually honours the noise parameters
        assert plane.network.jitter_ms == kwargs.get("jitter_ms", 0.0)
        assert plane.network.loss_probability == kwargs.get(
            "loss_probability", 0.0
        )

    def test_fast_plane_refuses_noise(self):
        session, forest = build_forest(4, 1, "rj")
        with pytest.raises(SimulationError):
            FastDataPlane(
                session, forest, RngStream(1).spawn("dp"), jitter_ms=1.0
            )
        with pytest.raises(SimulationError):
            FastDataPlane(
                session, forest, RngStream(1).spawn("dp"), loss_probability=0.5
            )

    def test_noisy_run_still_works_via_factory(self):
        session, forest = build_forest(4, 1, "rj")
        report = make_dataplane(
            session, forest, RngStream(1).spawn("dp"), jitter_ms=3.0
        ).run(400.0)
        assert report.frames_delivered > 0


class TestScenarioDataplaneMeasurement:
    def test_sidecar_accumulates(self):
        runtime = ScenarioRuntime(
            get_scenario("flash-crowd", sites=5, seed=7),
            audit=False,
            dataplane=True,
        )
        report = runtime.run()
        assert report.dataplane_frames_delivered > 0
        assert report.dataplane_mean_latency_ms > 0.0
        assert report.dataplane_max_latency_ms >= report.dataplane_mean_latency_ms
        assert "data plane:" in report.summary()

    def test_sidecar_off_by_default(self):
        report = ScenarioRuntime(
            get_scenario("flash-crowd", sites=5, seed=7), audit=False
        ).run()
        assert report.dataplane_frames_delivered == 0
        assert "data plane:" not in report.summary()

    def test_sidecar_is_deterministic(self):
        spec = get_scenario("mixed-churn", sites=5, seed=23)
        first = ScenarioRuntime(spec, audit=False, dataplane=True).run()
        second = ScenarioRuntime(spec, audit=False, dataplane=True).run()
        assert (
            first.dataplane_frames_delivered
            == second.dataplane_frames_delivered
        )
        assert (
            first.dataplane_total_latency_ms
            == second.dataplane_total_latency_ms
        )
