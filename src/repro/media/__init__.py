"""Synthetic 3D media model.

The real system's cameras produce 640x480 depth+color macroblock streams
(~180 Mbps raw, 5-10 Mbps after the reduction pipeline).  This package
models just enough of that for the data-plane simulator: frame sizes,
capture cadence, and per-stream sources.
"""

from repro.media.frames import Frame3D, FrameClock
from repro.media.source import CameraSource

__all__ = ["Frame3D", "FrameClock", "CameraSource"]
