"""Camera stream sources for the data-plane simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.media.frames import Frame3D, FrameClock
from repro.util.rng import RngStream


@dataclass
class CameraSource:
    """Emits one stream's frames at a fixed cadence.

    The source is driven by the simulator: :meth:`start` schedules the
    first capture, and every capture schedules the next until
    ``end_time_ms`` is reached.
    """

    clock: FrameClock
    rng: RngStream
    on_frame: Callable[[Frame3D], None]
    end_time_ms: float
    frames_emitted: int = field(default=0, init=False)

    def start(self, schedule: Callable[[float, Callable[[], None]], None]) -> None:
        """Begin capturing; ``schedule(at_ms, fn)`` is the simulator hook."""
        self._schedule = schedule
        self._capture_at(0.0)

    def _capture_at(self, time_ms: float) -> None:
        if time_ms > self.end_time_ms:
            return
        self._schedule(time_ms, lambda t=time_ms: self._capture(t))

    def _capture(self, time_ms: float) -> None:
        frame = self.clock.frame(self.frames_emitted, time_ms, self.rng)
        self.frames_emitted += 1
        self.on_frame(frame)
        self._capture_at(time_ms + self.clock.interval_ms)
