"""Synthetic 3D video frames.

A frame is one capture instant of one camera's depth+color stream.  Frame
sizes follow the paper's numbers: at 15 fps a 5-10 Mbps compressed stream
yields roughly 40-80 KB per frame; we model size variation around that
mean (compression efficiency varies with motion).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.session.streams import StreamId
from repro.util.rng import RngStream

#: The capture rate used throughout the paper's arithmetic.
DEFAULT_FPS = 15.0


@dataclass(frozen=True)
class Frame3D:
    """One captured 3D frame."""

    stream_id: StreamId
    sequence: int
    capture_time_ms: float
    size_bytes: int

    def __post_init__(self) -> None:
        if self.sequence < 0:
            raise ConfigurationError(f"negative sequence {self.sequence}")
        if self.size_bytes <= 0:
            raise ConfigurationError(f"non-positive frame size {self.size_bytes}")


@dataclass
class FrameClock:
    """Deterministic frame-size/cadence model for one stream."""

    stream_id: StreamId
    bandwidth_mbps: float = 7.5
    fps: float = DEFAULT_FPS
    size_jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive, got {self.bandwidth_mbps}"
            )
        if self.fps <= 0:
            raise ConfigurationError(f"fps must be positive, got {self.fps}")
        if not 0.0 <= self.size_jitter < 1.0:
            raise ConfigurationError(
                f"size_jitter must be in [0, 1), got {self.size_jitter}"
            )

    @property
    def interval_ms(self) -> float:
        """Milliseconds between consecutive captures."""
        return 1000.0 / self.fps

    @property
    def mean_frame_bytes(self) -> int:
        """Average frame size implied by bandwidth and fps."""
        return max(1, int(self.bandwidth_mbps * 1e6 / 8.0 / self.fps))

    def sample_size_bytes(self, rng: RngStream) -> int:
        """Draw one frame's jittered size (exactly one uniform draw).

        Both data planes consume these draws — the event-driven plane
        via :meth:`frame`, the analytic fast plane via
        :meth:`sample_sizes` — so a shared camera RNG stream yields
        bit-identical size sequences.
        """
        low = 1.0 - self.size_jitter
        high = 1.0 + self.size_jitter
        return max(1, int(self.mean_frame_bytes * rng.uniform(low, high)))

    def sample_sizes(self, rng: RngStream, count: int) -> list[int]:
        """Draw ``count`` frame sizes — the batch form of
        :meth:`sample_size_bytes`, same draws in the same order, with
        the per-frame attribute lookups hoisted out of the loop."""
        mean = self.mean_frame_bytes
        low = 1.0 - self.size_jitter
        high = 1.0 + self.size_jitter
        uniform = rng.uniform
        return [max(1, int(mean * uniform(low, high))) for _ in range(count)]

    def capture_times(self, duration_ms: float) -> list[float]:
        """Capture instants over ``duration_ms``, replicating
        :class:`~repro.media.source.CameraSource`'s cadence exactly:
        the repeated float add *is* the schedule the simulator runs, so
        analytic planes built on these times stay bit-identical to the
        event-driven plane."""
        interval = self.interval_ms
        times: list[float] = []
        t = 0.0
        while t <= duration_ms:
            times.append(t)
            t += interval
        return times

    def frame(self, sequence: int, capture_time_ms: float, rng: RngStream) -> Frame3D:
        """Materialize the ``sequence``-th frame with jittered size."""
        return Frame3D(
            stream_id=self.stream_id,
            sequence=sequence,
            capture_time_ms=capture_time_ms,
            size_bytes=self.sample_size_bytes(rng),
        )
