"""Subscription workload generation (Sec. 5.1 of the paper).

A *workload* says which site subscribes to which remote streams — the
input the membership server feeds to overlay construction.  The paper
evaluates two statistical families:

* **Zipf-distributed** stream popularity (front cameras most popular);
* **random** (uniform) popularity, for surveillance-style applications.

Both are realized here through a display-driven model: each site has a
fixed display array and every display subscribes to an FOV-sized set of
remote streams drawn from the popularity distribution; the site-level
subscription is the union.  Two hundred samples are generated per setting
to enumerate possible subscriptions, as in the paper.
"""

from repro.workload.spec import SubscriptionWorkload, WorkloadSpec
from repro.workload.zipf import ZipfPopularity
from repro.workload.uniform import UniformPopularity
from repro.workload.generator import WorkloadGenerator
from repro.workload.traces import workload_from_dict, workload_to_dict

__all__ = [
    "SubscriptionWorkload",
    "WorkloadSpec",
    "ZipfPopularity",
    "UniformPopularity",
    "WorkloadGenerator",
    "workload_from_dict",
    "workload_to_dict",
]
