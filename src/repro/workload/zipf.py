"""Zipf-like stream popularity (Sec. 5.1).

The paper cites measurements that multimedia stream popularity follows a
Zipf-like law and argues it is intuitive for 3DTI: the front cameras that
capture people's faces are subscribed by most sites.  We therefore rank
streams by their *local camera index* — camera 0 is the front camera of
every site — and weight stream ``s_j^q`` proportional to
``1 / (q + 1) ** exponent``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.session.streams import StreamId


@dataclass
class ZipfPopularity:
    """Zipf weights over streams, ranked by local camera index."""

    exponent: float = 1.0
    name: str = "zipf"

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ConfigurationError(
                f"zipf exponent must be positive, got {self.exponent}"
            )

    def weights(self, streams: Sequence[StreamId]) -> list[float]:
        """One positive weight per stream, aligned with ``streams``."""
        return [1.0 / float(s.index + 1) ** self.exponent for s in streams]
