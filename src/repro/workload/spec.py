"""Workload data model: who subscribes to what.

:class:`SubscriptionWorkload` is the global subscription state the
centralized membership server aggregates (Sec. 3.2): for every site
``i``, the set of remote streams subscribed by at least one local
display.  From it derive the paper's ``u_{i->j}`` matrix (number of
streams of site ``j`` requested by site ``i``) and the multicast groups
``G(s)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import SubscriptionError
from repro.session.streams import StreamId


@dataclass
class WorkloadSpec:
    """Parameters of the display-driven workload model.

    Attributes
    ----------
    displays_per_site:
        Number of displays whose FOVs are drawn independently.
    fov_size:
        Streams per display FOV ("a large fraction of the other
        participants from a wide field of view").
    popularity:
        Name of the popularity family (``zipf`` or ``uniform``) — set by
        the generator, recorded for reporting.
    """

    displays_per_site: int = 4
    fov_size: int = 8
    popularity: str = "uniform"

    def __post_init__(self) -> None:
        if self.displays_per_site < 1:
            raise SubscriptionError(
                f"displays_per_site must be >= 1, got {self.displays_per_site}"
            )
        if self.fov_size < 1:
            raise SubscriptionError(f"fov_size must be >= 1, got {self.fov_size}")


@dataclass
class SubscriptionWorkload:
    """The aggregated global subscription state for one sample.

    Attributes
    ----------
    n_sites:
        Number of sites N.
    subscriptions:
        Per-site sorted tuple of subscribed remote streams.
    """

    n_sites: int
    subscriptions: dict[int, tuple[StreamId, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_sites < 1:
            raise SubscriptionError(f"n_sites must be >= 1, got {self.n_sites}")
        normalized: dict[int, tuple[StreamId, ...]] = {}
        for site, streams in self.subscriptions.items():
            if not 0 <= site < self.n_sites:
                raise SubscriptionError(f"subscriber site {site} out of range")
            unique = sorted(set(streams))
            for stream in unique:
                if stream.site == site:
                    raise SubscriptionError(
                        f"site {site} subscribes to its own stream {stream}"
                    )
                if not 0 <= stream.site < self.n_sites:
                    raise SubscriptionError(
                        f"stream {stream} originates outside the session"
                    )
            normalized[site] = tuple(unique)
        self.subscriptions = normalized

    @classmethod
    def from_site_sets(
        cls, n_sites: int, site_sets: Mapping[int, Iterable[StreamId]]
    ) -> "SubscriptionWorkload":
        """Build from per-site iterables of stream ids."""
        return cls(
            n_sites=n_sites,
            subscriptions={site: tuple(streams) for site, streams in site_sets.items()},
        )

    # -- derived views -----------------------------------------------------------

    def streams_of(self, site: int) -> tuple[StreamId, ...]:
        """Streams subscribed by ``site`` (possibly empty)."""
        return self.subscriptions.get(site, ())

    def total_requests(self) -> int:
        """Total number of (site, stream) subscription requests."""
        return sum(len(streams) for streams in self.subscriptions.values())

    def u_matrix(self) -> dict[int, dict[int, int]]:
        """The paper's ``u_{i->j}``: per (subscriber, source) request counts.

        Only non-zero entries are present.
        """
        u: dict[int, dict[int, int]] = {}
        for site, streams in self.subscriptions.items():
            row: dict[int, int] = {}
            for stream in streams:
                row[stream.site] = row.get(stream.site, 0) + 1
            if row:
                u[site] = row
        return u

    def groups(self) -> dict[StreamId, frozenset[int]]:
        """Multicast groups ``G(s)``: stream -> set of requesting sites.

        Streams nobody subscribes to do not appear (no tree is needed).
        """
        groups: dict[StreamId, set[int]] = {}
        for site, streams in self.subscriptions.items():
            for stream in streams:
                groups.setdefault(stream, set()).add(site)
        return {stream: frozenset(sites) for stream, sites in groups.items()}

    def requests(self) -> list[tuple[int, StreamId]]:
        """Flat, deterministic list of (subscriber, stream) pairs."""
        out: list[tuple[int, StreamId]] = []
        for site in sorted(self.subscriptions):
            for stream in self.subscriptions[site]:
                out.append((site, stream))
        return out

    def __str__(self) -> str:
        return (
            f"SubscriptionWorkload(N={self.n_sites}, "
            f"requests={self.total_requests()}, groups={len(self.groups())})"
        )
