"""Workload sampling: displays draw FOV-sized stream sets by popularity.

The model that generates one workload sample:

1. for every site ``i``, each of its ``displays_per_site`` displays
   independently draws ``fov_size`` *distinct* remote streams, weighted
   by the popularity family (Zipf or uniform);
2. the site-level subscription is the union over its displays — this is
   exactly the RP aggregation step of Sec. 3.2 ("each RP requests only
   those streams that are subscribed by at least one of its local
   displays").

This display-union construction produces the paper's qualitative load
curve: as N grows the pool of remote streams grows, display draws overlap
less, and the per-site subscription grows sub-linearly while per-site
resources stay constant — hence rejection ratios that rise with N.
Under Zipf, draws concentrate on popular (front-camera) streams, which
both shrinks the union and concentrates load on those streams' sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Protocol, Sequence

from repro.errors import ConfigurationError
from repro.session.session import TISession
from repro.session.streams import StreamId
from repro.util.rng import RngStream
from repro.workload.spec import SubscriptionWorkload, WorkloadSpec


class PopularityModel(Protocol):
    """Strategy giving sampling weights to candidate streams."""

    name: str

    def weights(self, streams: Sequence[StreamId]) -> list[float]:
        """One positive weight per stream."""
        ...


@dataclass
class WorkloadGenerator:
    """Draws :class:`SubscriptionWorkload` samples for a session."""

    session: TISession
    popularity: PopularityModel
    spec: WorkloadSpec = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.spec is None:
            self.spec = WorkloadSpec(popularity=self.popularity.name)
        else:
            self.spec = WorkloadSpec(
                displays_per_site=self.spec.displays_per_site,
                fov_size=self.spec.fov_size,
                popularity=self.popularity.name,
            )

    def generate(self, rng: RngStream) -> SubscriptionWorkload:
        """Draw one workload sample."""
        site_sets: dict[int, set[StreamId]] = {}
        for site in self.session.sites:
            remote = self._remote_streams(site.index)
            if not remote:
                continue
            union: set[StreamId] = set()
            for _ in range(self.spec.displays_per_site):
                union.update(self._draw_fov(remote, rng))
            site_sets[site.index] = union
        return SubscriptionWorkload.from_site_sets(self.session.n_sites, site_sets)

    def samples(self, count: int, rng: RngStream) -> Iterator[SubscriptionWorkload]:
        """Yield ``count`` independent samples (the paper uses 200)."""
        if count < 1:
            raise ConfigurationError(f"sample count must be >= 1, got {count}")
        for index in range(count):
            yield self.generate(rng.spawn(f"sample-{index}"))

    # -- internals ---------------------------------------------------------------

    def _remote_streams(self, subscriber: int) -> list[StreamId]:
        """All streams published by sites other than ``subscriber``."""
        out: list[StreamId] = []
        for site in self.session.sites:
            if site.index != subscriber:
                out.extend(site.stream_ids)
        return out

    def _draw_fov(self, candidates: list[StreamId], rng: RngStream) -> list[StreamId]:
        """Sample one display's FOV: distinct streams, popularity-weighted.

        Weighted sampling without replacement via sequential draws; if the
        FOV budget exceeds the candidate pool, the whole pool is taken.
        """
        k = min(self.spec.fov_size, len(candidates))
        pool = list(candidates)
        weights = self.popularity.weights(pool)
        chosen: list[StreamId] = []
        for _ in range(k):
            pick = rng.weighted_choice(range(len(pool)), weights)
            chosen.append(pool[pick])
            pool.pop(pick)
            weights.pop(pick)
        return chosen
