"""Uniform (random) stream popularity (Sec. 5.1).

The randomized workload accounts for 3DTI applications where streams
have similar popularity, such as surveillance and group collaboration:
every candidate stream is equally likely to be subscribed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.session.streams import StreamId


@dataclass
class UniformPopularity:
    """Equal weights over streams."""

    name: str = "uniform"

    def weights(self, streams: Sequence[StreamId]) -> list[float]:
        """A weight of 1.0 for every stream."""
        return [1.0 for _ in streams]
