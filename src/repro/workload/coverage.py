"""Stream-centric ("coverage") workload: every stream has subscribers.

Sec. 5.1 states the number of streams each site *has to send* — i.e.
every published stream is subscribed by at least one other site (it is
in somebody's field of view).  The natural sampling model is therefore
stream-centric: for every stream, draw the *set of subscribing sites*
(its multicast group), with group sizes governed by stream popularity:

* **random** workload — every stream is equally popular: each remote
  site joins a stream's group independently with probability
  ``interest``, plus one guaranteed subscriber;
* **Zipf** workload — the join probability of stream ``s_j^q`` scales
  with ``1/(q+1)**exponent`` (front cameras are in most FOVs), rescaled
  so the *mean* interest matches ``interest``; one subscriber is again
  guaranteed.

Per-site inbound demand is then ``streams_per_site * (1 + interest *
(N-2))``-ish, which crosses the inbound budget as N grows — producing
the paper's rising rejection curves — while every source must ship all
its streams, making source outbound capacity the contended resource
(the regime in which tree ordering and reservations matter).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.session.session import TISession
from repro.session.streams import StreamId
from repro.util.rng import RngStream
from repro.workload.spec import SubscriptionWorkload


@dataclass
class CoverageWorkloadModel:
    """Stream-centric subscription sampler.

    Parameters
    ----------
    interest:
        Mean probability that a given remote site subscribes to a given
        stream (beyond the guaranteed first subscriber).
    popularity:
        ``"uniform"`` for equal per-stream interest, ``"zipf"`` for
        rank-skewed interest by local camera index.
    zipf_exponent:
        Skew of the Zipf family (ignored for uniform).
    focus_skew:
        Site-level FOV skew.  A user's field of view centres on one or
        two remote participants and covers the rest peripherally, so a
        subscriber's interest in the *sites* is itself skewed: each
        subscriber ranks the remote sites randomly and weights site
        interest by ``1/rank**focus_skew`` (normalized to mean 1).
        0 disables the skew (all remote sites equally interesting).
        The skew widens the spread of ``u_{i->j}``, which is what gives
        the criticality mechanism of CO-RJ (Sec. 4.4) its headroom.
    guarantee_coverage:
        When True (default), every stream gets at least one subscriber
        ("the number of streams each site has to send", Sec. 5.1); when
        False, unpopular streams may go unsubscribed (used by the
        Fig. 10 utilization study, where the paper's ~25 % relay share
        implies spare outbound capacity at the sources).
    """

    interest: float = 0.08
    popularity: str = "uniform"
    zipf_exponent: float = 1.0
    focus_skew: float = 0.0
    guarantee_coverage: bool = True
    #: When set, overrides ``interest`` with ``mean_subscribers/(N-1)``
    #: at generation time, holding the expected number of subscribers
    #: *per stream* constant as the session grows (each stream
    #: contributes to a bounded number of FOVs regardless of session
    #: size).  This is the Fig. 10 calibration: it keeps per-site
    #: demand ≈ ``streams_per_site * mean_subscribers`` (full outbound
    #: utilization) and stream coverage ≈ ``1 - exp(-mean_subscribers)``
    #: (spare source capacity for relaying) at every N.
    mean_subscribers: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.interest <= 1.0:
            raise ConfigurationError(
                f"interest must be in [0, 1], got {self.interest}"
            )
        if self.popularity not in ("uniform", "zipf"):
            raise ConfigurationError(
                f"popularity must be 'uniform' or 'zipf', got {self.popularity!r}"
            )
        if self.zipf_exponent <= 0:
            raise ConfigurationError(
                f"zipf_exponent must be positive, got {self.zipf_exponent}"
            )
        if self.focus_skew < 0:
            raise ConfigurationError(
                f"focus_skew must be non-negative, got {self.focus_skew}"
            )
        if self.mean_subscribers is not None and self.mean_subscribers <= 0:
            raise ConfigurationError(
                f"mean_subscribers must be positive, got {self.mean_subscribers}"
            )

    def generate(self, session: TISession, rng: RngStream) -> SubscriptionWorkload:
        """Draw one workload: a subscriber set for every published stream."""
        n = session.n_sites
        if n < 2:
            raise ConfigurationError("coverage workload needs at least 2 sites")
        focus = self._focus_weights(n, rng)
        base_interest = self.interest
        if self.mean_subscribers is not None:
            base_interest = min(1.0, self.mean_subscribers / (n - 1))
        site_sets: dict[int, set[StreamId]] = {i: set() for i in range(n)}
        for site in session.sites:
            probabilities = self._join_probabilities(
                len(site.cameras), base_interest
            )
            others = [i for i in range(n) if i != site.index]
            for stream_id, probability in zip(site.stream_ids, probabilities):
                members = [
                    other
                    for other in others
                    if rng.random() < probability * focus[other][site.index]
                ]
                if not members and self.guarantee_coverage:
                    members = [rng.choice(others)]
                for member in members:
                    site_sets[member].add(stream_id)
        return SubscriptionWorkload.from_site_sets(n, site_sets)

    def _focus_weights(self, n: int, rng: RngStream) -> list[dict[int, float]]:
        """Per-subscriber site-interest multipliers (mean 1 per subscriber)."""
        weights: list[dict[int, float]] = []
        for subscriber in range(n):
            others = [j for j in range(n) if j != subscriber]
            if self.focus_skew == 0.0 or not others:
                weights.append({j: 1.0 for j in others})
                continue
            order = rng.shuffled(others)
            raw = {
                j: 1.0 / float(rank + 1) ** self.focus_skew
                for rank, j in enumerate(order)
            }
            mean = sum(raw.values()) / len(raw)
            weights.append({j: raw[j] / mean for j in others})
        return weights

    def _join_probabilities(
        self, n_streams: int, base_interest: float
    ) -> list[float]:
        """Per-stream join probability, mean-calibrated to ``base_interest``."""
        if n_streams < 1:
            return []
        if self.popularity == "uniform":
            return [base_interest] * n_streams
        weights = [
            1.0 / float(q + 1) ** self.zipf_exponent for q in range(n_streams)
        ]
        mean_weight = sum(weights) / n_streams
        scale = base_interest / mean_weight if mean_weight > 0 else 0.0
        return [min(1.0, w * scale) for w in weights]
