"""Workload trace serialization (record / replay).

The paper's future work calls for collecting user subscription traces.
This module gives workloads a stable JSON-able representation so samples
can be archived, shared, and replayed bit-for-bit across machines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.errors import SubscriptionError
from repro.session.streams import StreamId
from repro.workload.spec import SubscriptionWorkload

_FORMAT_VERSION = 1


def workload_to_dict(workload: SubscriptionWorkload) -> dict:
    """Encode a workload as a plain JSON-able dictionary."""
    return {
        "version": _FORMAT_VERSION,
        "n_sites": workload.n_sites,
        "subscriptions": {
            str(site): [[s.site, s.index] for s in streams]
            for site, streams in sorted(workload.subscriptions.items())
        },
    }


def workload_from_dict(data: dict) -> SubscriptionWorkload:
    """Decode a workload produced by :func:`workload_to_dict`."""
    try:
        version = data["version"]
        if version != _FORMAT_VERSION:
            raise SubscriptionError(f"unsupported trace version {version}")
        n_sites = int(data["n_sites"])
        subscriptions = {
            int(site): tuple(StreamId(int(s), int(q)) for s, q in streams)
            for site, streams in data["subscriptions"].items()
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise SubscriptionError(f"malformed workload trace: {exc}") from exc
    return SubscriptionWorkload(n_sites=n_sites, subscriptions=subscriptions)


def save_traces(path: str | Path, workloads: Iterable[SubscriptionWorkload]) -> int:
    """Write workload samples to a JSON-lines file; returns the count."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        for workload in workloads:
            fh.write(json.dumps(workload_to_dict(workload)) + "\n")
            count += 1
    return count


def load_traces(path: str | Path) -> list[SubscriptionWorkload]:
    """Read workload samples from a JSON-lines file."""
    path = Path(path)
    workloads: list[SubscriptionWorkload] = []
    with path.open("r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SubscriptionError(
                    f"{path}:{line_no}: invalid JSON: {exc}"
                ) from exc
            workloads.append(workload_from_dict(data))
    return workloads
