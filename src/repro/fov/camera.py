"""Camera-array geometry: rings of inward-facing 3D cameras.

Real 3DTI sites (e.g. TEEVE) surround the capture stage with cameras at
various angles (Fig. 4 of the paper numbers them 1..8 around the
subject).  :func:`camera_ring` reproduces that layout: ``n`` cameras
equally spaced on a circle, all aimed at the stage centre.
"""

from __future__ import annotations

import math

from repro.fov.geometry import ORIGIN, Pose, Vec3


def camera_ring(
    n_cameras: int,
    radius: float = 3.0,
    height: float = 1.5,
    center: Vec3 = ORIGIN,
    phase_deg: float = 0.0,
) -> list[Pose]:
    """Place ``n_cameras`` inward-facing cameras on a ring.

    Parameters
    ----------
    n_cameras:
        Number of cameras (>= 1).
    radius:
        Ring radius in metres.
    height:
        Camera height above the stage plane.
    center:
        Stage centre the cameras aim at.
    phase_deg:
        Rotation offset of camera 0, in degrees (0 = +x axis, which we
        treat as the "front" of the subject).
    """
    if n_cameras < 1:
        raise ValueError(f"n_cameras must be >= 1, got {n_cameras}")
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    poses = []
    for k in range(n_cameras):
        theta = math.radians(phase_deg) + 2.0 * math.pi * k / n_cameras
        position = Vec3(
            center.x + radius * math.cos(theta),
            center.y + radius * math.sin(theta),
            center.z + height,
        )
        subject = Vec3(center.x, center.y, center.z + height * 0.7)
        poses.append(Pose.look_at(position, subject))
    return poses
