"""ViewCast-style FOV-to-streams selection.

This is functionality (2) required of the subscription framework in
Sec. 3.2: convert a specified FOV into the concrete subset of streams
contributing to it.  The selector ranks every candidate remote stream by
:func:`repro.fov.contribution.contribution_score` and keeps the top ``k``
whose score clears a floor — the "set of most correlated streams with
respect to this viewpoint" of the ViewCast footnote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import SubscriptionError
from repro.fov.contribution import rank_streams
from repro.fov.geometry import Pose
from repro.fov.viewpoint import FieldOfView
from repro.session.streams import StreamId


@dataclass
class ViewCastSelector:
    """Maps FOVs to subscription sets over a camera-pose catalogue.

    Parameters
    ----------
    camera_poses:
        Catalogue of every published stream's camera pose, keyed by
        stream id.  Poses of different sites are expected to be expressed
        in that site's stage-local coordinates together with the FOV.
    max_streams:
        The ``k`` in top-k selection (the display's rendering budget —
        the paper measured ~10 ms render cost per stream, which bounds
        how many streams one display can usefully subscribe to).
    min_score:
        Streams scoring at or below this floor never enter the
        subscription, even if the budget is not filled.
    """

    camera_poses: Mapping[StreamId, Pose]
    max_streams: int = 4
    min_score: float = 0.0

    def __post_init__(self) -> None:
        if self.max_streams < 1:
            raise SubscriptionError(
                f"max_streams must be >= 1, got {self.max_streams}"
            )
        if self.min_score < 0.0:
            raise SubscriptionError(
                f"min_score must be non-negative, got {self.min_score}"
            )

    def select(
        self,
        fov: FieldOfView,
        candidates: Sequence[StreamId] | None = None,
    ) -> list[StreamId]:
        """Return the top-k contributing streams for ``fov``.

        Parameters
        ----------
        fov:
            The user's preferred field of view.
        candidates:
            Restrict selection to these streams (e.g. only streams of the
            site being looked at); defaults to the whole catalogue.
        """
        if candidates is None:
            pool = list(self.camera_poses)
        else:
            pool = list(candidates)
            for stream_id in pool:
                if stream_id not in self.camera_poses:
                    raise SubscriptionError(f"unknown stream {stream_id}")
        pairs = [(stream_id, self.camera_poses[stream_id]) for stream_id in pool]
        ranked = rank_streams(fov, pairs)
        selected = [
            stream_id
            for stream_id, score in ranked[: self.max_streams]
            if score > self.min_score
        ]
        return selected
