"""Minimal 3D vector/pose math for the FOV subscription model.

Deliberately dependency-free (no numpy): the FOV pipeline runs on a few
dozen cameras per site, and plain tuples keep the objects hashable and
cheap to construct inside property-based tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Vec3:
    """An immutable 3-vector."""

    x: float
    y: float
    z: float

    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, scalar: float) -> "Vec3":
        return Vec3(self.x * scalar, self.y * scalar, self.z * scalar)

    __rmul__ = __mul__

    def dot(self, other: "Vec3") -> float:
        """Inner product."""
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vec3") -> "Vec3":
        """Cross product."""
        return Vec3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def norm(self) -> float:
        """Euclidean length."""
        return math.sqrt(self.dot(self))

    def normalized(self) -> "Vec3":
        """Unit vector in the same direction; raises on the zero vector."""
        n = self.norm()
        if n == 0.0:
            raise ValueError("cannot normalize the zero vector")
        return Vec3(self.x / n, self.y / n, self.z / n)

    def distance_to(self, other: "Vec3") -> float:
        """Euclidean distance to another point."""
        return (self - other).norm()


ORIGIN = Vec3(0.0, 0.0, 0.0)
UP = Vec3(0.0, 0.0, 1.0)


def angle_between_deg(a: Vec3, b: Vec3) -> float:
    """Angle between two direction vectors, in degrees (0..180)."""
    na, nb = a.norm(), b.norm()
    if na == 0.0 or nb == 0.0:
        raise ValueError("angle undefined for zero vector")
    cosine = max(-1.0, min(1.0, a.dot(b) / (na * nb)))
    return math.degrees(math.acos(cosine))


@dataclass(frozen=True)
class Pose:
    """Position plus viewing direction (the direction is normalized)."""

    position: Vec3
    direction: Vec3

    def __post_init__(self) -> None:
        if self.direction.norm() == 0.0:
            raise ValueError("pose direction must be non-zero")
        object.__setattr__(self, "direction", self.direction.normalized())

    def looking_at(self, target: Vec3) -> "Pose":
        """A pose at the same position re-aimed at ``target``."""
        return Pose(self.position, target - self.position)

    @staticmethod
    def look_at(position: Vec3, target: Vec3) -> "Pose":
        """Construct a pose at ``position`` looking toward ``target``."""
        return Pose(position, target - position)
