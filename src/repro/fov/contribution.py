"""Stream-to-FOV contribution scoring.

Figure 4 of the paper shows an FOV in the cyber-space for which the
streams from cameras 1, 2, 7, 8 are "the four most contributing": the
cameras on the viewer's side of the subject.  A camera captures the
surface the viewer sees when it films the subject from the same side
the virtual eye looks from — i.e. when its viewing direction is
*aligned* with the user's view direction.  We score each camera by that
alignment angle, attenuated when the camera lies outside the FOV cone.

The absolute numbers are a modelling choice (the paper delegates scoring
to a subscription framework such as ViewCast); what matters downstream is
the *ranking*, which this model reproduces: front-facing cameras rank
first, profile cameras next, rear cameras last.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.fov.geometry import Pose, angle_between_deg
from repro.fov.viewpoint import FieldOfView
from repro.session.streams import StreamId


def contribution_score(fov: FieldOfView, camera: Pose) -> float:
    """Score one camera's contribution to ``fov`` in [0, 1].

    The score is the product of two factors:

    * **facing** — how well the camera's viewing direction aligns with
      the user's view direction (1 when the camera films the subject
      from exactly the viewer's side, 0 when it sees only the far
      side of the subject);
    * **in-cone** — a smooth attenuation by the angular distance of the
      camera position from the FOV axis, which becomes 0 outside the
      cone's ``half_angle_deg``.
    """
    view_dir = fov.view_direction
    # Alignment angle: 0 deg when the camera looks along the view axis,
    # i.e. it films the subject surface the viewer sees.
    alignment = angle_between_deg(camera.direction, view_dir)
    facing = max(0.0, math.cos(math.radians(alignment)))

    to_camera = camera.position - fov.eye
    if to_camera.norm() == 0.0:
        off_axis = 0.0
    else:
        off_axis = angle_between_deg(to_camera, view_dir)
    if off_axis >= fov.half_angle_deg:
        in_cone = 0.0
    else:
        in_cone = math.cos(math.radians(90.0 * off_axis / fov.half_angle_deg))
    return facing * in_cone


def rank_streams(
    fov: FieldOfView,
    cameras: Sequence[tuple[StreamId, Pose]],
) -> list[tuple[StreamId, float]]:
    """Rank ``(stream, pose)`` pairs by descending contribution to ``fov``.

    Ties break by stream id so the ranking is deterministic.
    """
    scored = [
        (stream_id, contribution_score(fov, pose)) for stream_id, pose in cameras
    ]
    scored.sort(key=lambda item: (-item[1], item[0]))
    return scored
