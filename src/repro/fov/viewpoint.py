"""Field-of-view specification.

The paper lets a user configure a preferred FOV per display as either a
rendering viewpoint of the cyber-space or an explicit subset of streams.
:class:`FieldOfView` models the viewpoint form: an eye position, a
look-at target (typically a remote participant's stage) and an angular
extent.  The explicit-subset form is handled directly by the workload
layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fov.geometry import Pose, Vec3


@dataclass(frozen=True)
class FieldOfView:
    """A rendering viewpoint with an angular extent.

    Attributes
    ----------
    eye:
        The virtual camera (user's viewpoint) position in the cyber-space.
    target:
        The point being looked at (usually a remote subject's centre).
    half_angle_deg:
        Half of the angular extent of the view cone; streams whose
        capture direction lies far outside this cone contribute little.
    """

    eye: Vec3
    target: Vec3
    half_angle_deg: float = 60.0

    def __post_init__(self) -> None:
        if not 0.0 < self.half_angle_deg <= 180.0:
            raise ValueError(
                f"half_angle_deg must be in (0, 180], got {self.half_angle_deg}"
            )
        if self.eye == self.target:
            raise ValueError("eye and target must differ")

    @property
    def pose(self) -> Pose:
        """The viewpoint as a pose (position + direction)."""
        return Pose.look_at(self.eye, self.target)

    @property
    def view_direction(self) -> Vec3:
        """Unit vector from the eye toward the target."""
        return self.pose.direction
