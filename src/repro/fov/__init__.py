"""FOV-based subscription framework (the ViewCast-like substrate).

The paper (Sec. 3.2) requires a subscription framework with two key
functionalities: (1) let a participant specify a preferred field of view
(FOV) in the cyber-space, and (2) convert that FOV into the concrete
subset of streams contributing to it (Fig. 4).  This package implements
both on a simple geometric model:

* cameras sit on a ring around each site's capture stage, each with a
  pose (position + viewing direction);
* an FOV is an eye point, a look-at target and an angular extent;
* a stream's *contribution* to an FOV scores how much of the subject the
  camera sees from the FOV's side (front-facing cameras score highest,
  matching the paper's observation that front cameras are the most
  popular);
* :class:`repro.fov.viewcast.ViewCastSelector` ranks streams by
  contribution and emits the top-k subscription set.
"""

from repro.fov.geometry import Pose, Vec3, angle_between_deg
from repro.fov.camera import camera_ring
from repro.fov.viewpoint import FieldOfView
from repro.fov.contribution import contribution_score, rank_streams
from repro.fov.viewcast import ViewCastSelector

__all__ = [
    "Pose",
    "Vec3",
    "angle_between_deg",
    "camera_ring",
    "FieldOfView",
    "contribution_score",
    "rank_streams",
    "ViewCastSelector",
]
