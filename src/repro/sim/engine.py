"""A small deterministic discrete-event engine.

Events are (time, tie-break sequence) ordered in a binary heap; equal
timestamps execute in scheduling order, so runs are reproducible
regardless of callback content.  The engine is deliberately synchronous
and single-threaded — 3DTI sessions are small, and determinism is worth
more than parallelism for reproduction work.

Besides one-shot scheduling, the engine offers :class:`Timer` — a
cancellable, optionally recurring handle.  The event-driven control
plane schedules its debounce windows (one-shot form) and its heartbeat
beats and failure-detector sweeps (recurring form) through it; the
retransmit machinery leans on cancellation to stop a backoff chain the
moment its ack lands.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SimulationError


class Timer:
    """A cancellable (optionally recurring) scheduled callback.

    Obtained from :meth:`Simulator.schedule_timer`.  Cancellation is
    lazy: the queued event stays in the heap and becomes a no-op when it
    pops, which keeps the heap free of tombstone bookkeeping while still
    guaranteeing the callback never runs after :meth:`cancel`.
    Recurring timers re-arm themselves after each firing until
    cancelled (including from inside their own callback).
    """

    __slots__ = ("_sim", "_callback", "interval_ms", "_cancelled", "fired")

    def __init__(
        self,
        sim: "Simulator",
        callback: Callable[[], None],
        interval_ms: float | None = None,
    ) -> None:
        self._sim = sim
        self._callback = callback
        self.interval_ms = interval_ms
        self._cancelled = False
        #: Number of times the callback has actually run.
        self.fired = 0

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent any further firing (idempotent)."""
        self._cancelled = True

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fired += 1
        self._callback()
        if self.interval_ms is not None and not self._cancelled:
            self._sim.schedule_in(self.interval_ms, self._fire)


class Simulator:
    """Event loop with millisecond timestamps."""

    def __init__(self) -> None:
        self._now = 0.0
        self._sequence = 0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def schedule_at(self, time_ms: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time ``time_ms``."""
        if time_ms < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {time_ms} < now {self._now}"
            )
        heapq.heappush(self._queue, (time_ms, self._sequence, callback))
        self._sequence += 1

    def schedule_in(self, delay_ms: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after ``delay_ms`` from now."""
        if delay_ms < 0:
            raise SimulationError(f"negative delay {delay_ms}")
        self.schedule_at(self._now + delay_ms, callback)

    def schedule_timer(
        self,
        delay_ms: float,
        callback: Callable[[], None],
        interval_ms: float | None = None,
    ) -> Timer:
        """Schedule a cancellable callback; returns its :class:`Timer`.

        With ``interval_ms`` the timer recurs every ``interval_ms``
        after the first firing at ``delay_ms`` until cancelled; without
        it the timer is one-shot (but can still be cancelled before it
        fires).
        """
        if interval_ms is not None and interval_ms <= 0:
            raise SimulationError(
                f"recurring interval must be positive, got {interval_ms}"
            )
        timer = Timer(self, callback, interval_ms=interval_ms)
        self.schedule_in(delay_ms, timer._fire)
        return timer

    def run(self, until_ms: float | None = None, max_events: int = 10_000_000) -> int:
        """Drain the queue; returns the number of events executed.

        Parameters
        ----------
        until_ms:
            Stop once the next event lies strictly beyond this time
            (the event stays queued).  None drains everything.
        max_events:
            Runaway guard; exceeding it raises :class:`SimulationError`.
        """
        if self._running:
            raise SimulationError("run() is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                time_ms, _, callback = self._queue[0]
                if until_ms is not None and time_ms > until_ms:
                    break
                heapq.heappop(self._queue)
                self._now = time_ms
                callback()
                executed += 1
                self._processed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
            if until_ms is not None and until_ms > self._now:
                self._now = until_ms
        finally:
            self._running = False
        return executed
