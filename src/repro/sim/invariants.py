"""Runtime invariant auditing for the control plane.

The overlay machinery (ViewCast subscription, node join, multicast
forest growth under per-RP capacity ``m̂`` and latency bound ``B_cost``)
is exactly the kind of code whose bugs only surface under adversarial
sequences of joins, leaves, FOV changes and failures.  The
:class:`InvariantAuditor` hooks a running control plane and, after every
control-plane event, re-derives the structural invariants from first
principles:

* **acyclicity** — every tree member reaches its source by walking
  parent links, without revisiting a node;
* **parent/child symmetry** — the parent map and the children lists of
  each tree describe the same edge set;
* **degree bounds** — per-RP in/out degree across the forest never
  exceeds ``I(v)`` / ``O(v)``, the builder's degree ledger matches a
  recount from the forest edges, and the reservation counter ``m̂``
  equals, per node, the number of *opened* groups it sources whose
  streams have not yet been disseminated (Sec. 4.3.1's accounting);
* **latency bound** — every satisfied subscriber's tree path costs less
  than ``B_cost``;
* **pub-sub ↔ forest consistency** — the directive repeats the forest
  edge-for-edge, every RP's forwarding table and receiving set match the
  directive, streams are delivered only to sites that requested them,
  and every satisfied request is actually receivable at its subscriber.

Every audited event appends a canonical line (event label, forest
fingerprint, violation count) to an internal log; the SHA-256 over that
log is the :attr:`AuditReport.digest`, so two runs of the same scenario
and seed can be compared bit-for-bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.core.base import BuildResult
from repro.core.forest import MulticastTree, OverlayForest
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pubsub.messages import OverlayDirective
    from repro.pubsub.rp import RPAgent


@dataclass(frozen=True)
class Violation:
    """One invariant breach observed during an audit."""

    invariant: str
    detail: str
    event: str = ""
    time_ms: float = 0.0

    def render(self) -> str:
        """One human-readable line."""
        stamp = f"t={self.time_ms:.1f}ms " if self.time_ms else ""
        where = f" [{self.event}]" if self.event else ""
        return f"{stamp}{self.invariant}: {self.detail}{where}"


@dataclass
class AuditReport:
    """Aggregate outcome of one audited run."""

    events_audited: int
    checks_run: int
    violations: list[Violation]
    digest: str

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations

    def summary(self) -> str:
        """Multi-line report suitable for CLI output."""
        lines = [
            f"audit: {self.events_audited} events, {self.checks_run} checks, "
            f"{len(self.violations)} violations",
            f"digest: {self.digest}",
        ]
        for violation in self.violations[:20]:
            lines.append(f"  VIOLATION {violation.render()}")
        if len(self.violations) > 20:
            lines.append(f"  ... and {len(self.violations) - 20} more")
        return "\n".join(lines)


class InvariantAuditor:
    """Re-derives control-plane invariants after every audited event.

    Parameters
    ----------
    strict:
        Raise :class:`~repro.errors.SimulationError` on the first
        violation instead of accumulating it.
    """

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.events_audited = 0
        self.checks_run = 0
        self.violations: list[Violation] = []
        self._log = hashlib.sha256()

    # -- audit entry points -------------------------------------------------------

    def audit_build(
        self, result: BuildResult, event: str = "build", time_ms: float = 0.0
    ) -> list[Violation]:
        """Audit one build result (forest + state, no pub-sub layer)."""
        found: list[Violation] = []
        found.extend(self._check_forest_structure(result.forest))
        found.extend(self._check_degrees(result))
        found.extend(self._check_latency(result))
        found.extend(self._check_accounting(result))
        self._commit(event, time_ms, result.forest, found)
        return found

    def audit_round(
        self,
        result: BuildResult,
        directive: "OverlayDirective",
        rps: Mapping[int, "RPAgent"],
        active: Iterable[int],
        event: str = "round",
        time_ms: float = 0.0,
    ) -> list[Violation]:
        """Audit one full control round: build plus directive installation."""
        found: list[Violation] = []
        found.extend(self._check_forest_structure(result.forest))
        found.extend(self._check_degrees(result))
        found.extend(self._check_latency(result))
        found.extend(self._check_accounting(result))
        found.extend(self._check_membership(result, directive, rps, set(active)))
        self._commit(event, time_ms, result.forest, found)
        return found

    def report(self) -> AuditReport:
        """Finalize and return the aggregate report (auditor stays usable)."""
        return AuditReport(
            events_audited=self.events_audited,
            checks_run=self.checks_run,
            violations=list(self.violations),
            digest=self._log.hexdigest(),
        )

    # -- individual invariants -----------------------------------------------------

    def _check_forest_structure(self, forest: OverlayForest) -> list[Violation]:
        """Acyclicity, reachability and parent/child symmetry per tree."""
        found: list[Violation] = []
        for stream, tree in forest.trees.items():
            self.checks_run += 1
            found.extend(self._check_tree(stream, tree))
        return found

    def _check_tree(self, stream, tree: MulticastTree) -> list[Violation]:
        found: list[Violation] = []
        members = set(tree.members())
        # Parent/child symmetry: both adjacency views carry the same edges.
        parent_edges = {(parent, child) for parent, child in tree.edges()}
        child_edges = {
            (node, child) for node in members for child in tree.children(node)
        }
        for parent, child in parent_edges - child_edges:
            found.append(
                Violation(
                    "parent-child-symmetry",
                    f"edge {parent}->{child} in parent map only, tree {stream}",
                )
            )
        for parent, child in child_edges - parent_edges:
            found.append(
                Violation(
                    "parent-child-symmetry",
                    f"edge {parent}->{child} in children lists only, tree {stream}",
                )
            )
        # Acyclicity + reachability: walk parents from every member.
        for node in members:
            seen: set[int] = set()
            current = node
            while current != tree.source:
                if current in seen:
                    found.append(
                        Violation(
                            "acyclicity",
                            f"cycle through {current} in tree {stream}",
                        )
                    )
                    break
                seen.add(current)
                parent = tree.parent(current)
                if parent is None or parent not in members:
                    found.append(
                        Violation(
                            "acyclicity",
                            f"{node} cannot reach source of tree {stream}",
                        )
                    )
                    break
                current = parent
        return found

    def _check_degrees(self, result: BuildResult) -> list[Violation]:
        """Per-RP capacity bounds and ledger/forest agreement."""
        found: list[Violation] = []
        problem, state, forest = result.problem, result.state, result.forest
        din = {i: 0 for i in range(problem.n_nodes)}
        dout = {i: 0 for i in range(problem.n_nodes)}
        for _, parent, child in forest.edges():
            dout[parent] += 1
            din[child] += 1
        # Reservation accounting: m̂_i must equal the number of opened
        # groups sourced at i whose streams are not yet disseminated.
        expected_m_hat = {i: 0 for i in range(problem.n_nodes)}
        if state.reservations:
            for group in problem.groups:
                tree = forest.trees.get(group.stream)
                disseminated = tree is not None and tree.disseminated
                if state.is_open(group.stream) and not disseminated:
                    expected_m_hat[group.source] += 1
        for node in range(problem.n_nodes):
            self.checks_run += 1
            if din[node] > problem.inbound_limit(node):
                found.append(
                    Violation(
                        "inbound-bound",
                        f"node {node}: din {din[node]} > I "
                        f"{problem.inbound_limit(node)}",
                    )
                )
            if dout[node] > problem.outbound_limit(node):
                found.append(
                    Violation(
                        "outbound-bound",
                        f"node {node}: dout {dout[node]} > O "
                        f"{problem.outbound_limit(node)}",
                    )
                )
            if din[node] != state.din[node] or dout[node] != state.dout[node]:
                found.append(
                    Violation(
                        "degree-ledger",
                        f"node {node}: forest degrees ({din[node]}, "
                        f"{dout[node]}) != ledger ({state.din[node]}, "
                        f"{state.dout[node]})",
                    )
                )
            if not 0 <= state.m_hat[node] <= state.m[node]:
                found.append(
                    Violation(
                        "reservation-range",
                        f"node {node}: m̂ {state.m_hat[node]} outside "
                        f"[0, m={state.m[node]}]",
                    )
                )
            if state.m_hat[node] != expected_m_hat[node]:
                found.append(
                    Violation(
                        "reservation-accounting",
                        f"node {node}: m̂ {state.m_hat[node]} != "
                        f"{expected_m_hat[node]} opened undisseminated "
                        f"sourced groups",
                    )
                )
        return found

    def _check_latency(self, result: BuildResult) -> list[Violation]:
        """Path cost < B_cost for every satisfied subscriber."""
        found: list[Violation] = []
        bound = result.problem.latency_bound_ms
        for request in result.satisfied:
            self.checks_run += 1
            tree = result.forest.trees.get(request.stream)
            if tree is None or request.subscriber not in tree:
                found.append(
                    Violation(
                        "membership",
                        f"satisfied {request} absent from its tree",
                    )
                )
                continue
            cost = tree.cost_from_source(request.subscriber)
            if cost >= bound:
                found.append(
                    Violation(
                        "latency-bound",
                        f"{request}: path {cost:.1f}ms >= B_cost {bound:.1f}ms",
                    )
                )
        return found

    def _check_accounting(self, result: BuildResult) -> list[Violation]:
        """Every request resolved exactly once, none both ways."""
        self.checks_run += 1
        found: list[Violation] = []
        expected = result.problem.total_requests()
        if result.total_requests != expected:
            found.append(
                Violation(
                    "request-accounting",
                    f"{result.total_requests} resolved, {expected} in problem",
                )
            )
        satisfied = set(result.satisfied)
        rejected = {request for request, _ in result.rejected}
        for request in satisfied & rejected:
            found.append(
                Violation(
                    "request-accounting",
                    f"{request} both satisfied and rejected",
                )
            )
        return found

    def _check_membership(
        self,
        result: BuildResult,
        directive: "OverlayDirective",
        rps: Mapping[int, "RPAgent"],
        active: set[int],
    ) -> list[Violation]:
        """Pub-sub membership ↔ forest consistency."""
        found: list[Violation] = []
        forest_edges = set(result.forest.edges())
        directive_edges = set(directive.edges)
        self.checks_run += 1
        for edge in forest_edges - directive_edges:
            found.append(
                Violation("directive-fidelity", f"forest edge {edge} not dictated")
            )
        for edge in directive_edges - forest_edges:
            found.append(
                Violation("directive-fidelity", f"phantom directive edge {edge}")
            )
        # Delivery only to requesters: each receiving site asked for the stream.
        requested = {
            (member, group.stream)
            for group in result.problem.groups
            for member in group.subscribers
        }
        for stream, _, child in directive_edges:
            self.checks_run += 1
            if (child, stream) not in requested:
                found.append(
                    Violation(
                        "membership",
                        f"site {child} receives unrequested stream {stream}",
                    )
                )
        for site in sorted(active):
            rp = rps.get(site)
            if rp is None:
                found.append(
                    Violation("membership", f"active site {site} has no RP agent")
                )
                continue
            self.checks_run += 1
            if rp.epoch != directive.epoch:
                found.append(
                    Violation(
                        "directive-fidelity",
                        f"site {site} at epoch {rp.epoch}, directive "
                        f"{directive.epoch}",
                    )
                )
            expected_table: dict = {}
            for stream, child in directive.edges_of_site(site):
                expected_table.setdefault(stream, []).append(child)
            for stream, children in expected_table.items():
                if sorted(rp.next_hops(stream)) != sorted(children):
                    found.append(
                        Violation(
                            "forwarding-table",
                            f"site {site} forwards {stream} to "
                            f"{rp.next_hops(stream)}, directive says {children}",
                        )
                    )
            expected_receiving = directive.streams_received_by(site)
            if rp.received_streams() != expected_receiving:
                found.append(
                    Violation(
                        "forwarding-table",
                        f"site {site} receiving set diverges from directive",
                    )
                )
        for request in result.satisfied:
            self.checks_run += 1
            rp = rps.get(request.subscriber)
            if rp is not None and not rp.is_receiving(request.stream):
                found.append(
                    Violation(
                        "membership",
                        f"satisfied {request} not receivable at its RP",
                    )
                )
        return found

    # -- log / digest ----------------------------------------------------------------

    def _commit(
        self,
        event: str,
        time_ms: float,
        forest: OverlayForest,
        found: list[Violation],
    ) -> None:
        """Stamp the audited event into the report and the digest log."""
        self.events_audited += 1
        stamped = [
            Violation(v.invariant, v.detail, event=event, time_ms=time_ms)
            for v in found
        ]
        self.violations.extend(stamped)
        fingerprint = ",".join(
            f"{stream}:{parent}>{child}"
            for stream, parent, child in sorted(forest.edges())
        )
        line = (
            f"{time_ms:.3f}|{event}|{fingerprint}|"
            f"sat={len(forest.satisfied)}|rej={len(forest.rejected)}|"
            f"viol={len(stamped)}\n"
        )
        self._log.update(line.encode("utf-8"))
        if self.strict and stamped:
            raise SimulationError(f"invariant violated: {stamped[0].render()}")
