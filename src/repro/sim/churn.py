"""Churn experiments: a site leaves, the overlay is rebuilt.

The paper treats overlay construction as a static problem; sessions are
re-solved by the centralized membership server whenever membership or
subscriptions change.  This module measures the cost of that model: how
much of the surviving overlay is disrupted (parents changed) when one
site departs and the forest is rebuilt from scratch.

:attr:`RebuildReport.disruption_ratio` is the single-departure form of
the metric the live control plane now records every round
(:func:`repro.core.incremental.churn_rate`, surfaced as
``ScenarioReport.mean_disruption``); the rebuild policies of
:mod:`repro.core.incremental` exist precisely to drive this number
toward zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import BuildResult, OverlayBuilder
from repro.core.model import MulticastGroup
from repro.core.problem import ForestProblem
from repro.session.session import TISession
from repro.util.rng import RngStream
from repro.workload.spec import SubscriptionWorkload


@dataclass(frozen=True)
class RebuildReport:
    """Before/after comparison around one site's departure."""

    leaving_site: int
    satisfied_before: int
    satisfied_after: int
    surviving_requests: int
    parent_changes: int
    rejection_ratio_before: float
    rejection_ratio_after: float

    @property
    def disruption_ratio(self) -> float:
        """Fraction of surviving satisfied requests whose parent moved."""
        if self.surviving_requests == 0:
            return 0.0
        return self.parent_changes / self.surviving_requests


def problem_without_site(
    problem: ForestProblem, leaving_site: int
) -> ForestProblem:
    """Derive the post-departure problem: the site publishes, subscribes
    and relays nothing (its degree bounds drop to zero)."""
    groups = []
    for group in problem.groups:
        if group.source == leaving_site:
            continue
        members = group.subscribers - {leaving_site}
        if members:
            groups.append(MulticastGroup(stream=group.stream, subscribers=members))
    inbound = dict(problem.inbound)
    outbound = dict(problem.outbound)
    inbound[leaving_site] = 0
    outbound[leaving_site] = 0
    return ForestProblem(
        n_nodes=problem.n_nodes,
        cost={i: dict(row) for i, row in problem.cost.items()},
        inbound=inbound,
        outbound=outbound,
        groups=groups,
        latency_bound_ms=problem.latency_bound_ms,
    )


def rebuild_after_leave(
    session: TISession,
    workload: SubscriptionWorkload,
    leaving_site: int,
    builder: OverlayBuilder,
    rng: RngStream,
    latency_bound_ms: float = 120.0,
) -> tuple[RebuildReport, BuildResult, BuildResult]:
    """Build, remove ``leaving_site``, rebuild; quantify the disruption."""
    before_problem = ForestProblem.from_workload(
        session, workload, latency_bound_ms
    )
    before = builder.build(before_problem, rng.spawn("before"))
    after_problem = problem_without_site(before_problem, leaving_site)
    after = builder.build(after_problem, rng.spawn("after"))

    before_parents = {
        request: before.forest.trees[request.stream].parent(request.subscriber)
        for request in before.satisfied
    }
    after_parents = {
        request: after.forest.trees[request.stream].parent(request.subscriber)
        for request in after.satisfied
    }
    surviving = [
        request
        for request in before_parents
        if request.subscriber != leaving_site
        and request.source != leaving_site
        and request in after_parents
    ]
    changes = sum(
        1
        for request in surviving
        if before_parents[request] != after_parents[request]
    )
    report = RebuildReport(
        leaving_site=leaving_site,
        satisfied_before=len(before.satisfied),
        satisfied_after=len(after.satisfied),
        surviving_requests=len(surviving),
        parent_changes=changes,
        rejection_ratio_before=(
            len(before.rejected) / before.total_requests
            if before.total_requests
            else 0.0
        ),
        rejection_ratio_after=(
            len(after.rejected) / after.total_requests
            if after.total_requests
            else 0.0
        ),
    )
    return report, before, after
