"""Frame dissemination over a constructed overlay forest.

This is the validation loop the paper's latency bound exists for: every
camera emits frames at 15 fps, the source RP relays each frame down its
stream's multicast tree, and every subscriber records the end-to-end
delivery latency.  With zero jitter the measured latency of every
delivery equals the tree path cost, which the builder guaranteed to be
below ``B_cost`` — the report cross-checks exactly that.

Two implementations share the :class:`DataPlaneReport` contract:

* :class:`ForestDataPlane` — the event-driven simulator: every hop of
  every frame is a scheduled callback.  Required whenever jitter, loss
  or duplication perturb deliveries, and the only plane that models the
  NACK/repair recovery layer (receivers detect sequence gaps, NACK up
  their tree parent, repairs cascade back down the affected subtree).
* :class:`FastDataPlane` — the analytic batched plane: with zero
  jitter/loss the run is fully determined by the capture schedule and
  the per-tree hop costs, so the report is computed with per-tree
  array arithmetic (frames x hop costs) and **no** simulator events.
  It reproduces the event-driven report bit for bit, including the
  floating-point accumulation order.
* :class:`SampledDataPlane` — the sampled-percentile noisy plane:
  per-hop jitter/loss drawn in bulk and convolved along tree paths, so
  noisy sweeps report latency percentiles without the event heap.  It
  models the same noise *distribution* as the event plane (the event
  plane stays the oracle) and degrades to the exact
  :class:`FastDataPlane` arithmetic at zero noise.

:func:`make_dataplane` dispatches between them automatically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.forest import OverlayForest
from repro.errors import SimulationError
from repro.media.frames import Frame3D, FrameClock
from repro.media.source import CameraSource
from repro.session.session import TISession
from repro.session.streams import StreamId
from repro.sim.engine import Simulator, Timer
from repro.sim.network import LatencyNetwork
from repro.util.rng import RngStream
from repro.util.validation import check_non_negative, check_probability

#: Percentiles every latency distribution is summarized at.
LATENCY_QUANTILES = (50, 90, 99)


def latency_percentiles(
    latencies: list[float], quantiles: tuple[int, ...] = LATENCY_QUANTILES
) -> dict[int, float]:
    """Nearest-rank percentiles of a latency sample.

    Nearest-rank (``sorted[ceil(q/100 * n) - 1]``) rather than an
    interpolating estimator: the result is always an observed sample,
    identical across array backends, and has no float blending to
    drift.  Empty input yields an empty dict.
    """
    if not latencies:
        return {}
    ordered = sorted(latencies)
    n = len(ordered)
    return {
        q: ordered[max(1, math.ceil(q / 100.0 * n)) - 1] for q in quantiles
    }


@dataclass
class DeliveryStats:
    """Per (stream, subscriber) delivery accounting."""

    frames: int = 0
    total_latency_ms: float = 0.0
    max_latency_ms: float = 0.0

    def record(self, latency_ms: float) -> None:
        """Accumulate one delivery."""
        self.frames += 1
        self.total_latency_ms += latency_ms
        self.max_latency_ms = max(self.max_latency_ms, latency_ms)

    @property
    def mean_latency_ms(self) -> float:
        """Mean delivery latency (0 when nothing arrived)."""
        if self.frames == 0:
            return 0.0
        return self.total_latency_ms / self.frames


@dataclass
class DataPlaneReport:
    """Aggregated results of one data-plane run."""

    duration_ms: float
    frames_captured: int
    frames_delivered: int
    deliveries: dict[tuple[StreamId, int], DeliveryStats]
    bytes_sent_by_site: dict[int, int]
    latency_bound_ms: float
    # -- data-chaos outcome counters (all zero on deterministic runs,
    #    so zero-noise reports stay field-identical across planes) ----
    #: Network messages dropped by the loss model (frames + NACKs + repairs).
    sends_dropped: int = 0
    #: Arrivals discarded as already-seen (duplication + repair-cascade overlap).
    duplicates_discarded: int = 0
    #: Gap-repair requests sent up tree parents (includes retries).
    nacks_sent: int = 0
    #: Buffered frames retransmitted in answer to a NACK.
    repairs_sent: int = 0
    #: Missing (receiver, frame) instances recovered via NACK/repair.
    frames_recovered: int = 0
    #: Missing instances abandoned (retries or repair deadline exhausted).
    frames_unrecovered: int = 0
    #: Nearest-rank delivery-latency percentiles (``{50: ..., 90: ...,
    #: 99: ...}``); filled by the sampled plane always, by the event
    #: plane on request, empty otherwise.
    latency_percentiles: dict[int, float] = field(default_factory=dict)

    @property
    def mean_latency_ms(self) -> float:
        """Mean end-to-end latency across all deliveries."""
        total = sum(s.total_latency_ms for s in self.deliveries.values())
        count = sum(s.frames for s in self.deliveries.values())
        return total / count if count else 0.0

    @property
    def max_latency_ms(self) -> float:
        """Worst end-to-end latency observed."""
        if not self.deliveries:
            return 0.0
        return max(s.max_latency_ms for s in self.deliveries.values())

    def bound_violations(self) -> int:
        """Subscriber-stream pairs whose max latency breached the bound."""
        return sum(
            1
            for stats in self.deliveries.values()
            if stats.max_latency_ms >= self.latency_bound_ms
        )

    def out_mbps_by_site(self) -> dict[int, float]:
        """Mean outbound data-plane rate per site over the run."""
        if self.duration_ms <= 0:
            return {site: 0.0 for site in self.bytes_sent_by_site}
        seconds = self.duration_ms / 1000.0
        return {
            site: bytes_sent * 8.0 / 1e6 / seconds
            for site, bytes_sent in self.bytes_sent_by_site.items()
        }


@dataclass(frozen=True)
class _NackRequest:
    """A receiver's gap-repair request, sent up its tree parent."""

    stream_id: StreamId
    sequence: int
    requester: int


@dataclass
class _PendingRepair:
    """One missing (stream, site, sequence) instance under repair."""

    attempts: int
    deadline_ms: float
    timer: Timer | None = None


class ForestDataPlane:
    """Runs the media data plane over a built forest (event-driven).

    With ``nack_enabled`` the plane layers gap recovery on top of the
    lossy dissemination: every node buffers the frames it holds, a
    receiver that observes a sequence gap NACKs its tree parent, the
    parent retransmits from its buffer (or escalates its own repair
    upward when its copy was lost too), and the repaired frame cascades
    back down the subtree through the ordinary relay path — receivers
    that already hold it discard the duplicate.  Each missing instance
    is retried on a per-link round-trip timer, bounded by
    ``max_repair_attempts`` NACKs and a repair deadline of
    ``repair_deadline_factor * latency_bound_ms`` from loss detection;
    exhausting either gives the instance up as unrecovered.  A tail
    audit after the last capture catches losses no later frame could
    reveal.  At zero noise none of this machinery draws RNG or sends
    messages, so NACK-armed deterministic runs stay bit-identical to
    :class:`FastDataPlane`.
    """

    #: Dispatch tag (see :func:`make_dataplane`).
    kind = "event"

    def __init__(
        self,
        session: TISession,
        forest: OverlayForest,
        rng: RngStream,
        fps: float = 15.0,
        jitter_ms: float = 0.0,
        loss_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        latency_bound_ms: float = 120.0,
        nack_enabled: bool = False,
        max_repair_attempts: int = 3,
        repair_deadline_factor: float = 2.0,
        collect_percentiles: bool = False,
    ) -> None:
        if max_repair_attempts < 1:
            raise SimulationError(
                f"max_repair_attempts must be >= 1, got {max_repair_attempts}"
            )
        check_non_negative("repair_deadline_factor", repair_deadline_factor)
        self.session = session
        self.forest = forest
        self.rng = rng
        self.fps = fps
        self.latency_bound_ms = latency_bound_ms
        self.nack_enabled = nack_enabled
        self.max_repair_attempts = max_repair_attempts
        self.repair_deadline_factor = repair_deadline_factor
        self.collect_percentiles = collect_percentiles
        self.simulator = Simulator()
        self.network = LatencyNetwork(
            session=session,
            simulator=self.simulator,
            rng=rng.spawn("network"),
            jitter_ms=jitter_ms,
            loss_probability=loss_probability,
            duplicate_probability=duplicate_probability,
        )
        self._deliveries: dict[tuple[StreamId, int], DeliveryStats] = {}
        self._bytes_sent: dict[int, int] = {
            site.index: 0 for site in session.sites
        }
        self._captured = 0
        self._delivered = 0
        # NACK/repair state: per-(stream, site) received sequences and
        # frame buffers, and the in-flight repairs keyed by instance.
        self._received: dict[tuple[StreamId, int], set[int]] = {}
        self._buffers: dict[tuple[StreamId, int], dict[int, Frame3D]] = {}
        self._highest: dict[tuple[StreamId, int], int] = {}
        self._pending: dict[tuple[StreamId, int, int], _PendingRepair] = {}
        self._latencies: list[float] = []
        self.duplicates_discarded = 0
        self.nacks_sent = 0
        self.repairs_sent = 0
        self.frames_recovered = 0
        self.frames_unrecovered = 0

    def run(self, duration_ms: float = 2000.0) -> DataPlaneReport:
        """Simulate ``duration_ms`` of capture and dissemination."""
        sources = self._make_sources(duration_ms)
        for source in sources:
            source.start(self.simulator.schedule_at)
        if self.nack_enabled:
            # Sweep for undetectable tail losses once every original
            # delivery has had time to land (path costs stay below the
            # bound; the factor absorbs accumulated jitter).
            self.simulator.schedule_at(
                duration_ms + self.repair_deadline_factor * self.latency_bound_ms,
                self._tail_audit,
            )
        # Drain fully: frames captured near the end still need to land,
        # and every pending repair resolves (recovered or given up).
        self.simulator.run()
        return DataPlaneReport(
            duration_ms=duration_ms,
            frames_captured=self._captured,
            frames_delivered=self._delivered,
            deliveries=dict(self._deliveries),
            bytes_sent_by_site=dict(self._bytes_sent),
            latency_bound_ms=self.latency_bound_ms,
            sends_dropped=self.network.dropped,
            duplicates_discarded=self.duplicates_discarded,
            nacks_sent=self.nacks_sent,
            repairs_sent=self.repairs_sent,
            frames_recovered=self.frames_recovered,
            frames_unrecovered=self.frames_unrecovered,
            latency_percentiles=(
                latency_percentiles(self._latencies)
                if self.collect_percentiles
                else {}
            ),
        )

    # -- internals ---------------------------------------------------------------

    def _make_sources(self, duration_ms: float) -> list[CameraSource]:
        sources = []
        for stream_id, tree in self.forest.trees.items():
            if not tree.receivers():
                continue  # nobody subscribed; camera stays local
            descriptor = self.session.registry.describe(stream_id)
            clock = FrameClock(
                stream_id=stream_id,
                bandwidth_mbps=descriptor.bandwidth_mbps,
                fps=self.fps,
            )
            sources.append(
                CameraSource(
                    clock=clock,
                    rng=self.rng.spawn(f"camera-{stream_id}"),
                    on_frame=self._on_capture,
                    end_time_ms=duration_ms,
                )
            )
        return sources

    def _on_capture(self, frame: Frame3D) -> None:
        self._captured += 1
        if self.nack_enabled:
            source = frame.stream_id.site
            self._buffers.setdefault((frame.stream_id, source), {})[
                frame.sequence
            ] = frame
        self._relay(frame.stream_id.site, frame)

    def _relay(self, at_site: int, frame: Frame3D) -> None:
        """Forward ``frame`` to the site's children in the stream's tree."""
        tree = self.forest.trees[frame.stream_id]
        for child in tree.children(at_site):
            self._bytes_sent[at_site] += frame.size_bytes
            self.network.send(
                at_site,
                child,
                frame,
                lambda payload, _latency, child=child: self._on_arrival(
                    child, payload
                ),
            )

    def _on_arrival(self, at_site: int, frame: Frame3D) -> None:
        key = (frame.stream_id, at_site)
        seen = self._received.setdefault(key, set())
        if frame.sequence in seen:
            # Network duplication, or a repair overlapping the cascade
            # (the subtree relay re-delivers to receivers that already
            # hold the frame).  Discard without re-recording/re-relaying.
            self.duplicates_discarded += 1
            return
        seen.add(frame.sequence)
        if self.nack_enabled:
            self._buffers.setdefault(key, {})[frame.sequence] = frame
            pending = self._pending.pop(
                (frame.stream_id, at_site, frame.sequence), None
            )
            if pending is not None:
                if pending.timer is not None:
                    pending.timer.cancel()
                self.frames_recovered += 1
            self._detect_gaps(at_site, frame)
        latency = self.simulator.now - frame.capture_time_ms
        stats = self._deliveries.setdefault(key, DeliveryStats())
        stats.record(latency)
        if self.collect_percentiles:
            self._latencies.append(latency)
        self._delivered += 1
        self._relay(at_site, frame)

    # -- NACK/repair state machine -------------------------------------------

    def _detect_gaps(self, at_site: int, frame: Frame3D) -> None:
        """Start repairs for sequences skipped below ``frame``."""
        key = (frame.stream_id, at_site)
        highest = self._highest.get(key, -1)
        if frame.sequence > highest:
            received = self._received[key]
            for missing in range(highest + 1, frame.sequence):
                if missing not in received:
                    self._start_repair(frame.stream_id, at_site, missing)
            self._highest[key] = frame.sequence

    def _start_repair(
        self, stream_id: StreamId, site: int, sequence: int
    ) -> None:
        """Open a repair for one missing instance (no-op if in flight).

        The repair deadline runs from *detection* (now), not capture:
        a tail-audit detection long after capture still gets its full
        ``repair_deadline_factor * latency_bound_ms`` window.
        """
        pending_key = (stream_id, site, sequence)
        if pending_key in self._pending:
            return
        if self.forest.trees[stream_id].parent(site) is None:
            raise SimulationError(
                f"source site {site} missing its own frame "
                f"{stream_id}#{sequence}"
            )
        deadline = (
            self.simulator.now
            + self.repair_deadline_factor * self.latency_bound_ms
        )
        pending = _PendingRepair(attempts=0, deadline_ms=deadline)
        self._pending[pending_key] = pending
        self._send_nack(pending_key, pending)

    def _send_nack(
        self,
        pending_key: tuple[StreamId, int, int],
        pending: _PendingRepair,
    ) -> None:
        stream_id, site, sequence = pending_key
        parent = self.forest.trees[stream_id].parent(site)
        pending.attempts += 1
        self.nacks_sent += 1
        self.network.send(
            site,
            parent,
            _NackRequest(stream_id=stream_id, sequence=sequence, requester=site),
            lambda payload, _latency: self._on_nack(parent, payload),
        )
        pending.timer = self.simulator.schedule_timer(
            self._nack_retry_ms(parent, site),
            lambda: self._retry_repair(pending_key),
        )

    def _nack_retry_ms(self, parent: int, site: int) -> float:
        # One NACK/repair round trip plus worst-case jitter both ways,
        # floored so zero-cost links still get a positive timeout.
        rtt = 2.0 * (self.session.cost_ms(parent, site) + self.network.jitter_ms)
        return max(rtt, 1.0)

    def _retry_repair(self, pending_key: tuple[StreamId, int, int]) -> None:
        pending = self._pending.get(pending_key)
        if pending is None:
            return  # repaired before the timer fired
        if (
            pending.attempts >= self.max_repair_attempts
            or self.simulator.now > pending.deadline_ms
        ):
            del self._pending[pending_key]
            self.frames_unrecovered += 1
            return
        self._send_nack(pending_key, pending)

    def _on_nack(self, at_site: int, nack: _NackRequest) -> None:
        frame = self._buffers.get((nack.stream_id, at_site), {}).get(
            nack.sequence
        )
        if frame is not None:
            self.repairs_sent += 1
            self._bytes_sent[at_site] += frame.size_bytes
            self.network.send(
                at_site,
                nack.requester,
                frame,
                lambda payload, _latency: self._on_arrival(
                    nack.requester, payload
                ),
            )
            return
        # This site lost its copy too (possibly still undetected):
        # escalate a repair of its own.  When the repaired frame lands
        # here it relays to every child, so the requester is served by
        # the cascade.
        self._start_repair(nack.stream_id, at_site, nack.sequence)

    def _tail_audit(self) -> None:
        """Sweep for losses no later frame could reveal.

        A frame dropped after the stream's last delivered sequence
        leaves no gap at the receiver, and a receiver that lost *every*
        frame never sees one; walk the captured sequences (the source
        buffer) against each receiver's received set and open repairs
        for anything still missing.
        """
        for stream_id, tree in self.forest.trees.items():
            expected = self._buffers.get((stream_id, tree.source))
            if not expected:
                continue
            for site in tree.receivers():
                seen = self._received.get((stream_id, site), set())
                for sequence in expected:
                    if sequence not in seen:
                        self._start_repair(stream_id, site, sequence)


class FastDataPlane:
    """Analytic batched data plane for deterministic (zero jitter/loss) runs.

    Exploits the determinism the event-driven plane only discovers the
    hard way: with no jitter and no loss, every frame captured at ``t0``
    arrives at member ``v`` at exactly ``t0 + sum(hop costs on the
    source->v tree path)``, accumulated hop by hop in IEEE-754 — the
    same float recurrence the simulator's clock performs.  One pass per
    tree over (members x frames) float adds therefore reproduces the
    event-driven :class:`DataPlaneReport` bit for bit, with no heap,
    no callbacks, and no per-frame object construction.

    The per-tree arithmetic runs on the session's array backend: plain
    list comprehensions on the python backend, elementwise ndarray
    kernels on numpy.  Both are pinned to the same float results — the
    numpy path uses only elementwise float64 ops plus a ``cumsum``-based
    left-to-right sum, never ``np.sum``'s pairwise reduction.  Short
    frame vectors stay on the list kernels even under numpy
    (``ArrayBackend.plane_kernels``): per-op ndarray dispatch overhead
    loses below ~64 frames, and the results are identical either way.

    Raises :class:`~repro.errors.SimulationError` when constructed with
    jitter or loss — those runs need the event-driven plane (use
    :func:`make_dataplane` to dispatch automatically).
    """

    #: Dispatch tag (see :func:`make_dataplane`).
    kind = "fast"

    def __init__(
        self,
        session: TISession,
        forest: OverlayForest,
        rng: RngStream,
        fps: float = 15.0,
        jitter_ms: float = 0.0,
        loss_probability: float = 0.0,
        latency_bound_ms: float = 120.0,
    ) -> None:
        if jitter_ms != 0.0 or loss_probability != 0.0:
            raise SimulationError(
                "FastDataPlane is exact only for zero jitter/loss; "
                f"got jitter_ms={jitter_ms}, loss={loss_probability} "
                "(use make_dataplane() to dispatch)"
            )
        self.session = session
        self.forest = forest
        self.rng = rng
        self.fps = fps
        self.latency_bound_ms = latency_bound_ms

    def run(self, duration_ms: float = 2000.0) -> DataPlaneReport:
        """Compute ``duration_ms`` of capture and dissemination analytically."""
        deliveries: dict[tuple[StreamId, int], DeliveryStats] = {}
        bytes_sent: dict[int, int] = {
            site.index: 0 for site in self.session.sites
        }
        captured = 0
        delivered = 0
        cost_ms = self.session.cost_ms
        backend = self.session.array_backend
        for stream_id, tree in self.forest.trees.items():
            if not tree.receivers():
                continue  # nobody subscribed; camera stays local
            descriptor = self.session.registry.describe(stream_id)
            clock = FrameClock(
                stream_id=stream_id,
                bandwidth_mbps=descriptor.bandwidth_mbps,
                fps=self.fps,
            )
            camera_rng = self.rng.spawn(f"camera-{stream_id}")
            times = clock.capture_times(duration_ms)
            n_frames = len(times)
            kern = backend.plane_kernels(n_frames)
            stream_bytes = int(sum(clock.sample_sizes(camera_rng, n_frames)))
            captured += n_frames
            source = tree.source
            # Per-member arrival-time vectors, parents before children
            # (path_costs iterates in attach order).
            times_v = kern.as_vector(times)
            arrivals: dict[int, object] = {source: times_v}
            parent_of = tree.parent
            for node in tree.path_costs():
                if node == source:
                    continue
                parent = parent_of(node)
                hop = cost_ms(parent, node)
                node_arrivals = kern.shift(arrivals[parent], hop)
                arrivals[node] = node_arrivals
                bytes_sent[parent] += stream_bytes
                latencies = kern.deltas(node_arrivals, times_v)
                stats = DeliveryStats()
                stats.frames = n_frames
                stats.total_latency_ms = kern.seq_sum(latencies)
                stats.max_latency_ms = max(0.0, kern.vec_max(latencies))
                deliveries[(stream_id, node)] = stats
                delivered += n_frames
        return DataPlaneReport(
            duration_ms=duration_ms,
            frames_captured=captured,
            frames_delivered=delivered,
            deliveries=deliveries,
            bytes_sent_by_site=bytes_sent,
            latency_bound_ms=self.latency_bound_ms,
        )


class SampledDataPlane:
    """Sampled-percentile noisy plane: bulk draws convolved along paths.

    The event-driven plane is the oracle for noisy runs but pays a heap
    event per hop per frame.  This plane exploits the same structure the
    :class:`FastDataPlane` does — a frame's delivery time at node ``v``
    is the source capture time plus the per-hop terms along the tree
    path — except the per-hop terms are now random: arrival vectors
    accumulate ``hop_cost + Uniform(0, jitter)`` down the tree, and a
    survival mask ANDs per-hop ``Uniform(0, 1) >= loss`` draws so a
    frame dropped at a hop is dead for the whole subtree below it
    (exactly the event plane's loss correlation).

    All randomness comes from the :class:`~repro.util.rng.RngStream`
    (never backend-native RNG), so reports are bit-identical across
    array backends; the backend kernels only vectorize the arithmetic.
    The draws are *differently ordered* than the event plane's, so
    noisy reports agree with the oracle in distribution — percentiles
    within tolerance, pinned by test — not bit-for-bit.  At zero noise
    no draws happen and the arithmetic collapses to the fast plane's,
    reproducing its report exactly (minus the percentiles, which this
    plane always fills).

    Duplication and NACK/repair are not modelled here — those runs need
    the event plane (:func:`make_dataplane` enforces this).
    """

    #: Dispatch tag (see :func:`make_dataplane`).
    kind = "sampled"

    def __init__(
        self,
        session: TISession,
        forest: OverlayForest,
        rng: RngStream,
        fps: float = 15.0,
        jitter_ms: float = 0.0,
        loss_probability: float = 0.0,
        latency_bound_ms: float = 120.0,
    ) -> None:
        check_non_negative("jitter_ms", jitter_ms)
        check_probability("loss_probability", loss_probability)
        self.session = session
        self.forest = forest
        self.rng = rng
        self.fps = fps
        self.jitter_ms = jitter_ms
        self.loss_probability = loss_probability
        self.latency_bound_ms = latency_bound_ms

    def run(self, duration_ms: float = 2000.0) -> DataPlaneReport:
        """Sample ``duration_ms`` of noisy capture and dissemination."""
        deliveries: dict[tuple[StreamId, int], DeliveryStats] = {}
        bytes_sent: dict[int, int] = {
            site.index: 0 for site in self.session.sites
        }
        captured = 0
        delivered = 0
        dropped = 0
        all_latencies: list[float] = []
        cost_ms = self.session.cost_ms
        backend = self.session.array_backend
        jitter = self.jitter_ms
        loss = self.loss_probability
        noise_rng = self.rng.spawn("network")
        for stream_id, tree in self.forest.trees.items():
            if not tree.receivers():
                continue  # nobody subscribed; camera stays local
            descriptor = self.session.registry.describe(stream_id)
            clock = FrameClock(
                stream_id=stream_id,
                bandwidth_mbps=descriptor.bandwidth_mbps,
                fps=self.fps,
            )
            camera_rng = self.rng.spawn(f"camera-{stream_id}")
            times = clock.capture_times(duration_ms)
            n_frames = len(times)
            kern = backend.plane_kernels(n_frames)
            sizes = clock.sample_sizes(camera_rng, n_frames)
            stream_bytes = int(sum(sizes))
            captured += n_frames
            source = tree.source
            times_v = kern.as_vector(times)
            arrivals: dict[int, object] = {source: times_v}
            # Survival masks down each path; None means "all alive"
            # (the zero-loss case never materializes a mask, keeping
            # the arithmetic identical to FastDataPlane's).
            alive: dict[int, object] = {source: None}
            parent_of = tree.parent
            for node in tree.path_costs():
                if node == source:
                    continue
                parent = parent_of(node)
                hop = cost_ms(parent, node)
                # Per-hop draw order mirrors LatencyNetwork.send: the
                # loss draw first, then the jitter draw.
                node_alive = alive[parent]
                if loss > 0.0:
                    survive = kern.survivors(
                        noise_rng.uniforms(0.0, 1.0, n_frames), loss
                    )
                    node_alive = (
                        survive
                        if node_alive is None
                        else kern.mask_and(node_alive, survive)
                    )
                node_arrivals = kern.shift(arrivals[parent], hop)
                if jitter > 0.0:
                    node_arrivals = kern.add_vec(
                        node_arrivals,
                        kern.as_vector(
                            noise_rng.uniforms(0.0, jitter, n_frames)
                        ),
                    )
                arrivals[node] = node_arrivals
                alive[node] = node_alive
                parent_alive = alive[parent]
                if parent_alive is None:
                    bytes_sent[parent] += stream_bytes
                else:
                    bytes_sent[parent] += kern.masked_int_sum(
                        sizes, parent_alive
                    )
                latencies = kern.deltas(node_arrivals, times_v)
                if node_alive is None:
                    n_delivered = n_frames
                else:
                    latencies = kern.compress(latencies, node_alive)
                    n_delivered = kern.count_true(node_alive)
                stats = DeliveryStats()
                stats.frames = n_delivered
                if n_delivered:
                    stats.total_latency_ms = kern.seq_sum(latencies)
                    stats.max_latency_ms = max(0.0, kern.vec_max(latencies))
                    all_latencies.extend(kern.to_list(latencies))
                deliveries[(stream_id, node)] = stats
                delivered += n_delivered
                dropped += n_frames - n_delivered
        return DataPlaneReport(
            duration_ms=duration_ms,
            frames_captured=captured,
            frames_delivered=delivered,
            deliveries=deliveries,
            bytes_sent_by_site=bytes_sent,
            latency_bound_ms=self.latency_bound_ms,
            sends_dropped=dropped,
            latency_percentiles=latency_percentiles(all_latencies),
        )


#: Accepted values for :func:`make_dataplane`'s ``plane`` knob.
PLANE_NAMES = ("auto", "fast", "event", "sampled")


def make_dataplane(
    session: TISession,
    forest: OverlayForest,
    rng: RngStream,
    fps: float = 15.0,
    jitter_ms: float = 0.0,
    loss_probability: float = 0.0,
    duplicate_probability: float = 0.0,
    latency_bound_ms: float = 120.0,
    nack_enabled: bool = False,
    max_repair_attempts: int = 3,
    repair_deadline_factor: float = 2.0,
    plane: str = "auto",
) -> "FastDataPlane | ForestDataPlane | SampledDataPlane":
    """Pick the right data plane for the run's noise model.

    Deterministic runs (zero jitter, loss *and* duplication — the
    paper's evaluation setting) get the analytic :class:`FastDataPlane`;
    any stochastic perturbation routes to the event-driven
    :class:`ForestDataPlane`, which also carries the NACK/repair layer.
    Both produce identical reports on the deterministic setting, so
    callers never need to care which they got (check ``plane.kind``
    when they do).  ``plane="sampled"`` opts a noisy run into the
    :class:`SampledDataPlane` instead — percentile-accurate against the
    event oracle, but with no duplication or repair model, so it
    refuses those knobs.
    """
    if plane not in PLANE_NAMES:
        raise SimulationError(
            f"unknown data plane {plane!r}; expected one of {PLANE_NAMES}"
        )
    if plane == "sampled":
        if duplicate_probability != 0.0 or nack_enabled:
            raise SimulationError(
                "the sampled plane models neither duplication nor "
                "NACK/repair; use plane='event' (or 'auto')"
            )
        return SampledDataPlane(
            session=session,
            forest=forest,
            rng=rng,
            fps=fps,
            jitter_ms=jitter_ms,
            loss_probability=loss_probability,
            latency_bound_ms=latency_bound_ms,
        )
    deterministic = (
        jitter_ms == 0.0
        and loss_probability == 0.0
        and duplicate_probability == 0.0
    )
    if plane == "fast" or (plane == "auto" and deterministic):
        if duplicate_probability != 0.0:
            raise SimulationError(
                "FastDataPlane is exact only for zero duplication; "
                f"got duplicate_probability={duplicate_probability}"
            )
        return FastDataPlane(
            session=session,
            forest=forest,
            rng=rng,
            fps=fps,
            jitter_ms=jitter_ms,
            loss_probability=loss_probability,
            latency_bound_ms=latency_bound_ms,
        )
    return ForestDataPlane(
        session=session,
        forest=forest,
        rng=rng,
        fps=fps,
        jitter_ms=jitter_ms,
        loss_probability=loss_probability,
        duplicate_probability=duplicate_probability,
        latency_bound_ms=latency_bound_ms,
        nack_enabled=nack_enabled,
        max_repair_attempts=max_repair_attempts,
        repair_deadline_factor=repair_deadline_factor,
    )
