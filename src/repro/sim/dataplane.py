"""Frame dissemination over a constructed overlay forest.

This is the validation loop the paper's latency bound exists for: every
camera emits frames at 15 fps, the source RP relays each frame down its
stream's multicast tree, and every subscriber records the end-to-end
delivery latency.  With zero jitter the measured latency of every
delivery equals the tree path cost, which the builder guaranteed to be
below ``B_cost`` — the report cross-checks exactly that.

Two implementations share the :class:`DataPlaneReport` contract:

* :class:`ForestDataPlane` — the event-driven simulator: every hop of
  every frame is a scheduled callback.  Required whenever jitter or
  loss perturb deliveries.
* :class:`FastDataPlane` — the analytic batched plane: with zero
  jitter/loss the run is fully determined by the capture schedule and
  the per-tree hop costs, so the report is computed with per-tree
  array arithmetic (frames x hop costs) and **no** simulator events.
  It reproduces the event-driven report bit for bit, including the
  floating-point accumulation order.

:func:`make_dataplane` dispatches between them automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.forest import OverlayForest
from repro.errors import SimulationError
from repro.media.frames import Frame3D, FrameClock
from repro.media.source import CameraSource
from repro.session.session import TISession
from repro.session.streams import StreamId
from repro.sim.engine import Simulator
from repro.sim.network import LatencyNetwork
from repro.util.rng import RngStream


@dataclass
class DeliveryStats:
    """Per (stream, subscriber) delivery accounting."""

    frames: int = 0
    total_latency_ms: float = 0.0
    max_latency_ms: float = 0.0

    def record(self, latency_ms: float) -> None:
        """Accumulate one delivery."""
        self.frames += 1
        self.total_latency_ms += latency_ms
        self.max_latency_ms = max(self.max_latency_ms, latency_ms)

    @property
    def mean_latency_ms(self) -> float:
        """Mean delivery latency (0 when nothing arrived)."""
        if self.frames == 0:
            return 0.0
        return self.total_latency_ms / self.frames


@dataclass
class DataPlaneReport:
    """Aggregated results of one data-plane run."""

    duration_ms: float
    frames_captured: int
    frames_delivered: int
    deliveries: dict[tuple[StreamId, int], DeliveryStats]
    bytes_sent_by_site: dict[int, int]
    latency_bound_ms: float

    @property
    def mean_latency_ms(self) -> float:
        """Mean end-to-end latency across all deliveries."""
        total = sum(s.total_latency_ms for s in self.deliveries.values())
        count = sum(s.frames for s in self.deliveries.values())
        return total / count if count else 0.0

    @property
    def max_latency_ms(self) -> float:
        """Worst end-to-end latency observed."""
        if not self.deliveries:
            return 0.0
        return max(s.max_latency_ms for s in self.deliveries.values())

    def bound_violations(self) -> int:
        """Subscriber-stream pairs whose max latency breached the bound."""
        return sum(
            1
            for stats in self.deliveries.values()
            if stats.max_latency_ms >= self.latency_bound_ms
        )

    def out_mbps_by_site(self) -> dict[int, float]:
        """Mean outbound data-plane rate per site over the run."""
        if self.duration_ms <= 0:
            return {site: 0.0 for site in self.bytes_sent_by_site}
        seconds = self.duration_ms / 1000.0
        return {
            site: bytes_sent * 8.0 / 1e6 / seconds
            for site, bytes_sent in self.bytes_sent_by_site.items()
        }


class ForestDataPlane:
    """Runs the media data plane over a built forest (event-driven)."""

    #: Dispatch tag (see :func:`make_dataplane`).
    kind = "event"

    def __init__(
        self,
        session: TISession,
        forest: OverlayForest,
        rng: RngStream,
        fps: float = 15.0,
        jitter_ms: float = 0.0,
        loss_probability: float = 0.0,
        latency_bound_ms: float = 120.0,
    ) -> None:
        self.session = session
        self.forest = forest
        self.rng = rng
        self.fps = fps
        self.latency_bound_ms = latency_bound_ms
        self.simulator = Simulator()
        self.network = LatencyNetwork(
            session=session,
            simulator=self.simulator,
            rng=rng.spawn("network"),
            jitter_ms=jitter_ms,
            loss_probability=loss_probability,
        )
        self._deliveries: dict[tuple[StreamId, int], DeliveryStats] = {}
        self._bytes_sent: dict[int, int] = {
            site.index: 0 for site in session.sites
        }
        self._captured = 0
        self._delivered = 0

    def run(self, duration_ms: float = 2000.0) -> DataPlaneReport:
        """Simulate ``duration_ms`` of capture and dissemination."""
        sources = self._make_sources(duration_ms)
        for source in sources:
            source.start(self.simulator.schedule_at)
        # Drain fully: frames captured near the end still need to land.
        self.simulator.run()
        return DataPlaneReport(
            duration_ms=duration_ms,
            frames_captured=self._captured,
            frames_delivered=self._delivered,
            deliveries=dict(self._deliveries),
            bytes_sent_by_site=dict(self._bytes_sent),
            latency_bound_ms=self.latency_bound_ms,
        )

    # -- internals ---------------------------------------------------------------

    def _make_sources(self, duration_ms: float) -> list[CameraSource]:
        sources = []
        for stream_id, tree in self.forest.trees.items():
            if not tree.receivers():
                continue  # nobody subscribed; camera stays local
            descriptor = self.session.registry.describe(stream_id)
            clock = FrameClock(
                stream_id=stream_id,
                bandwidth_mbps=descriptor.bandwidth_mbps,
                fps=self.fps,
            )
            sources.append(
                CameraSource(
                    clock=clock,
                    rng=self.rng.spawn(f"camera-{stream_id}"),
                    on_frame=self._on_capture,
                    end_time_ms=duration_ms,
                )
            )
        return sources

    def _on_capture(self, frame: Frame3D) -> None:
        self._captured += 1
        self._relay(frame.stream_id.site, frame)

    def _relay(self, at_site: int, frame: Frame3D) -> None:
        """Forward ``frame`` to the site's children in the stream's tree."""
        tree = self.forest.trees[frame.stream_id]
        for child in tree.children(at_site):
            self._bytes_sent[at_site] += frame.size_bytes
            self.network.send(
                at_site,
                child,
                frame,
                lambda payload, _latency, child=child: self._on_arrival(
                    child, payload
                ),
            )

    def _on_arrival(self, at_site: int, frame: Frame3D) -> None:
        latency = self.simulator.now - frame.capture_time_ms
        key = (frame.stream_id, at_site)
        stats = self._deliveries.setdefault(key, DeliveryStats())
        stats.record(latency)
        self._delivered += 1
        self._relay(at_site, frame)


class FastDataPlane:
    """Analytic batched data plane for deterministic (zero jitter/loss) runs.

    Exploits the determinism the event-driven plane only discovers the
    hard way: with no jitter and no loss, every frame captured at ``t0``
    arrives at member ``v`` at exactly ``t0 + sum(hop costs on the
    source->v tree path)``, accumulated hop by hop in IEEE-754 — the
    same float recurrence the simulator's clock performs.  One pass per
    tree over (members x frames) float adds therefore reproduces the
    event-driven :class:`DataPlaneReport` bit for bit, with no heap,
    no callbacks, and no per-frame object construction.

    The per-tree arithmetic runs on the session's array backend: plain
    list comprehensions on the python backend, elementwise ndarray
    kernels on numpy.  Both are pinned to the same float results — the
    numpy path uses only elementwise float64 ops plus a ``cumsum``-based
    left-to-right sum, never ``np.sum``'s pairwise reduction.  Short
    frame vectors stay on the list kernels even under numpy
    (``ArrayBackend.plane_kernels``): per-op ndarray dispatch overhead
    loses below ~64 frames, and the results are identical either way.

    Raises :class:`~repro.errors.SimulationError` when constructed with
    jitter or loss — those runs need the event-driven plane (use
    :func:`make_dataplane` to dispatch automatically).
    """

    #: Dispatch tag (see :func:`make_dataplane`).
    kind = "fast"

    def __init__(
        self,
        session: TISession,
        forest: OverlayForest,
        rng: RngStream,
        fps: float = 15.0,
        jitter_ms: float = 0.0,
        loss_probability: float = 0.0,
        latency_bound_ms: float = 120.0,
    ) -> None:
        if jitter_ms != 0.0 or loss_probability != 0.0:
            raise SimulationError(
                "FastDataPlane is exact only for zero jitter/loss; "
                f"got jitter_ms={jitter_ms}, loss={loss_probability} "
                "(use make_dataplane() to dispatch)"
            )
        self.session = session
        self.forest = forest
        self.rng = rng
        self.fps = fps
        self.latency_bound_ms = latency_bound_ms

    def run(self, duration_ms: float = 2000.0) -> DataPlaneReport:
        """Compute ``duration_ms`` of capture and dissemination analytically."""
        deliveries: dict[tuple[StreamId, int], DeliveryStats] = {}
        bytes_sent: dict[int, int] = {
            site.index: 0 for site in self.session.sites
        }
        captured = 0
        delivered = 0
        cost_ms = self.session.cost_ms
        backend = self.session.array_backend
        for stream_id, tree in self.forest.trees.items():
            if not tree.receivers():
                continue  # nobody subscribed; camera stays local
            descriptor = self.session.registry.describe(stream_id)
            clock = FrameClock(
                stream_id=stream_id,
                bandwidth_mbps=descriptor.bandwidth_mbps,
                fps=self.fps,
            )
            camera_rng = self.rng.spawn(f"camera-{stream_id}")
            # Replicate CameraSource's capture cadence exactly: the
            # repeated float add is the schedule the simulator ran.
            interval = clock.interval_ms
            times: list[float] = []
            t = 0.0
            while t <= duration_ms:
                times.append(t)
                t += interval
            n_frames = len(times)
            kern = backend.plane_kernels(n_frames)
            stream_bytes = int(sum(clock.sample_sizes(camera_rng, n_frames)))
            captured += n_frames
            source = tree.source
            # Per-member arrival-time vectors, parents before children
            # (path_costs iterates in attach order).
            times_v = kern.as_vector(times)
            arrivals: dict[int, object] = {source: times_v}
            parent_of = tree.parent
            for node in tree.path_costs():
                if node == source:
                    continue
                parent = parent_of(node)
                hop = cost_ms(parent, node)
                node_arrivals = kern.shift(arrivals[parent], hop)
                arrivals[node] = node_arrivals
                bytes_sent[parent] += stream_bytes
                latencies = kern.deltas(node_arrivals, times_v)
                stats = DeliveryStats()
                stats.frames = n_frames
                stats.total_latency_ms = kern.seq_sum(latencies)
                stats.max_latency_ms = max(0.0, kern.vec_max(latencies))
                deliveries[(stream_id, node)] = stats
                delivered += n_frames
        return DataPlaneReport(
            duration_ms=duration_ms,
            frames_captured=captured,
            frames_delivered=delivered,
            deliveries=deliveries,
            bytes_sent_by_site=bytes_sent,
            latency_bound_ms=self.latency_bound_ms,
        )


def make_dataplane(
    session: TISession,
    forest: OverlayForest,
    rng: RngStream,
    fps: float = 15.0,
    jitter_ms: float = 0.0,
    loss_probability: float = 0.0,
    latency_bound_ms: float = 120.0,
) -> "FastDataPlane | ForestDataPlane":
    """Pick the right data plane for the run's noise model.

    Deterministic runs (zero jitter *and* zero loss — the paper's
    evaluation setting) get the analytic :class:`FastDataPlane`; any
    stochastic perturbation routes to the event-driven
    :class:`ForestDataPlane`.  Both produce identical reports on the
    deterministic setting, so callers never need to care which they got
    (check ``plane.kind`` when they do).
    """
    plane_cls = (
        FastDataPlane
        if jitter_ms == 0.0 and loss_probability == 0.0
        else ForestDataPlane
    )
    return plane_cls(
        session=session,
        forest=forest,
        rng=rng,
        fps=fps,
        jitter_ms=jitter_ms,
        loss_probability=loss_probability,
        latency_bound_ms=latency_bound_ms,
    )
