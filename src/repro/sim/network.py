"""Latency network model over the session's RP cost matrix.

Transfers between RPs take the overlay edge cost (one-way shortest-path
latency) plus optional jitter; an optional loss probability drops
messages, and an optional duplication probability delivers a second
copy strictly later (the data-plane mirror of the control-link fault
model in :mod:`repro.pubsub.faults`).  Bandwidth admission is *not*
modelled here — the overlay construction already enforces per-node
stream budgets, which is the paper's bandwidth abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.session.session import TISession
from repro.sim.engine import Simulator
from repro.util.rng import RngStream
from repro.util.validation import check_non_negative, check_probability


@dataclass
class LatencyNetwork:
    """Point-to-point RP message delivery with latency, jitter, loss."""

    session: TISession
    simulator: Simulator
    rng: RngStream
    jitter_ms: float = 0.0
    loss_probability: float = 0.0
    duplicate_probability: float = 0.0
    #: Deterministic drop hook for tests: ``drop_filter(src, dst,
    #: payload) -> True`` drops the message *before* any RNG draw, so
    #: installing one never perturbs the seeded loss/jitter sequence.
    drop_filter: Callable[[int, int, object], bool] | None = None
    sent: int = field(default=0, init=False)
    delivered: int = field(default=0, init=False)
    dropped: int = field(default=0, init=False)
    duplicated: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        check_non_negative("jitter_ms", self.jitter_ms)
        check_probability("loss_probability", self.loss_probability)
        check_probability("duplicate_probability", self.duplicate_probability)

    def send(
        self,
        src: int,
        dst: int,
        payload: object,
        on_delivery: Callable[[object, float], None],
    ) -> None:
        """Send ``payload`` from site ``src`` to ``dst``.

        ``on_delivery(payload, latency_ms)`` fires at arrival time unless
        the message is lost.
        """
        if src == dst:
            raise SimulationError(f"site {src} sending to itself")
        self.sent += 1
        if self.drop_filter is not None and self.drop_filter(src, dst, payload):
            self.dropped += 1
            return
        if self.loss_probability > 0 and self.rng.random() < self.loss_probability:
            self.dropped += 1
            return
        latency = self.session.cost_ms(src, dst)
        if self.jitter_ms > 0:
            latency += self.rng.uniform(0.0, self.jitter_ms)

        def deliver() -> None:
            self.delivered += 1
            on_delivery(payload, latency)

        self.simulator.schedule_in(latency, deliver)
        if (
            self.duplicate_probability > 0
            and self.rng.random() < self.duplicate_probability
        ):
            # The copy rides behind the original: same deterministic
            # latency plus its own jitter, and even at zero jitter the
            # engine's (time, sequence) order lands it strictly later.
            copy_latency = latency
            if self.jitter_ms > 0:
                copy_latency += self.rng.uniform(0.0, self.jitter_ms)
            self.duplicated += 1

            def deliver_copy() -> None:
                self.delivered += 1
                on_delivery(payload, copy_latency)

            self.simulator.schedule_in(copy_latency, deliver_copy)
