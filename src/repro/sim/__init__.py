"""Deterministic discrete-event simulation substrate.

The paper validates its overlay on a simulated Internet topology; this
package adds the data plane: a deterministic event engine, a latency
network model driven by the session's cost matrix, frame dissemination
over a constructed forest, and churn/rebuild experiments.
"""

from repro.sim.engine import Simulator, Timer
from repro.sim.network import LatencyNetwork
from repro.sim.dataplane import (
    DataPlaneReport,
    FastDataPlane,
    ForestDataPlane,
    make_dataplane,
)
from repro.sim.churn import RebuildReport, rebuild_after_leave
from repro.sim.invariants import AuditReport, InvariantAuditor, Violation

__all__ = [
    "Simulator",
    "Timer",
    "LatencyNetwork",
    "DataPlaneReport",
    "FastDataPlane",
    "ForestDataPlane",
    "make_dataplane",
    "RebuildReport",
    "rebuild_after_leave",
    "AuditReport",
    "InvariantAuditor",
    "Violation",
]
