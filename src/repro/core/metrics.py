"""Metrics over build results: Eq. 1, Eq. 3, utilization, load balance.

Metric fidelity notes (also in DESIGN.md):

* Eq. 1 as printed sums the per-pair ratios ``û_{i->j}/u_{i->j}`` over
  all ordered pairs, which can exceed 1 on dense workloads, while Fig. 8
  plots "average rejection ratio" values inside [0, 0.45].  We provide
  the verbatim sum (:func:`pairwise_rejection_sum`), its per-pair mean
  (:func:`mean_pairwise_rejection`, bounded by 1), and the total-request
  ratio ``Σû/Σu`` (:func:`rejection_ratio`) which the figure harnesses
  plot.
* Eq. 3 (the correlation-aware metric of Fig. 11) is implemented
  verbatim in :func:`correlation_weighted_rejection`; its normalized
  companion :func:`criticality_loss_ratio` weights every request by its
  criticality ``Q = 1/u`` and divides by the total criticality mass, so
  it is bounded by 1 and comparable across N — this is what the Fig. 11
  harness plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.base import BuildResult


def rejection_ratio(result: BuildResult) -> float:
    """Fraction of all requests rejected: ``Σû / Σu``."""
    total = result.total_requests
    if total == 0:
        return 0.0
    return len(result.rejected) / total


def pairwise_rejection_sum(result: BuildResult) -> float:
    """Eq. 1 verbatim: ``Σ_i Σ_{j != i} û_{i->j} / u_{i->j}``."""
    u = result.problem.u_matrix()
    u_hat = result.u_hat_matrix()
    total = 0.0
    for i, row in u.items():
        for j, u_ij in row.items():
            if u_ij > 0:
                total += u_hat.get(i, {}).get(j, 0) / u_ij
    return total


def mean_pairwise_rejection(result: BuildResult) -> float:
    """Eq. 1 normalized by the number of requesting pairs (bounded by 1)."""
    pairs = sum(len(row) for row in result.problem.u_matrix().values())
    if pairs == 0:
        return 0.0
    return pairwise_rejection_sum(result) / pairs


def correlation_weighted_rejection(result: BuildResult) -> float:
    """Eq. 3 verbatim: ``Σ_i (Σ_j û_{i->j} / u_{i->j}^2) * u_{i->x}``.

    ``u_{i->x} = min_j u_{i->j}`` over the sources node ``i`` actually
    requests from; sites with no requests contribute nothing.
    """
    u = result.problem.u_matrix()
    u_hat = result.u_hat_matrix()
    total = 0.0
    for i, row in u.items():
        if not row:
            continue
        u_min = min(row.values())
        inner = sum(
            u_hat.get(i, {}).get(j, 0) / (u_ij * u_ij)
            for j, u_ij in row.items()
            if u_ij > 0
        )
        total += inner * u_min
    return total


def criticality_loss_ratio(result: BuildResult) -> float:
    """Criticality-weighted rejection mass, normalized to [0, 1].

    Every request of pair (i, j) carries criticality ``Q_{i->j} =
    1/u_{i->j}``; the ratio is rejected criticality over total
    criticality: ``Σ_{ij} û_{ij} Q_{ij} / Σ_{ij} u_{ij} Q_{ij}``.  Losing
    one of many correlated streams barely moves it; losing a sole stream
    from a site moves it by a full unit — the quantity CO-RJ minimizes.
    """
    u = result.problem.u_matrix()
    u_hat = result.u_hat_matrix()
    lost = 0.0
    mass = 0.0
    for i, row in u.items():
        for j, u_ij in row.items():
            if u_ij > 0:
                q = 1.0 / u_ij
                mass += u_ij * q  # == 1 per requesting pair
                lost += u_hat.get(i, {}).get(j, 0) * q
    if mass == 0.0:
        return 0.0
    return lost / mass


@dataclass(frozen=True)
class ForestMetrics:
    """All headline metrics of one build, in one bundle."""

    algorithm: str
    n_nodes: int
    n_groups: int
    total_requests: int
    rejected_requests: int
    rejection_ratio: float
    pairwise_rejection_sum: float
    mean_pairwise_rejection: float
    correlation_weighted_rejection: float
    criticality_loss_ratio: float
    mean_out_utilization: float
    std_out_utilization: float
    mean_relay_fraction: float
    mean_in_utilization: float
    mean_path_cost_ms: float
    max_path_cost_ms: float
    mean_tree_depth: float

    @classmethod
    def of(cls, result: BuildResult) -> "ForestMetrics":
        """Compute the full metric bundle for ``result``."""
        problem = result.problem
        state = result.state
        out_utils = []
        in_utils = []
        relay_fractions = []
        relay_counts = {i: 0 for i in range(problem.n_nodes)}
        for stream, parent, _child in result.forest.edges():
            if stream.site != parent:
                relay_counts[parent] += 1
        for node in range(problem.n_nodes):
            o_limit = problem.outbound_limit(node)
            i_limit = problem.inbound_limit(node)
            if o_limit > 0:
                out_utils.append(state.dout[node] / o_limit)
                relay_fractions.append(relay_counts[node] / o_limit)
            if i_limit > 0:
                in_utils.append(state.din[node] / i_limit)
        path_costs = []
        depths = []
        for request in result.satisfied:
            tree = result.forest.trees[request.stream]
            path_costs.append(tree.cost_from_source(request.subscriber))
            depths.append(tree.depth(request.subscriber))
        return cls(
            algorithm=result.algorithm,
            n_nodes=problem.n_nodes,
            n_groups=problem.n_groups,
            total_requests=result.total_requests,
            rejected_requests=len(result.rejected),
            rejection_ratio=rejection_ratio(result),
            pairwise_rejection_sum=pairwise_rejection_sum(result),
            mean_pairwise_rejection=mean_pairwise_rejection(result),
            correlation_weighted_rejection=correlation_weighted_rejection(result),
            criticality_loss_ratio=criticality_loss_ratio(result),
            mean_out_utilization=_mean(out_utils),
            std_out_utilization=_std(out_utils),
            mean_relay_fraction=_mean(relay_fractions),
            mean_in_utilization=_mean(in_utils),
            mean_path_cost_ms=_mean(path_costs),
            max_path_cost_ms=max(path_costs) if path_costs else 0.0,
            mean_tree_depth=_mean([float(d) for d in depths]),
        )


def _mean(values: list[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)


def _std(values: list[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = _mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))
