"""Multicast trees and the overlay forest.

A :class:`MulticastTree` ``T_s`` spans the source of stream ``s`` and the
subset of requesting RPs that could be satisfied; edges are parent->child
relays.  Trees are grown strictly by attaching new leaves, so acyclicity
holds by construction; CO-RJ may later detach a leaf (Sec. 4.4), which
also preserves the tree property.

The :class:`OverlayForest` is the set of all trees plus the bookkeeping
of which requests were satisfied or rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import OverlayError
from repro.core.model import RejectionReason, SubscriptionRequest
from repro.session.streams import StreamId


class MulticastTree:
    """One dissemination tree ``T_s`` rooted at the stream's source RP."""

    def __init__(self, stream: StreamId) -> None:
        self.stream = stream
        self.source = stream.site
        self._parent: dict[int, int] = {}
        self._children: dict[int, list[int]] = {self.source: []}
        self._cost_from_source: dict[int, float] = {self.source: 0.0}
        #: Backend-owned attach-ordered ndarray mirror of the member ids
        #: and path costs (``backend._TreeArrays``); ``None`` until a
        #: vectorized parent scan first touches this tree.  The mutation
        #: methods below write through so it can never go stale.
        self._arrays = None
        #: True once the source has relayed the stream to at least one
        #: other RP ("disseminated out", which releases the m-hat slot).
        self.disseminated = False

    # -- membership --------------------------------------------------------------

    def __contains__(self, node: int) -> bool:
        return node in self._children

    def members(self) -> list[int]:
        """All nodes in the tree, source first, then insertion order."""
        return list(self._children)

    def receivers(self) -> list[int]:
        """Members other than the source (the satisfied subscribers)."""
        return [node for node in self._children if node != self.source]

    def __len__(self) -> int:
        return len(self._children)

    # -- structure ---------------------------------------------------------------

    def parent(self, node: int) -> int | None:
        """Parent of ``node``; None for the source or non-members."""
        return self._parent.get(node)

    def children(self, node: int) -> list[int]:
        """Children of ``node`` (empty for leaves and non-members)."""
        return list(self._children.get(node, []))

    def child_count(self, node: int) -> int:
        """Number of children of ``node`` (no list copy)."""
        children = self._children.get(node)
        return len(children) if children else 0

    def is_leaf(self, node: int) -> bool:
        """True when ``node`` is a member with no children."""
        return node in self._children and not self._children[node]

    def cost_from_source(self, node: int) -> float:
        """Accumulated tree-path latency from the source to ``node``."""
        try:
            return self._cost_from_source[node]
        except KeyError:
            raise OverlayError(f"{node} is not in tree {self.stream}") from None

    def path_costs(self) -> dict[int, float]:
        """Source-to-node path cost for every member (shared, read-only).

        Members iterate source-first in attach order — parents always
        precede their children.  The parent-search and data-plane hot
        paths scan this dict directly instead of calling
        :meth:`cost_from_source` per member.
        """
        return self._cost_from_source

    def edges(self) -> Iterator[tuple[int, int]]:
        """All (parent, child) edges."""
        for child, parent in self._parent.items():
            yield parent, child

    def depth(self, node: int) -> int:
        """Number of hops from the source to ``node``."""
        if node not in self._children:
            raise OverlayError(f"{node} is not in tree {self.stream}")
        hops = 0
        current = node
        while current != self.source:
            current = self._parent[current]
            hops += 1
        return hops

    # -- mutation ----------------------------------------------------------------

    def attach(self, parent: int, child: int, edge_cost: float) -> None:
        """Attach ``child`` as a new leaf under ``parent``.

        Raises :class:`OverlayError` when ``parent`` is not a member or
        ``child`` already is one (both would corrupt the tree).
        """
        if parent not in self._children:
            raise OverlayError(
                f"parent {parent} is not in tree {self.stream}"
            )
        if child in self._children:
            raise OverlayError(f"{child} is already in tree {self.stream}")
        if edge_cost < 0:
            raise OverlayError(f"negative edge cost {edge_cost}")
        self._parent[child] = parent
        self._children[parent].append(child)
        self._children[child] = []
        cost = self._cost_from_source[parent] + edge_cost
        self._cost_from_source[child] = cost
        if self._arrays is not None:
            self._arrays.append(child, cost)
        if parent == self.source:
            self.disseminated = True

    def detach_leaf(self, node: int) -> int:
        """Remove leaf ``node`` (CO-RJ victim eviction); returns its parent.

        Recomputes :attr:`disseminated` since the detached leaf may have
        been the source's only child.
        """
        if node == self.source:
            raise OverlayError(f"cannot detach the source of tree {self.stream}")
        if node not in self._children:
            raise OverlayError(f"{node} is not in tree {self.stream}")
        if self._children[node]:
            raise OverlayError(
                f"{node} has children in tree {self.stream}; only leaves detach"
            )
        parent = self._parent.pop(node)
        self._children[parent].remove(node)
        del self._children[node]
        del self._cost_from_source[node]
        if self._arrays is not None:
            self._arrays.remove(node)
        self.disseminated = bool(self._children[self.source])
        return parent

    def validate(self) -> None:
        """Check structural invariants; raises :class:`OverlayError`."""
        for child, parent in self._parent.items():
            if parent not in self._children:
                raise OverlayError(f"dangling parent {parent} in tree {self.stream}")
            if child not in self._children[parent]:
                raise OverlayError(
                    f"child link {parent}->{child} missing in tree {self.stream}"
                )
        # Reachability: every member must reach the source via parents.
        for node in self._children:
            seen = set()
            current = node
            while current != self.source:
                if current in seen:
                    raise OverlayError(f"cycle at {current} in tree {self.stream}")
                seen.add(current)
                if current not in self._parent:
                    raise OverlayError(
                        f"{current} unreachable from source in tree {self.stream}"
                    )
                current = self._parent[current]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"MulticastTree(stream={self.stream}, members={len(self)}, "
            f"edges={len(self._parent)})"
        )


@dataclass
class OverlayForest:
    """The full overlay: one tree per constructed multicast group."""

    trees: dict[StreamId, MulticastTree] = field(default_factory=dict)
    satisfied: list[SubscriptionRequest] = field(default_factory=list)
    rejected: list[tuple[SubscriptionRequest, RejectionReason]] = field(
        default_factory=list
    )

    def tree(self, stream: StreamId) -> MulticastTree:
        """The tree for ``stream``, creating it (source-only) on first use."""
        existing = self.trees.get(stream)
        if existing is not None:
            return existing
        tree = MulticastTree(stream)
        self.trees[stream] = tree
        return tree

    def edges(self) -> Iterator[tuple[StreamId, int, int]]:
        """All (stream, parent, child) relay edges across the forest."""
        for stream, tree in self.trees.items():
            for parent, child in tree.edges():
                yield stream, parent, child

    def out_degree(self, node: int) -> int:
        """Total out-degree of ``node`` across all trees."""
        return sum(1 for _, parent, _ in self.edges() if parent == node)

    def in_degree(self, node: int) -> int:
        """Total in-degree of ``node`` across all trees."""
        return sum(1 for _, _, child in self.edges() if child == node)

    def relay_degree(self, node: int) -> int:
        """Out-edges of ``node`` carrying streams that originate elsewhere."""
        return sum(
            1
            for stream, parent, _ in self.edges()
            if parent == node and stream.site != node
        )

    def validate(self) -> None:
        """Validate every tree's structural invariants."""
        for tree in self.trees.values():
            tree.validate()

    def __str__(self) -> str:
        return (
            f"OverlayForest(trees={len(self.trees)}, "
            f"satisfied={len(self.satisfied)}, rejected={len(self.rejected)})"
        )
