"""Shared builder state: degrees and the reservation mechanism.

The forest's trees share each node's bandwidth, so the builder tracks
cross-tree state:

* ``din / dout`` — actual in/out degree of every RP across the forest;
* ``m_hat`` — the paper's ``m̂_i``: streams that originate at ``i``, are
  subscribed by at least one other RP, but have *not yet been
  disseminated out* to any node.  One outbound slot per such stream is
  reserved so a whole tree cannot fail because its source was saturated
  by other trees (Sec. 4.3.1);
* ``rfc_i = O_i - dout_i - m̂_i`` — remaining forwarding capacity, the
  load-balancing key of the basic node-join algorithm.
"""

from __future__ import annotations

from repro.errors import OverlayError
from repro.core.forest import MulticastTree
from repro.core.problem import ForestProblem
from repro.session.streams import StreamId


class _MirroredCounts(list):
    """A flat counts list that writes through to an optional array mirror.

    Reads stay C-speed list indexing (``__getitem__`` is not overridden,
    so the scalar parent-scan probes pay nothing); only ``__setitem__``
    carries the extra branch.  A vectorizing backend boxes its int64
    ndarray twin into :attr:`mirror`, after which *every* write — the
    builder choke points and direct test pokes alike — lands in both, so
    the mirror can never go stale.
    """

    __slots__ = ("mirror",)

    def __init__(self, values) -> None:
        super().__init__(values)
        self.mirror = None

    def __setitem__(self, index, value) -> None:
        list.__setitem__(self, index, value)
        if self.mirror is not None:
            self.mirror[index] = value


class BuilderState:
    """Cross-tree degree and reservation accounting for one build.

    **Reservation scope.**  ``m̂`` counts streams "not yet disseminated
    out ... in the existing forest".  A scheduler can only reserve
    outbound slots for trees it has *opened* (started constructing):
    a tree-at-a-time algorithm has no reservations standing for trees it
    has not reached yet, whereas RJ opens the whole forest at once and
    therefore protects every source's first dissemination from the
    start.  This difference is precisely what makes granularity matter
    (Sec. 5.3): small granularity lets early trees consume the outbound
    capacity later sources would have needed, causing whole-tree
    failures.  Builders open groups via :meth:`open_group` at the start
    of each construction phase.
    """

    def __init__(self, problem: ForestProblem, reservations: bool = True) -> None:
        self.problem = problem
        self.reservations = reservations
        # Flat lists indexed by node id: the parent-search inner loop
        # probes these per candidate, so they must be one C-level
        # indexing, not a hash lookup.
        n = problem.n_nodes
        self.din: list[int] = [0] * n
        # dout and m_hat feed the vectorized parent scan, so they carry
        # an optional write-through ndarray mirror (attached lazily by
        # the numpy backend; see ``backend._StateArrays``).
        self.dout: list[int] = _MirroredCounts([0] * n)
        # m_i is the static paper quantity (streams of i subscribed by
        # >= 1 other RP), precomputed per problem; m̂_i only grows as
        # groups are opened.
        self.m: list[int] = list(problem.m_table())
        self.m_hat: list[int] = _MirroredCounts([0] * n)
        self._in_limits = problem.inbound_limits()
        self._out_limits = problem.outbound_limits()
        self._opened: set[StreamId] = set()
        #: Backend-owned ``backend._StateArrays`` cache; ``None`` until a
        #: vectorized parent scan first needs it.
        self._arrays = None

    # -- reservation scope ---------------------------------------------------------

    def open_group(self, stream: StreamId) -> None:
        """Begin constructing ``stream``'s tree: reserve its source slot.

        Idempotent: opening an already-open group is a no-op.  With
        ``reservations=False`` only the opened-set bookkeeping happens
        (the no-reservation ablation).
        """
        if stream in self._opened:
            return
        self._opened.add(stream)
        if self.reservations:
            self.m_hat[stream.site] += 1

    def is_open(self, stream: StreamId) -> bool:
        """True once :meth:`open_group` has been called for ``stream``."""
        return stream in self._opened

    # -- queries -----------------------------------------------------------------

    def rfc(self, node: int) -> int:
        """Remaining forwarding capacity ``O_i - dout_i - m̂_i``."""
        return self._out_limits[node] - self.dout[node] - self.m_hat[node]

    def rfc_bulk(self):
        """``rfc`` for every node in one backend kernel.

        Returns the problem backend's vector type (a list on the python
        backend, an int64 ndarray on numpy); values are elementwise
        identical across backends.
        """
        return self.problem.array_backend.rfc_bulk(
            self._out_limits, self.dout, self.m_hat
        )

    def inbound_free(self, node: int) -> bool:
        """True while ``din_i < I_i``."""
        return self.din[node] < self._in_limits[node]

    def outbound_free(self, node: int) -> bool:
        """True while ``dout_i < O_i``."""
        return self.dout[node] < self._out_limits[node]

    # -- mutations ---------------------------------------------------------------

    def record_attach(self, tree: MulticastTree, parent: int, child: int) -> None:
        """Account for a new tree edge ``parent -> child``.

        Must be called *after* :meth:`MulticastTree.attach` so the tree's
        dissemination flag reflects the new edge.  When the edge is the
        first dissemination of the tree's stream, the source's reserved
        slot is released (``m̂`` decremented) — the reservation was spent
        on exactly this edge.
        """
        self.dout[parent] += 1
        self.din[child] += 1
        if (
            self.reservations
            and parent == tree.source
            and self._first_dissemination(tree)
        ):
            self.m_hat[tree.source] -= 1
            if self.m_hat[tree.source] < 0:
                raise OverlayError(
                    f"reservation underflow at node {tree.source} "
                    f"for stream {tree.stream}"
                )

    def record_detach(self, tree: MulticastTree, parent: int, child: int) -> None:
        """Account for a removed leaf edge (CO-RJ victim eviction).

        If the source no longer relays the stream to anyone, the stream
        is once again "not disseminated" and its reservation slot must be
        re-established.
        """
        self.dout[parent] -= 1
        self.din[child] -= 1
        if self.dout[parent] < 0 or self.din[child] < 0:
            raise OverlayError(
                f"degree underflow removing edge {parent}->{child} "
                f"for stream {tree.stream}"
            )
        if self.reservations and parent == tree.source and not tree.disseminated:
            self.m_hat[tree.source] += 1

    def _first_dissemination(self, tree: MulticastTree) -> bool:
        """True when the tree has exactly one source child (just added)."""
        return tree.child_count(tree.source) == 1

    # -- diagnostics ---------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`OverlayError` if any degree bound is violated."""
        for node in range(self.problem.n_nodes):
            if self.din[node] > self._in_limits[node]:
                raise OverlayError(
                    f"node {node} exceeds inbound bound: "
                    f"{self.din[node]} > {self._in_limits[node]}"
                )
            if self.dout[node] > self._out_limits[node]:
                raise OverlayError(
                    f"node {node} exceeds outbound bound: "
                    f"{self.dout[node]} > {self._out_limits[node]}"
                )
            if self.m_hat[node] < 0:
                raise OverlayError(f"negative m̂ at node {node}")

    def snapshot(self) -> dict[str, dict[int, int]]:
        """A defensive copy of the degree tables (for tests/metrics).

        Kept in the historical node-keyed dict form even though the
        live tables are flat lists.
        """
        return {
            "din": dict(enumerate(self.din)),
            "dout": dict(enumerate(self.dout)),
            "m": dict(enumerate(self.m)),
            "m_hat": dict(enumerate(self.m_hat)),
        }
