"""Tree-based algorithms: LTF, STF, MCTF (Sec. 4.3.2).

All three construct the forest one tree at a time — granularity 1 in the
language of Sec. 5.3 — and differ only in how the multicast groups are
ordered.  Within a group, requests are processed in a randomized order
(as specified at the top of Sec. 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.base import OverlayBuilder
from repro.core.model import MulticastGroup, SubscriptionRequest
from repro.core.problem import ForestProblem
from repro.util.rng import RngStream


@dataclass
class _TreeOrderedBuilder(OverlayBuilder):
    """Common machinery: one construction phase per multicast group.

    Because each phase opens only its own group, the source-slot
    reservations of trees further down the order are not yet standing —
    the defining property of granularity-1 construction (Sec. 5.3).
    """

    def phases(
        self, problem: ForestProblem, rng: RngStream
    ) -> Iterator[tuple[list[MulticastGroup], list[SubscriptionRequest]]]:
        for group in self.order_groups(problem):
            requests = group.requests()
            rng.shuffle(requests)
            yield [group], requests

    def order_groups(self, problem: ForestProblem) -> list[MulticastGroup]:
        """Subclasses order the groups; ties break by stream id."""
        raise NotImplementedError


@dataclass
class LargestTreeFirstBuilder(_TreeOrderedBuilder):
    """LTF: construct the largest multicast group first.

    Intuition (Sec. 4.3.2): if the last few trees cannot be built due to
    saturation, the rejected requests are few because the smallest trees
    are what remain.
    """

    name: str = "ltf"

    def order_groups(self, problem: ForestProblem) -> list[MulticastGroup]:
        """Groups by descending |G(s)|, ties by stream id."""
        return sorted(problem.groups, key=lambda g: (-g.size, g.stream))


@dataclass
class SmallestTreeFirstBuilder(_TreeOrderedBuilder):
    """STF: the reversed comparison baseline (smallest group first)."""

    name: str = "stf"

    def order_groups(self, problem: ForestProblem) -> list[MulticastGroup]:
        """Groups by ascending |G(s)|, ties by stream id."""
        return sorted(problem.groups, key=lambda g: (g.size, g.stream))


@dataclass
class MinCapacityTreeFirstBuilder(_TreeOrderedBuilder):
    """MCTF: hardest tree (least aggregate forwarding capacity) first.

    A node's forwarding capacity is ``O_i - m_i`` where ``m_i`` counts
    the streams originating at ``i`` that are subscribed by at least one
    other RP; a tree's capacity aggregates this over the nodes of its
    multicast group.  ``include_source`` optionally adds the source node
    to the aggregate (the paper's G(s) excludes it; the flag exists for
    ablation).
    """

    name: str = "mctf"
    include_source: bool = False

    def order_groups(self, problem: ForestProblem) -> list[MulticastGroup]:
        """Groups by ascending aggregate forwarding capacity."""
        return sorted(
            problem.groups,
            key=lambda g: (self.group_capacity(problem, g), g.stream),
        )

    def group_capacity(self, problem: ForestProblem, group: MulticastGroup) -> int:
        """Aggregate forwarding capacity of the group's nodes."""
        nodes = set(group.subscribers)
        if self.include_source:
            nodes.add(group.source)
        return sum(
            problem.outbound_limit(node) - problem.streams_to_send(node)
            for node in nodes
        )
