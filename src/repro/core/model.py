"""Core data model: requests, groups, rejection reasons (Table 1).

The paper's notation maps onto these types:

========================  =====================================================
Paper                     Here
========================  =====================================================
``r_i(s_j^q)``            :class:`SubscriptionRequest(subscriber=i, stream=s)`
``G(s)``                  :class:`MulticastGroup(stream=s, subscribers=...)`
``T_s``                   :class:`repro.core.forest.MulticastTree`
``F`` (number of groups)  ``len(problem.groups)``
``u_{i->j}``              ``problem.u(i, j)``
``I_i, O_i``              ``problem.inbound_limit / outbound_limit``
``B_cost``                ``problem.latency_bound_ms``
========================  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SubscriptionError
from repro.session.streams import StreamId


@dataclass(frozen=True, order=True)
class SubscriptionRequest:
    """The paper's ``r_i(s_j^q)``: RP ``i`` requests stream ``s_j^q``."""

    subscriber: int
    stream: StreamId

    def __post_init__(self) -> None:
        if self.subscriber < 0:
            raise SubscriptionError(f"negative subscriber index: {self.subscriber}")
        if self.subscriber == self.stream.site:
            raise SubscriptionError(
                f"site {self.subscriber} cannot subscribe to its own stream "
                f"{self.stream}"
            )

    @property
    def source(self) -> int:
        """Index ``j`` of the stream's originating site."""
        return self.stream.site

    def __str__(self) -> str:
        return f"r{self.subscriber}({self.stream})"


@dataclass(frozen=True)
class MulticastGroup:
    """The paper's ``G(s)``: the RPs that requested stream ``s``.

    The source node is *not* a member (it publishes rather than
    requests); the tree built for the group spans ``{source} ∪ members``.
    """

    stream: StreamId
    subscribers: frozenset[int]

    def __post_init__(self) -> None:
        if not self.subscribers:
            raise SubscriptionError(f"empty multicast group for {self.stream}")
        if self.stream.site in self.subscribers:
            raise SubscriptionError(
                f"source site {self.stream.site} cannot be a member of G({self.stream})"
            )

    @property
    def source(self) -> int:
        """The originating site of the group's stream."""
        return self.stream.site

    @property
    def size(self) -> int:
        """|G(s)| — the number of requesting RPs (tree size metric)."""
        return len(self.subscribers)

    def requests(self) -> list[SubscriptionRequest]:
        """The group's requests in deterministic (sorted) order.

        The expansion is cached on the (frozen) group; each call returns
        a fresh list so callers may reorder it freely.
        """
        cached = getattr(self, "_requests", None)
        if cached is None:
            cached = tuple(
                SubscriptionRequest(subscriber=i, stream=self.stream)
                for i in sorted(self.subscribers)
            )
            object.__setattr__(self, "_requests", cached)
        return list(cached)

    def __str__(self) -> str:
        members = ",".join(str(i) for i in sorted(self.subscribers))
        return f"G({self.stream})={{{members}}}"


class RejectionReason(enum.Enum):
    """Why a subscription request was rejected."""

    #: The subscriber's inbound degree bound ``I_i`` is saturated.
    INBOUND_SATURATED = "inbound-saturated"
    #: No eligible parent exists in the tree (out-degree or latency).
    TREE_SATURATED = "tree-saturated"
    #: CO-RJ evicted this previously-satisfied request in a swap.
    VICTIM_SWAPPED = "victim-swapped"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value
