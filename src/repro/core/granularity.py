"""Gran-LTF: the granularity spectrum between tree-based and randomized.

Sec. 5.3 observes that LTF/STF/MCTF (one tree at a time) and RJ (the
whole forest at once) are two extremes of a spectrum parameterized by the
**granularity** ``g`` — the number of trees an algorithm attempts to
construct at once (``1 <= g <= F``).

Gran-LTF sorts the multicast groups by descending size (as LTF does),
then repeatedly takes the next ``g`` groups and processes the union of
their requests in a random order.  ``g = 1`` reduces to LTF and ``g = F``
to RJ (modulo the shuffle order drawn from the RNG).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigurationError
from repro.core.base import OverlayBuilder
from repro.core.model import MulticastGroup, SubscriptionRequest
from repro.core.problem import ForestProblem
from repro.util.rng import RngStream


@dataclass
class GranularityBuilder(OverlayBuilder):
    """Gran-LTF with batch size ``granularity``.

    ``granularity`` is clamped to ``F`` at build time (so a single
    builder instance can be swept across problems of different sizes).
    """

    granularity: int = 1
    name: str = "gran-ltf"

    def __post_init__(self) -> None:
        if self.granularity < 1:
            raise ConfigurationError(
                f"granularity must be >= 1, got {self.granularity}"
            )

    def phases(
        self, problem: ForestProblem, rng: RngStream
    ) -> Iterator[tuple[list[MulticastGroup], list[SubscriptionRequest]]]:
        groups = sorted(problem.groups, key=lambda g: (-g.size, g.stream))
        g = min(self.granularity, max(1, len(groups)))
        for start in range(0, len(groups), g):
            batch = groups[start : start + g]
            requests: list[SubscriptionRequest] = []
            for group in batch:
                requests.extend(group.requests())
            rng.shuffle(requests)
            yield batch, requests
