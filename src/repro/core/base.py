"""Builder framework: the template shared by every overlay algorithm.

All algorithms in the paper construct trees *incrementally*: each
subscription request is processed by the basic node-join algorithm, and
the algorithms differ only in the **order** requests are scheduled
(tree-by-tree for LTF/STF/MCTF, batches for Gran-LTF, fully shuffled for
RJ) and in what happens **on rejection** (CO-RJ's victim swap).  The
:class:`OverlayBuilder` template captures exactly those two extension
points.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.forest import OverlayForest
from repro.core.model import MulticastGroup, RejectionReason, SubscriptionRequest
from repro.core.node_join import JoinOutcome, ParentPolicy, try_join
from repro.core.problem import ForestProblem
from repro.core.state import BuilderState
from repro.util.rng import RngStream


@dataclass
class BuildResult:
    """Everything produced by one overlay construction run."""

    problem: ForestProblem
    forest: OverlayForest
    state: BuilderState
    algorithm: str
    _u_hat_cache: dict[int, dict[int, int]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def satisfied(self) -> list[SubscriptionRequest]:
        """Requests that received a tree edge."""
        return self.forest.satisfied

    @property
    def rejected(self) -> list[tuple[SubscriptionRequest, RejectionReason]]:
        """Requests rejected, with their reasons."""
        return self.forest.rejected

    @property
    def total_requests(self) -> int:
        """Satisfied + rejected (every request is accounted exactly once)."""
        return len(self.satisfied) + len(self.rejected)

    def u_hat_matrix(self) -> dict[int, dict[int, int]]:
        """The paper's ``û_{i->j}``: rejected request counts per pair.

        Computed once per result and cached — the correlation metrics
        probe it per (i, j) pair, which used to rescan the full rejected
        list every call.  Code that mutates :attr:`satisfied` or
        :attr:`rejected` after construction (CO-RJ repair sweeps,
        incremental maintenance) must call :meth:`invalidate_caches`.
        The returned rows are the cache itself; treat them as read-only.
        """
        if self._u_hat_cache is None:
            u_hat: dict[int, dict[int, int]] = {}
            for request, _ in self.rejected:
                row = u_hat.setdefault(request.subscriber, {})
                row[request.source] = row.get(request.source, 0) + 1
            self._u_hat_cache = u_hat
        return self._u_hat_cache

    def u_hat(self, subscriber: int, source: int) -> int:
        """``û_{i->j}`` for one (subscriber, source) pair."""
        return self.u_hat_matrix().get(subscriber, {}).get(source, 0)

    def invalidate_caches(self) -> None:
        """Drop derived caches after mutating the satisfied/rejected lists."""
        self._u_hat_cache = None

    def verify(self) -> None:
        """Validate structural and constraint invariants of the result.

        Checks tree structure, degree bounds, the latency bound for every
        satisfied request, and that the request accounting is exact.
        """
        self.forest.validate()
        self.state.check_invariants()
        bound = self.problem.latency_bound_ms
        for request in self.satisfied:
            tree = self.forest.trees[request.stream]
            cost = tree.cost_from_source(request.subscriber)
            if cost >= bound:
                raise AssertionError(
                    f"satisfied request {request} violates latency bound: "
                    f"{cost} >= {bound}"
                )
        expected = self.problem.total_requests()
        if self.total_requests != expected:
            raise AssertionError(
                f"request accounting mismatch: {self.total_requests} processed, "
                f"{expected} in problem"
            )


@dataclass
class OverlayBuilder(abc.ABC):
    """Template for all overlay-construction algorithms.

    Construction proceeds in **phases**: each phase names the multicast
    groups it *opens* (establishing their sources' outbound
    reservations, see :class:`~repro.core.state.BuilderState`) and the
    request order within the phase.  Tree-based algorithms open one
    group per phase; Gran-LTF opens ``g`` at a time; RJ opens the whole
    forest in a single phase — which is why RJ's reservations protect
    every tree while tree-at-a-time scheduling cannot reserve for trees
    it has not reached.

    Subclasses implement :meth:`phases`; CO-RJ additionally overrides
    :meth:`on_rejected`.
    """

    parent_policy: ParentPolicy = field(default=ParentPolicy.MAX_RFC)

    #: Reservation scope for the m̂ mechanism (see DESIGN.md):
    #:
    #: * ``"lazy"`` (default) — a group's source slot is reserved from
    #:   the moment its first request enters processing until the stream
    #:   is first disseminated; trees not yet reached hold no
    #:   reservations.  This is the reading of Sec. 4.3.1 consistent
    #:   with the paper's own evaluation (monotone granularity gains,
    #:   RJ competitive at high load).
    #: * ``"phase"`` — reservations stand for every group of the current
    #:   construction phase (batch semantics).
    #: * ``"global"`` — every group reserved up front (ablation; makes
    #:   big-batch algorithms hoard capacity).
    #: * ``"off"`` — no reservations (ablation).
    reservation_mode: str = field(default="lazy")

    #: Subclasses override with the paper's algorithm name.
    name: str = "abstract"

    _RESERVATION_MODES = ("lazy", "phase", "global", "off")

    @abc.abstractmethod
    def phases(
        self, problem: ForestProblem, rng: RngStream
    ) -> Iterable[tuple[list[MulticastGroup], list[SubscriptionRequest]]]:
        """Yield (groups opened, ordered requests) per construction phase.

        Across all phases every group and every request of ``problem``
        must appear exactly once.
        """

    def build(self, problem: ForestProblem, rng: RngStream) -> BuildResult:
        """Run the algorithm on ``problem``; deterministic given ``rng``."""
        if self.reservation_mode not in self._RESERVATION_MODES:
            raise ValueError(
                f"reservation_mode must be one of {self._RESERVATION_MODES}, "
                f"got {self.reservation_mode!r}"
            )
        forest = OverlayForest()
        state = BuilderState(
            problem, reservations=self.reservation_mode != "off"
        )
        if self.reservation_mode == "global":
            for group in problem.groups:
                state.open_group(group.stream)
        scheduled = 0
        for groups, requests in self.phases(problem, rng):
            if self.reservation_mode == "phase":
                for group in groups:
                    state.open_group(group.stream)
            for request in requests:
                # "lazy"/"off": a group opens when its first request is
                # processed (for "off" this is pure bookkeeping).
                state.open_group(request.stream)
                scheduled += 1
                self._process(problem, state, forest, request)
        result = BuildResult(
            problem=problem, forest=forest, state=state, algorithm=self.name
        )
        if scheduled != problem.total_requests():
            raise AssertionError(
                f"{self.name} scheduled {scheduled} requests, problem has "
                f"{problem.total_requests()}"
            )
        return result

    # -- template internals --------------------------------------------------------

    def _process(
        self,
        problem: ForestProblem,
        state: BuilderState,
        forest: OverlayForest,
        request: SubscriptionRequest,
    ) -> JoinOutcome:
        """Join one request and record the outcome."""
        tree = forest.tree(request.stream)
        outcome = try_join(
            problem, state, tree, request.subscriber, policy=self.parent_policy
        )
        if outcome.accepted:
            forest.satisfied.append(request)
        else:
            handled = self.on_rejected(problem, state, forest, request, outcome)
            if not handled:
                forest.rejected.append((request, outcome.reason))
        return outcome

    def on_rejected(
        self,
        problem: ForestProblem,
        state: BuilderState,
        forest: OverlayForest,
        request: SubscriptionRequest,
        outcome: JoinOutcome,
    ) -> bool:
        """Rejection hook.

        Return True when the subclass fully handled the request
        (recording it as satisfied or rejected itself); False to let the
        template record the rejection.  The base implementation does
        nothing.
        """
        return False
