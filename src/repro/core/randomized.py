"""The randomized algorithm RJ ("Random Join", Sec. 4.3.3).

RJ simply randomizes **all** requests of the whole forest, with no
prioritization of any tree — granularity ``F`` in the spectrum of
Sec. 5.3.  Each request is still processed by the basic node-join
algorithm.  The paper finds that this achieves the best load balancing
in the dense 3DTI setting: a node congested early in one tree no longer
dooms the trees constructed after it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.base import OverlayBuilder
from repro.core.model import MulticastGroup, SubscriptionRequest
from repro.core.problem import ForestProblem
from repro.util.rng import RngStream


@dataclass
class RandomJoinBuilder(OverlayBuilder):
    """RJ: one global phase with every request shuffled together.

    Opening the whole forest at once also means every source's
    first-dissemination slot is reserved from the start — tree-at-a-time
    algorithms cannot do this for trees they have not reached, which is
    the structural reason RJ avoids whole-tree losses.
    """

    name: str = "rj"

    def phases(
        self, problem: ForestProblem, rng: RngStream
    ) -> Iterator[tuple[list[MulticastGroup], list[SubscriptionRequest]]]:
        requests = problem.all_requests()
        rng.shuffle(requests)
        yield list(problem.groups), requests
