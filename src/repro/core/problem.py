"""The Forest Construction Problem instance (Sec. 4.2).

A :class:`ForestProblem` bundles everything an overlay builder needs:

* the completely-connected RP graph with latency edge costs ``c(e)``;
* per-node in/out degree bounds ``I(v)``, ``O(v)`` in stream units;
* the multicast groups ``G(s)`` derived from the workload;
* the end-to-end latency bound ``B_cost``.

Finding a forest satisfying two or more such constraints is NP-complete
(Wang & Crowcroft, cited in the paper), hence the heuristics in the
sibling modules.

Problems are assembled two ways.  :meth:`ForestProblem.from_workload`
builds everything from scratch — O(N²) for the dense cost/limit tables
— which is the right cost to pay once per session but dominated control
rounds when paid every round.  :meth:`ForestProblem.evolve` instead
carries the previous round's dense cost matrix and limit tables forward
(they are session constants) and patches only what the workload diff
changed: joined/departed sites' groups and edited subscriptions.  The
evolved problem is equivalent to the from-scratch one — same costs,
limits, groups, ``u`` and ``m`` tables — so builders produce
bit-identical forests on it; the equivalence suite pins this per
scenario × seed × algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ConfigurationError, SubscriptionError
from repro.core.backend import ArrayBackend, resolve_backend
from repro.core.model import MulticastGroup, SubscriptionRequest
from repro.session.session import TISession
from repro.topology.dense import DenseCostMatrix
from repro.session.streams import StreamId
from repro.workload.spec import SubscriptionWorkload

#: Shared empty row handed out for subscribers with no requests.
_EMPTY_U_ROW: dict[int, int] = {}


class _CostRow(dict):
    """One ``cost[a]`` row that writes through to the dense matrix.

    The problem's dense matrix is the authoritative store for the hot
    paths; tests (and exploratory code) historically tweak entries via
    ``problem.cost[a][b] = x``, so assignments propagate.
    """

    __slots__ = ("_matrix", "_row_index")

    def __init__(self, data: Mapping, matrix: DenseCostMatrix, row_index: int):
        super().__init__(data)
        self._matrix = matrix
        self._row_index = row_index

    def __setitem__(self, key, value) -> None:
        if not isinstance(key, int) or not 0 <= key < self._matrix.n:
            # A silent dict-only write would diverge from the dense
            # matrix the hot paths actually read.
            raise ConfigurationError(
                f"unknown node {key!r} in cost row {self._row_index} "
                f"(nodes are 0..{self._matrix.n - 1})"
            )
        super().__setitem__(key, value)
        self._matrix.set_cost(self._row_index, key, value)

    def update(self, *args, **kwargs) -> None:
        for key, value in dict(*args, **kwargs).items():
            self[key] = value

    def setdefault(self, key, default=None):
        if key not in self:
            self[key] = default
        return self[key]

    def __ior__(self, other):
        self.update(other)
        return self


class _LazyCostTable(dict):
    """A ``cost[a][b]`` surface materialized on demand from the dense matrix.

    The trusted assembly path (:meth:`ForestProblem.from_workload`)
    builds the dense matrix directly from the session; materializing the
    full dict-of-dicts up front costs O(N²) time and memory that nothing
    on the hot paths ever reads.  Rows appear (as write-through
    :class:`_CostRow` views) the first time test-land code indexes them;
    iteration surfaces behave like the fully-populated dict.
    """

    __slots__ = ("_matrix",)

    def __init__(self, matrix: DenseCostMatrix):
        super().__init__()
        self._matrix = matrix

    def __missing__(self, key):
        if isinstance(key, int) and 0 <= key < self._matrix.n:
            row = self._matrix.row(key)
            view = _CostRow(
                {j: row[j] for j in range(self._matrix.n)}, self._matrix, key
            )
            dict.__setitem__(self, key, view)
            return view
        raise KeyError(key)

    def __len__(self) -> int:
        return self._matrix.n

    def __iter__(self):
        return iter(range(self._matrix.n))

    def __contains__(self, key) -> bool:
        return isinstance(key, int) and 0 <= key < self._matrix.n

    def get(self, key, default=None):
        return self[key] if key in self else default

    def keys(self):
        return range(self._matrix.n)

    def values(self):
        return [self[i] for i in range(self._matrix.n)]

    def items(self):
        return [(i, self[i]) for i in range(self._matrix.n)]


class _LimitTable(dict):
    """A degree-bound table that writes through to its flat list twin.

    The hot paths (parent search, CO-RJ victim scan, builder-state
    probes) index the flat list; the dict stays the public, test-visible
    surface, so mutations like ``problem.inbound[v] = 0`` must stay
    visible to both.  ``update``/``setdefault`` route through
    ``__setitem__`` for the same reason, and entry removal is refused —
    every node 0..n-1 must keep a bound.

    Evolved problems get copy-on-write views (:meth:`cow_view`): the
    flat twin is shared with the ancestor round until the first write,
    which forks it — so ``problem.inbound[v] = 0`` on round *t* can
    never leak into round *t-1*'s retained problem.
    """

    __slots__ = ("_flat", "_owns", "_arr_cell")

    def __init__(
        self,
        data: Mapping,
        flat: list[int],
        owns: bool = True,
        arr_cell: "list | None" = None,
    ):
        super().__init__(data)
        self._flat = flat
        self._owns = owns
        # Backend-owned ndarray mirror of ``_flat``, boxed so every
        # table sharing the flat twin shares the mirror too (see
        # ``NumpyBackend.limits_array``).  Writes drop it; the
        # copy-on-write fork re-boxes, leaving the ancestor's intact.
        self._arr_cell = [None] if arr_cell is None else arr_cell

    def cow_view(self) -> "_LimitTable":
        """An independent dict copy sharing the flat twin until written."""
        return type(self)(self, self._flat, owns=False, arr_cell=self._arr_cell)

    def __setitem__(self, key, value) -> None:
        flat = self._flat
        if not isinstance(key, int) or not 0 <= key < len(flat):
            # A silent dict-only write would diverge from the flat twin
            # the hot paths actually read.
            raise ConfigurationError(
                f"unknown node {key!r} in degree-bound table "
                f"(nodes are 0..{len(flat) - 1})"
            )
        if not self._owns:
            flat = self._flat = list(flat)
            self._owns = True
            self._arr_cell = [None]
        super().__setitem__(key, value)
        flat[key] = value
        self._arr_cell[0] = None

    def update(self, *args, **kwargs) -> None:
        for key, value in dict(*args, **kwargs).items():
            self[key] = value

    def setdefault(self, key, default=None):
        if key not in self:
            self[key] = default
        return self[key]

    def __ior__(self, other):
        self.update(other)
        return self

    def _refuse_drop(self, *args):
        raise ConfigurationError(
            "degree-bound tables cannot drop entries; set the bound to 0 "
            "instead"
        )

    __delitem__ = _refuse_drop
    pop = _refuse_drop
    popitem = _refuse_drop
    clear = _refuse_drop


@dataclass(frozen=True)
class ProblemDelta:
    """Group-level difference between two rounds' workloads.

    ``added`` are streams newly requested (their whole group is new),
    ``removed`` the full groups of streams nobody requests any more, and
    ``changed`` pairs ``(old, new)`` groups of streams whose subscriber
    set was edited.  Streams whose group is identical across rounds do
    not appear at all — that is the steady-state bulk the diffed
    assembly never touches.
    """

    added: tuple[MulticastGroup, ...] = ()
    removed: tuple[MulticastGroup, ...] = ()
    changed: tuple[tuple[MulticastGroup, MulticastGroup], ...] = ()

    @property
    def empty(self) -> bool:
        """True when the two workloads produced identical groups."""
        return not (self.added or self.removed or self.changed)

    @property
    def touched_groups(self) -> int:
        """How many groups the delta patches (reporting/diagnostics)."""
        return len(self.added) + len(self.removed) + len(self.changed)

    @classmethod
    def between(
        cls,
        old: Sequence[MulticastGroup],
        new: Sequence[MulticastGroup],
    ) -> "ProblemDelta":
        """Diff two group lists (each keyed by stream)."""
        old_by = {group.stream: group for group in old}
        new_streams = set()
        added: list[MulticastGroup] = []
        changed: list[tuple[MulticastGroup, MulticastGroup]] = []
        for group in new:
            new_streams.add(group.stream)
            before = old_by.get(group.stream)
            if before is None:
                added.append(group)
            elif before.subscribers != group.subscribers:
                changed.append((before, group))
        removed = tuple(
            group for group in old if group.stream not in new_streams
        )
        return cls(added=tuple(added), removed=removed, changed=tuple(changed))


@dataclass
class ForestProblem:
    """One overlay-construction instance over RP nodes ``0..n_nodes-1``."""

    n_nodes: int
    cost: dict[int, dict[int, float]]
    inbound: dict[int, int]
    outbound: dict[int, int]
    groups: list[MulticastGroup]
    latency_bound_ms: float
    backend: "str | ArrayBackend | None" = None

    def __post_init__(self) -> None:
        self._backend = resolve_backend(self.backend)
        if self.n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.latency_bound_ms <= 0:
            raise ConfigurationError(
                f"latency_bound_ms must be positive, got {self.latency_bound_ms}"
            )
        dense_rows: list[list[float]] = []
        inbound_limits: list[int] = []
        outbound_limits: list[int] = []
        for node in range(self.n_nodes):
            if node not in self.inbound or node not in self.outbound:
                raise ConfigurationError(f"missing degree bounds for node {node}")
            if self.inbound[node] < 0 or self.outbound[node] < 0:
                raise ConfigurationError(f"negative degree bound at node {node}")
            inbound_limits.append(self.inbound[node])
            outbound_limits.append(self.outbound[node])
            row = self.cost.get(node)
            if row is None:
                raise ConfigurationError(f"missing cost row for node {node}")
            dense_row: list[float] = []
            for other in range(self.n_nodes):
                if other not in row:
                    raise ConfigurationError(f"missing cost entry {node}->{other}")
                value = row[other]
                if value < 0:
                    raise ConfigurationError(f"negative cost {node}->{other}")
                dense_row.append(value)
            dense_rows.append(dense_row)
        # Contiguous form consumed by every latency probe below.  The
        # ``cost`` rows become write-through views so in-place tweaks
        # stay visible to the dense matrix.
        self._dense = DenseCostMatrix(dense_rows, backend=self._backend)
        self.cost = {
            node: _CostRow(self.cost[node], self._dense, node)
            for node in range(self.n_nodes)
        }
        # Flat, node-indexed limit twins for the hot paths; the dicts
        # above become write-through views so test-land tweaks like
        # ``problem.inbound[v] = 0`` stay visible to both surfaces.
        self.inbound = _LimitTable(self.inbound, inbound_limits)
        self.outbound = _LimitTable(self.outbound, outbound_limits)
        seen_streams: set[StreamId] = set()
        for group in self.groups:
            if group.stream in seen_streams:
                raise SubscriptionError(f"duplicate group for stream {group.stream}")
            seen_streams.add(group.stream)
            self._check_group(group)
        self._u: dict[int, dict[int, int]] = self._compute_u()
        self._m_table: list[int] = self._compute_m()
        self._requests_cache: tuple[SubscriptionRequest, ...] | None = None
        self._streams_by_source: dict[int, tuple[StreamId, ...]] | None = None

    def _check_group(self, group: MulticastGroup) -> None:
        if not 0 <= group.source < self.n_nodes:
            raise SubscriptionError(
                f"group source {group.source} out of range for {group.stream}"
            )
        for member in group.subscribers:
            if not 0 <= member < self.n_nodes:
                raise SubscriptionError(
                    f"group member {member} out of range for {group.stream}"
                )

    # -- derived data ------------------------------------------------------------

    def _compute_u(self) -> dict[int, dict[int, int]]:
        u: dict[int, dict[int, int]] = {}
        for group in self.groups:
            for member in group.subscribers:
                row = u.setdefault(member, {})
                row[group.source] = row.get(group.source, 0) + 1
        return u

    def _compute_m(self) -> list[int]:
        m = [0] * self.n_nodes
        for group in self.groups:
            m[group.source] += 1
        return m

    @property
    def n_groups(self) -> int:
        """The paper's ``F`` — number of trees the forest must contain."""
        return len(self.groups)

    def u(self, subscriber: int, source: int) -> int:
        """``u_{i->j}``: streams of ``source`` requested by ``subscriber``."""
        return self._u.get(subscriber, _EMPTY_U_ROW).get(source, 0)

    def u_row(self, subscriber: int) -> Mapping[int, int]:
        """``subscriber``'s sparse ``u`` row, fetched once (read-only).

        The CO-RJ victim scan probes ``u_{i->k}`` for every constructed
        tree; handing out the row saves one dict hop per probe.
        """
        return self._u.get(subscriber, _EMPTY_U_ROW)

    def u_matrix(self) -> dict[int, dict[int, int]]:
        """A copy of the full (sparse) ``u`` matrix."""
        return {i: dict(row) for i, row in self._u.items()}

    def total_requests(self) -> int:
        """Total number of subscription requests across all groups."""
        return sum(group.size for group in self.groups)

    def all_requests(self) -> list[SubscriptionRequest]:
        """Every request, grouped by stream, in deterministic order.

        Groups are immutable after construction, so the expansion is
        computed once; each call returns a fresh list (builders shuffle
        it in place).
        """
        cached = self._requests_cache
        if cached is None:
            out: list[SubscriptionRequest] = []
            for group in sorted(self.groups, key=lambda g: g.stream):
                out.extend(group.requests())
            cached = self._requests_cache = tuple(out)
        return list(cached)

    def streams_by_source(self) -> dict[int, tuple[StreamId, ...]]:
        """Streams grouped by publishing site (cached, read-only).

        The CO-RJ victim scan enumerates candidate trees per *site* of
        the subscriber's ``u`` row; this index turns that from a probe
        over every constructed tree into a probe over the handful of
        streams those sites publish.
        """
        by = self._streams_by_source
        if by is None:
            acc: dict[int, list[StreamId]] = {}
            for group in self.groups:
                acc.setdefault(group.source, []).append(group.stream)
            by = self._streams_by_source = {
                source: tuple(streams) for source, streams in acc.items()
            }
        return by

    def edge_cost(self, a: int, b: int) -> float:
        """Latency cost ``c(a, b)`` between two RP nodes."""
        return self._dense.edge_cost(a, b)

    def costs_row(self, node: int) -> list[float]:
        """Costs *from* ``node`` to every node, indexable by node id.

        Returns the shared dense row — callers must not mutate it.
        """
        return self._dense.row(node)

    def costs_to(self, node: int) -> list[float]:
        """Costs *to* ``node`` from every node (dense column, read-only).

        This is the parent-search access pattern: one bulk fetch, then
        O(1) probes per candidate instead of two dict hops each.
        """
        return self._dense.column(node)

    def dense_cost_matrix(self) -> DenseCostMatrix:
        """The shared dense cost matrix (read-only)."""
        return self._dense

    @property
    def array_backend(self) -> ArrayBackend:
        """The resolved array backend shared by this problem's structures."""
        return self._backend

    def inbound_limit(self, node: int) -> int:
        """``I(node)`` in stream units."""
        return self.inbound._flat[node]

    def outbound_limit(self, node: int) -> int:
        """``O(node)`` in stream units."""
        return self.outbound._flat[node]

    def inbound_limits(self) -> list[int]:
        """``I`` for every node, indexable by node id (shared, read-only)."""
        return self.inbound._flat

    def outbound_limits(self) -> list[int]:
        """``O`` for every node, indexable by node id (shared, read-only).

        This is the parent-search access pattern: one bulk fetch, then
        O(1) probes per candidate instead of a dict hop each.
        """
        return self.outbound._flat

    def streams_to_send(self, node: int) -> int:
        """The paper's ``m_i``: streams of ``node`` wanted by >= 1 other RP.

        Served from a per-node table computed once at construction (and
        patched by :meth:`evolve`) instead of rescanning every group.
        """
        if not 0 <= node < self.n_nodes:
            return 0
        return self._m_table[node]

    def m_table(self) -> list[int]:
        """``m_i`` for every node, indexable by node id (shared, read-only)."""
        return self._m_table

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_workload(
        cls,
        session: TISession,
        workload: SubscriptionWorkload,
        latency_bound_ms: float,
    ) -> "ForestProblem":
        """Assemble a problem instance from a session and one workload sample.

        The session's cost matrix is topology-derived (validated dense,
        non-negative by construction), so this path skips the O(N²)
        entry-by-entry re-validation of the table constructor and builds
        the dense matrix directly; the dict-of-dicts ``cost`` surface is
        materialized lazily for test-land consumers.
        """
        if workload.n_sites != session.n_sites:
            raise SubscriptionError(
                f"workload covers {workload.n_sites} sites but session has "
                f"{session.n_sites}"
            )
        for site, streams in workload.subscriptions.items():
            for stream in streams:
                if stream not in session.registry:
                    raise SubscriptionError(
                        f"site {site} subscribes to unpublished stream {stream}"
                    )
        if latency_bound_ms <= 0:
            raise ConfigurationError(
                f"latency_bound_ms must be positive, got {latency_bound_ms}"
            )
        groups = [
            MulticastGroup(stream=stream, subscribers=members)
            for stream, members in sorted(workload.groups().items())
        ]
        n_nodes = session.n_sites
        backend = session.array_backend
        problem = cls.__new__(cls)
        problem.n_nodes = n_nodes
        problem.latency_bound_ms = latency_bound_ms
        problem.backend = backend
        problem._backend = backend
        # Own copy of the session rows: problems may be cost-tweaked in
        # place (tests, what-if probes) without touching the session.
        rows = [list(row) for row in session.dense_cost_matrix().rows()]
        problem._dense = DenseCostMatrix(rows, backend=backend)
        problem.cost = _LazyCostTable(problem._dense)
        inbound = {s.index: s.rp.inbound_limit for s in session.sites}
        outbound = {s.index: s.rp.outbound_limit for s in session.sites}
        problem.inbound = _LimitTable(
            inbound, [inbound[i] for i in range(n_nodes)]
        )
        problem.outbound = _LimitTable(
            outbound, [outbound[i] for i in range(n_nodes)]
        )
        problem.groups = groups
        for group in groups:
            problem._check_group(group)
        problem._u = problem._compute_u()
        problem._m_table = problem._compute_m()
        problem._requests_cache = None
        problem._streams_by_source = None
        return problem

    @classmethod
    def from_tables(
        cls,
        cost: Mapping[int, Mapping[int, float]],
        inbound: Mapping[int, int],
        outbound: Mapping[int, int],
        group_members: Mapping[StreamId, frozenset[int] | set[int]],
        latency_bound_ms: float,
    ) -> "ForestProblem":
        """Assemble a problem directly from explicit tables (tests, examples)."""
        n_nodes = len(inbound)
        groups = [
            MulticastGroup(stream=stream, subscribers=frozenset(members))
            for stream, members in sorted(group_members.items())
        ]
        return cls(
            n_nodes=n_nodes,
            cost={i: dict(row) for i, row in cost.items()},
            inbound=dict(inbound),
            outbound=dict(outbound),
            groups=groups,
            latency_bound_ms=latency_bound_ms,
        )

    @classmethod
    def evolve(
        cls,
        prev: "ForestProblem",
        workload: SubscriptionWorkload,
    ) -> "ForestProblem":
        """Diffed assembly: patch ``prev`` into the next round's problem.

        Costs and degree bounds are per-session constants, so the new
        problem *shares* the previous one's dense cost matrix (including
        its lazily-built transpose), write-through cost rows and limit
        tables — none of the O(N²) work of :meth:`from_workload` is
        repeated.  Only the multicast groups are rebuilt from
        ``workload`` (unchanged groups reuse the previous objects), and
        the derived ``u`` and ``m`` tables are patched copy-on-write for
        exactly the groups the diff touches.

        The result is equivalent to a from-scratch assembly of the same
        workload: equal costs, limits, groups, ``u`` and ``m``, hence
        bit-identical build results under the same RNG.  Cost tables are
        shared (tweaks like ``problem.cost[a][b] = x`` are visible across
        every problem evolved from the same ancestor — the control plane
        treats them as read-only); limit tables are copy-on-write views,
        so ``problem.inbound[v] = 0`` on the evolved problem forks its
        table instead of corrupting the previous round's.

        Unlike :meth:`from_workload`, ``evolve`` has no session to
        check subscriptions against, so streams are **caller-trusted**:
        only node-id ranges are validated.  The membership server
        satisfies this by construction (``global_workload`` drops
        subscriptions whose publisher never advertised, and
        advertisements are validated against the registry on arrival);
        direct callers feeding unfiltered workloads should assemble
        from scratch to keep the unpublished-stream check.
        """
        if workload.n_sites != prev.n_nodes:
            raise SubscriptionError(
                f"workload covers {workload.n_sites} sites but the previous "
                f"problem has {prev.n_nodes}"
            )
        # Unchanged streams reuse the previous MulticastGroup (identity
        # reuse, no re-validation); ProblemDelta.between is the single
        # diff implementation — its extra O(groups) pass is negligible
        # next to the O(N²) this path avoids.
        old_by = {group.stream: group for group in prev.groups}
        groups: list[MulticastGroup] = []
        for stream, members in sorted(workload.groups().items()):
            old = old_by.get(stream)
            if old is not None and old.subscribers == members:
                groups.append(old)
            else:
                groups.append(MulticastGroup(stream=stream, subscribers=members))
        return cls.evolve_delta(prev, ProblemDelta.between(prev.groups, groups))

    @classmethod
    def evolve_delta(
        cls,
        prev: "ForestProblem",
        delta: ProblemDelta,
    ) -> "ForestProblem":
        """Diffed assembly from a caller-supplied group delta.

        The O(churn) counterpart of :meth:`evolve`: instead of walking a
        freshly-assembled workload to discover what changed, the caller
        hands over the :class:`ProblemDelta` directly (the membership
        server derives it from its dirty-tracked registrations).  The
        group list is merged from ``prev.groups`` and the delta with
        pointer work only — an empty delta shares every derived table
        with ``prev`` untouched.

        The delta is **caller-trusted** to be consistent with ``prev``:
        ``added`` streams must not already have a group, ``removed`` /
        ``changed`` old groups must be the previous round's objects for
        their streams.  Only node-id ranges of the incoming groups are
        validated (exactly what :meth:`evolve` validates).
        """
        problem = cls.__new__(cls)
        problem.n_nodes = prev.n_nodes
        problem.cost = prev.cost
        # Copy-on-write limit views: the dict surface is per-round, the
        # flat twin is shared with ``prev`` until the first write forks
        # it — so round-t tweaks can never leak into round t-1.
        problem.inbound = prev.inbound.cow_view()
        problem.outbound = prev.outbound.cow_view()
        problem.latency_bound_ms = prev.latency_bound_ms
        problem.backend = prev.backend
        problem._backend = prev._backend
        problem._dense = prev._dense
        problem._requests_cache = None
        problem._streams_by_source = None
        if delta.empty:
            problem.groups = list(prev.groups)
            problem._u = prev._u
            problem._m_table = prev._m_table
            return problem
        for group in delta.added:
            problem._check_group(group)
        for _old, group in delta.changed:
            problem._check_group(group)
        removed_streams = {group.stream for group in delta.removed}
        changed_by = {old.stream: new for old, new in delta.changed}
        groups = [
            changed_by.get(group.stream, group)
            for group in prev.groups
            if group.stream not in removed_streams
        ]
        if delta.added:
            # Both halves are stream-sorted, so this is a near-sorted
            # merge — Timsort handles it in O(groups).
            groups.extend(delta.added)
            groups.sort(key=lambda g: g.stream)
        problem.groups = groups
        problem._u = cls._patch_u(prev._u, delta)
        m_table = list(prev._m_table)
        prev._backend.apply_count_deltas(
            m_table,
            [(group.source, -1) for group in delta.removed]
            + [(group.source, +1) for group in delta.added],
        )
        problem._m_table = m_table
        return problem

    @staticmethod
    def _patch_u(
        prev_u: dict[int, dict[int, int]], delta: ProblemDelta
    ) -> dict[int, dict[int, int]]:
        """Apply a group delta to the sparse ``u`` matrix, copy-on-write.

        Untouched rows are shared with the previous problem; touched
        rows are copied before editing and zero entries are dropped, so
        the patched matrix equals a from-scratch :meth:`_compute_u`.
        """
        u = dict(prev_u)
        touched: set[int] = set()

        def row_of(member: int) -> dict[int, int]:
            if member not in touched:
                u[member] = dict(u.get(member, _EMPTY_U_ROW))
                touched.add(member)
            return u[member]

        for group in delta.removed:
            source = group.source
            for member in group.subscribers:
                row_of(member)[source] -= 1
        for old, new in delta.changed:
            source = old.source
            for member in old.subscribers - new.subscribers:
                row_of(member)[source] -= 1
            for member in new.subscribers - old.subscribers:
                row = row_of(member)
                row[source] = row.get(source, 0) + 1
        for group in delta.added:
            source = group.source
            for member in group.subscribers:
                row = row_of(member)
                row[source] = row.get(source, 0) + 1
        for member in touched:
            row = u[member]
            for source in [s for s, count in row.items() if count == 0]:
                del row[source]
            if not row:
                del u[member]
        return u

    def __str__(self) -> str:
        return (
            f"ForestProblem(nodes={self.n_nodes}, groups={self.n_groups}, "
            f"requests={self.total_requests()}, Bcost={self.latency_bound_ms}ms)"
        )


@dataclass
class ProblemStats:
    """Aggregate statistics of a problem instance (for reports)."""

    n_nodes: int
    n_groups: int
    n_requests: int
    mean_group_size: float
    density: float = field(default=0.0)

    @classmethod
    def of(cls, problem: ForestProblem) -> "ProblemStats":
        """Compute stats; *density* is mean requested in-degree / capacity."""
        n_requests = problem.total_requests()
        mean_size = n_requests / problem.n_groups if problem.n_groups else 0.0
        demand = {i: 0 for i in range(problem.n_nodes)}
        for group in problem.groups:
            for member in group.subscribers:
                demand[member] += 1
        ratios = [
            demand[i] / problem.inbound_limit(i)
            for i in range(problem.n_nodes)
            if problem.inbound_limit(i) > 0
        ]
        density = sum(ratios) / len(ratios) if ratios else 0.0
        return cls(
            n_nodes=problem.n_nodes,
            n_groups=problem.n_groups,
            n_requests=n_requests,
            mean_group_size=mean_size,
            density=density,
        )
