"""The Forest Construction Problem instance (Sec. 4.2).

A :class:`ForestProblem` bundles everything an overlay builder needs:

* the completely-connected RP graph with latency edge costs ``c(e)``;
* per-node in/out degree bounds ``I(v)``, ``O(v)`` in stream units;
* the multicast groups ``G(s)`` derived from the workload;
* the end-to-end latency bound ``B_cost``.

Finding a forest satisfying two or more such constraints is NP-complete
(Wang & Crowcroft, cited in the paper), hence the heuristics in the
sibling modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigurationError, SubscriptionError
from repro.core.model import MulticastGroup, SubscriptionRequest
from repro.session.session import TISession
from repro.topology.dense import DenseCostMatrix
from repro.session.streams import StreamId
from repro.workload.spec import SubscriptionWorkload


class _CostRow(dict):
    """One ``cost[a]`` row that writes through to the dense matrix.

    The problem's dense matrix is the authoritative store for the hot
    paths; tests (and exploratory code) historically tweak entries via
    ``problem.cost[a][b] = x``, so assignments propagate.
    """

    __slots__ = ("_matrix", "_row_index")

    def __init__(self, data: Mapping, matrix: DenseCostMatrix, row_index: int):
        super().__init__(data)
        self._matrix = matrix
        self._row_index = row_index

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        if isinstance(key, int) and 0 <= key < self._matrix.n:
            self._matrix.set_cost(self._row_index, key, value)


@dataclass
class ForestProblem:
    """One overlay-construction instance over RP nodes ``0..n_nodes-1``."""

    n_nodes: int
    cost: dict[int, dict[int, float]]
    inbound: dict[int, int]
    outbound: dict[int, int]
    groups: list[MulticastGroup]
    latency_bound_ms: float

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.latency_bound_ms <= 0:
            raise ConfigurationError(
                f"latency_bound_ms must be positive, got {self.latency_bound_ms}"
            )
        dense_rows: list[list[float]] = []
        for node in range(self.n_nodes):
            if node not in self.inbound or node not in self.outbound:
                raise ConfigurationError(f"missing degree bounds for node {node}")
            if self.inbound[node] < 0 or self.outbound[node] < 0:
                raise ConfigurationError(f"negative degree bound at node {node}")
            row = self.cost.get(node)
            if row is None:
                raise ConfigurationError(f"missing cost row for node {node}")
            dense_row: list[float] = []
            for other in range(self.n_nodes):
                if other not in row:
                    raise ConfigurationError(f"missing cost entry {node}->{other}")
                value = row[other]
                if value < 0:
                    raise ConfigurationError(f"negative cost {node}->{other}")
                dense_row.append(value)
            dense_rows.append(dense_row)
        # Contiguous form consumed by every latency probe below.  The
        # ``cost`` rows become write-through views so in-place tweaks
        # stay visible to the dense matrix.
        self._dense = DenseCostMatrix(dense_rows)
        self.cost = {
            node: _CostRow(self.cost[node], self._dense, node)
            for node in range(self.n_nodes)
        }
        seen_streams: set[StreamId] = set()
        for group in self.groups:
            if group.stream in seen_streams:
                raise SubscriptionError(f"duplicate group for stream {group.stream}")
            seen_streams.add(group.stream)
            if not 0 <= group.source < self.n_nodes:
                raise SubscriptionError(
                    f"group source {group.source} out of range for {group.stream}"
                )
            for member in group.subscribers:
                if not 0 <= member < self.n_nodes:
                    raise SubscriptionError(
                        f"group member {member} out of range for {group.stream}"
                    )
        self._u: dict[int, dict[int, int]] = self._compute_u()

    # -- derived data ------------------------------------------------------------

    def _compute_u(self) -> dict[int, dict[int, int]]:
        u: dict[int, dict[int, int]] = {}
        for group in self.groups:
            for member in group.subscribers:
                row = u.setdefault(member, {})
                row[group.source] = row.get(group.source, 0) + 1
        return u

    @property
    def n_groups(self) -> int:
        """The paper's ``F`` — number of trees the forest must contain."""
        return len(self.groups)

    def u(self, subscriber: int, source: int) -> int:
        """``u_{i->j}``: streams of ``source`` requested by ``subscriber``."""
        return self._u.get(subscriber, {}).get(source, 0)

    def u_matrix(self) -> dict[int, dict[int, int]]:
        """A copy of the full (sparse) ``u`` matrix."""
        return {i: dict(row) for i, row in self._u.items()}

    def total_requests(self) -> int:
        """Total number of subscription requests across all groups."""
        return sum(group.size for group in self.groups)

    def all_requests(self) -> list[SubscriptionRequest]:
        """Every request, grouped by stream, in deterministic order."""
        out: list[SubscriptionRequest] = []
        for group in sorted(self.groups, key=lambda g: g.stream):
            out.extend(group.requests())
        return out

    def edge_cost(self, a: int, b: int) -> float:
        """Latency cost ``c(a, b)`` between two RP nodes."""
        return self._dense.edge_cost(a, b)

    def costs_row(self, node: int) -> list[float]:
        """Costs *from* ``node`` to every node, indexable by node id.

        Returns the shared dense row — callers must not mutate it.
        """
        return self._dense.row(node)

    def costs_to(self, node: int) -> list[float]:
        """Costs *to* ``node`` from every node (dense column, read-only).

        This is the parent-search access pattern: one bulk fetch, then
        O(1) probes per candidate instead of two dict hops each.
        """
        return self._dense.column(node)

    def dense_cost_matrix(self) -> DenseCostMatrix:
        """The shared dense cost matrix (read-only)."""
        return self._dense

    def inbound_limit(self, node: int) -> int:
        """``I(node)`` in stream units."""
        return self.inbound[node]

    def outbound_limit(self, node: int) -> int:
        """``O(node)`` in stream units."""
        return self.outbound[node]

    def streams_to_send(self, node: int) -> int:
        """The paper's ``m_i``: streams of ``node`` wanted by >= 1 other RP."""
        return sum(1 for group in self.groups if group.source == node)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_workload(
        cls,
        session: TISession,
        workload: SubscriptionWorkload,
        latency_bound_ms: float,
    ) -> "ForestProblem":
        """Assemble a problem instance from a session and one workload sample."""
        if workload.n_sites != session.n_sites:
            raise SubscriptionError(
                f"workload covers {workload.n_sites} sites but session has "
                f"{session.n_sites}"
            )
        for site, streams in workload.subscriptions.items():
            for stream in streams:
                if stream not in session.registry:
                    raise SubscriptionError(
                        f"site {site} subscribes to unpublished stream {stream}"
                    )
        groups = [
            MulticastGroup(stream=stream, subscribers=members)
            for stream, members in sorted(workload.groups().items())
        ]
        return cls(
            n_nodes=session.n_sites,
            cost=session.cost_matrix(),
            inbound={s.index: s.rp.inbound_limit for s in session.sites},
            outbound={s.index: s.rp.outbound_limit for s in session.sites},
            groups=groups,
            latency_bound_ms=latency_bound_ms,
        )

    @classmethod
    def from_tables(
        cls,
        cost: Mapping[int, Mapping[int, float]],
        inbound: Mapping[int, int],
        outbound: Mapping[int, int],
        group_members: Mapping[StreamId, frozenset[int] | set[int]],
        latency_bound_ms: float,
    ) -> "ForestProblem":
        """Assemble a problem directly from explicit tables (tests, examples)."""
        n_nodes = len(inbound)
        groups = [
            MulticastGroup(stream=stream, subscribers=frozenset(members))
            for stream, members in sorted(group_members.items())
        ]
        return cls(
            n_nodes=n_nodes,
            cost={i: dict(row) for i, row in cost.items()},
            inbound=dict(inbound),
            outbound=dict(outbound),
            groups=groups,
            latency_bound_ms=latency_bound_ms,
        )

    def __str__(self) -> str:
        return (
            f"ForestProblem(nodes={self.n_nodes}, groups={self.n_groups}, "
            f"requests={self.total_requests()}, Bcost={self.latency_bound_ms}ms)"
        )


@dataclass
class ProblemStats:
    """Aggregate statistics of a problem instance (for reports)."""

    n_nodes: int
    n_groups: int
    n_requests: int
    mean_group_size: float
    density: float = field(default=0.0)

    @classmethod
    def of(cls, problem: ForestProblem) -> "ProblemStats":
        """Compute stats; *density* is mean requested in-degree / capacity."""
        n_requests = problem.total_requests()
        mean_size = n_requests / problem.n_groups if problem.n_groups else 0.0
        demand = {i: 0 for i in range(problem.n_nodes)}
        for group in problem.groups:
            for member in group.subscribers:
                demand[member] += 1
        ratios = [
            demand[i] / problem.inbound_limit(i)
            for i in range(problem.n_nodes)
            if problem.inbound_limit(i) > 0
        ]
        density = sum(ratios) / len(ratios) if ratios else 0.0
        return cls(
            n_nodes=problem.n_nodes,
            n_groups=problem.n_groups,
            n_requests=n_requests,
            mean_group_size=mean_size,
            density=density,
        )
