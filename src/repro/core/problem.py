"""The Forest Construction Problem instance (Sec. 4.2).

A :class:`ForestProblem` bundles everything an overlay builder needs:

* the completely-connected RP graph with latency edge costs ``c(e)``;
* per-node in/out degree bounds ``I(v)``, ``O(v)`` in stream units;
* the multicast groups ``G(s)`` derived from the workload;
* the end-to-end latency bound ``B_cost``.

Finding a forest satisfying two or more such constraints is NP-complete
(Wang & Crowcroft, cited in the paper), hence the heuristics in the
sibling modules.

Problems are assembled two ways.  :meth:`ForestProblem.from_workload`
builds everything from scratch — O(N²) for the dense cost/limit tables
— which is the right cost to pay once per session but dominated control
rounds when paid every round.  :meth:`ForestProblem.evolve` instead
carries the previous round's dense cost matrix and limit tables forward
(they are session constants) and patches only what the workload diff
changed: joined/departed sites' groups and edited subscriptions.  The
evolved problem is equivalent to the from-scratch one — same costs,
limits, groups, ``u`` and ``m`` tables — so builders produce
bit-identical forests on it; the equivalence suite pins this per
scenario × seed × algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ConfigurationError, SubscriptionError
from repro.core.model import MulticastGroup, SubscriptionRequest
from repro.session.session import TISession
from repro.topology.dense import DenseCostMatrix
from repro.session.streams import StreamId
from repro.workload.spec import SubscriptionWorkload

#: Shared empty row handed out for subscribers with no requests.
_EMPTY_U_ROW: dict[int, int] = {}


class _CostRow(dict):
    """One ``cost[a]`` row that writes through to the dense matrix.

    The problem's dense matrix is the authoritative store for the hot
    paths; tests (and exploratory code) historically tweak entries via
    ``problem.cost[a][b] = x``, so assignments propagate.
    """

    __slots__ = ("_matrix", "_row_index")

    def __init__(self, data: Mapping, matrix: DenseCostMatrix, row_index: int):
        super().__init__(data)
        self._matrix = matrix
        self._row_index = row_index

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        if isinstance(key, int) and 0 <= key < self._matrix.n:
            self._matrix.set_cost(self._row_index, key, value)


class _LimitTable(dict):
    """A degree-bound table that writes through to its flat list twin.

    The hot paths (parent search, CO-RJ victim scan, builder-state
    probes) index the flat list; the dict stays the public, test-visible
    surface, so mutations like ``problem.inbound[v] = 0`` must stay
    visible to both.  ``update``/``setdefault`` route through
    ``__setitem__`` for the same reason, and entry removal is refused —
    every node 0..n-1 must keep a bound.
    """

    __slots__ = ("_flat",)

    def __init__(self, data: Mapping, flat: list[int]):
        super().__init__(data)
        self._flat = flat

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        if isinstance(key, int) and 0 <= key < len(self._flat):
            self._flat[key] = value

    def update(self, *args, **kwargs) -> None:
        for key, value in dict(*args, **kwargs).items():
            self[key] = value

    def setdefault(self, key, default=None):
        if key not in self:
            self[key] = default
        return self[key]

    def __ior__(self, other):
        self.update(other)
        return self

    def _refuse_drop(self, *args):
        raise ConfigurationError(
            "degree-bound tables cannot drop entries; set the bound to 0 "
            "instead"
        )

    __delitem__ = _refuse_drop
    pop = _refuse_drop
    popitem = _refuse_drop
    clear = _refuse_drop


@dataclass(frozen=True)
class ProblemDelta:
    """Group-level difference between two rounds' workloads.

    ``added`` are streams newly requested (their whole group is new),
    ``removed`` the full groups of streams nobody requests any more, and
    ``changed`` pairs ``(old, new)`` groups of streams whose subscriber
    set was edited.  Streams whose group is identical across rounds do
    not appear at all — that is the steady-state bulk the diffed
    assembly never touches.
    """

    added: tuple[MulticastGroup, ...] = ()
    removed: tuple[MulticastGroup, ...] = ()
    changed: tuple[tuple[MulticastGroup, MulticastGroup], ...] = ()

    @property
    def empty(self) -> bool:
        """True when the two workloads produced identical groups."""
        return not (self.added or self.removed or self.changed)

    @property
    def touched_groups(self) -> int:
        """How many groups the delta patches (reporting/diagnostics)."""
        return len(self.added) + len(self.removed) + len(self.changed)

    @classmethod
    def between(
        cls,
        old: Sequence[MulticastGroup],
        new: Sequence[MulticastGroup],
    ) -> "ProblemDelta":
        """Diff two group lists (each keyed by stream)."""
        old_by = {group.stream: group for group in old}
        new_streams = set()
        added: list[MulticastGroup] = []
        changed: list[tuple[MulticastGroup, MulticastGroup]] = []
        for group in new:
            new_streams.add(group.stream)
            before = old_by.get(group.stream)
            if before is None:
                added.append(group)
            elif before.subscribers != group.subscribers:
                changed.append((before, group))
        removed = tuple(
            group for group in old if group.stream not in new_streams
        )
        return cls(added=tuple(added), removed=removed, changed=tuple(changed))


@dataclass
class ForestProblem:
    """One overlay-construction instance over RP nodes ``0..n_nodes-1``."""

    n_nodes: int
    cost: dict[int, dict[int, float]]
    inbound: dict[int, int]
    outbound: dict[int, int]
    groups: list[MulticastGroup]
    latency_bound_ms: float

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.latency_bound_ms <= 0:
            raise ConfigurationError(
                f"latency_bound_ms must be positive, got {self.latency_bound_ms}"
            )
        dense_rows: list[list[float]] = []
        inbound_limits: list[int] = []
        outbound_limits: list[int] = []
        for node in range(self.n_nodes):
            if node not in self.inbound or node not in self.outbound:
                raise ConfigurationError(f"missing degree bounds for node {node}")
            if self.inbound[node] < 0 or self.outbound[node] < 0:
                raise ConfigurationError(f"negative degree bound at node {node}")
            inbound_limits.append(self.inbound[node])
            outbound_limits.append(self.outbound[node])
            row = self.cost.get(node)
            if row is None:
                raise ConfigurationError(f"missing cost row for node {node}")
            dense_row: list[float] = []
            for other in range(self.n_nodes):
                if other not in row:
                    raise ConfigurationError(f"missing cost entry {node}->{other}")
                value = row[other]
                if value < 0:
                    raise ConfigurationError(f"negative cost {node}->{other}")
                dense_row.append(value)
            dense_rows.append(dense_row)
        # Contiguous form consumed by every latency probe below.  The
        # ``cost`` rows become write-through views so in-place tweaks
        # stay visible to the dense matrix.
        self._dense = DenseCostMatrix(dense_rows)
        self.cost = {
            node: _CostRow(self.cost[node], self._dense, node)
            for node in range(self.n_nodes)
        }
        # Flat, node-indexed limit twins for the hot paths; the dicts
        # above become write-through views so test-land tweaks like
        # ``problem.inbound[v] = 0`` stay visible to both surfaces.
        self._inbound_limits = inbound_limits
        self._outbound_limits = outbound_limits
        self.inbound = _LimitTable(self.inbound, self._inbound_limits)
        self.outbound = _LimitTable(self.outbound, self._outbound_limits)
        seen_streams: set[StreamId] = set()
        for group in self.groups:
            if group.stream in seen_streams:
                raise SubscriptionError(f"duplicate group for stream {group.stream}")
            seen_streams.add(group.stream)
            self._check_group(group)
        self._u: dict[int, dict[int, int]] = self._compute_u()
        self._m_table: list[int] = self._compute_m()

    def _check_group(self, group: MulticastGroup) -> None:
        if not 0 <= group.source < self.n_nodes:
            raise SubscriptionError(
                f"group source {group.source} out of range for {group.stream}"
            )
        for member in group.subscribers:
            if not 0 <= member < self.n_nodes:
                raise SubscriptionError(
                    f"group member {member} out of range for {group.stream}"
                )

    # -- derived data ------------------------------------------------------------

    def _compute_u(self) -> dict[int, dict[int, int]]:
        u: dict[int, dict[int, int]] = {}
        for group in self.groups:
            for member in group.subscribers:
                row = u.setdefault(member, {})
                row[group.source] = row.get(group.source, 0) + 1
        return u

    def _compute_m(self) -> list[int]:
        m = [0] * self.n_nodes
        for group in self.groups:
            m[group.source] += 1
        return m

    @property
    def n_groups(self) -> int:
        """The paper's ``F`` — number of trees the forest must contain."""
        return len(self.groups)

    def u(self, subscriber: int, source: int) -> int:
        """``u_{i->j}``: streams of ``source`` requested by ``subscriber``."""
        return self._u.get(subscriber, _EMPTY_U_ROW).get(source, 0)

    def u_row(self, subscriber: int) -> Mapping[int, int]:
        """``subscriber``'s sparse ``u`` row, fetched once (read-only).

        The CO-RJ victim scan probes ``u_{i->k}`` for every constructed
        tree; handing out the row saves one dict hop per probe.
        """
        return self._u.get(subscriber, _EMPTY_U_ROW)

    def u_matrix(self) -> dict[int, dict[int, int]]:
        """A copy of the full (sparse) ``u`` matrix."""
        return {i: dict(row) for i, row in self._u.items()}

    def total_requests(self) -> int:
        """Total number of subscription requests across all groups."""
        return sum(group.size for group in self.groups)

    def all_requests(self) -> list[SubscriptionRequest]:
        """Every request, grouped by stream, in deterministic order."""
        out: list[SubscriptionRequest] = []
        for group in sorted(self.groups, key=lambda g: g.stream):
            out.extend(group.requests())
        return out

    def edge_cost(self, a: int, b: int) -> float:
        """Latency cost ``c(a, b)`` between two RP nodes."""
        return self._dense.edge_cost(a, b)

    def costs_row(self, node: int) -> list[float]:
        """Costs *from* ``node`` to every node, indexable by node id.

        Returns the shared dense row — callers must not mutate it.
        """
        return self._dense.row(node)

    def costs_to(self, node: int) -> list[float]:
        """Costs *to* ``node`` from every node (dense column, read-only).

        This is the parent-search access pattern: one bulk fetch, then
        O(1) probes per candidate instead of two dict hops each.
        """
        return self._dense.column(node)

    def dense_cost_matrix(self) -> DenseCostMatrix:
        """The shared dense cost matrix (read-only)."""
        return self._dense

    def inbound_limit(self, node: int) -> int:
        """``I(node)`` in stream units."""
        return self._inbound_limits[node]

    def outbound_limit(self, node: int) -> int:
        """``O(node)`` in stream units."""
        return self._outbound_limits[node]

    def inbound_limits(self) -> list[int]:
        """``I`` for every node, indexable by node id (shared, read-only)."""
        return self._inbound_limits

    def outbound_limits(self) -> list[int]:
        """``O`` for every node, indexable by node id (shared, read-only).

        This is the parent-search access pattern: one bulk fetch, then
        O(1) probes per candidate instead of a dict hop each.
        """
        return self._outbound_limits

    def streams_to_send(self, node: int) -> int:
        """The paper's ``m_i``: streams of ``node`` wanted by >= 1 other RP.

        Served from a per-node table computed once at construction (and
        patched by :meth:`evolve`) instead of rescanning every group.
        """
        if not 0 <= node < self.n_nodes:
            return 0
        return self._m_table[node]

    def m_table(self) -> list[int]:
        """``m_i`` for every node, indexable by node id (shared, read-only)."""
        return self._m_table

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_workload(
        cls,
        session: TISession,
        workload: SubscriptionWorkload,
        latency_bound_ms: float,
    ) -> "ForestProblem":
        """Assemble a problem instance from a session and one workload sample."""
        if workload.n_sites != session.n_sites:
            raise SubscriptionError(
                f"workload covers {workload.n_sites} sites but session has "
                f"{session.n_sites}"
            )
        for site, streams in workload.subscriptions.items():
            for stream in streams:
                if stream not in session.registry:
                    raise SubscriptionError(
                        f"site {site} subscribes to unpublished stream {stream}"
                    )
        groups = [
            MulticastGroup(stream=stream, subscribers=members)
            for stream, members in sorted(workload.groups().items())
        ]
        return cls(
            n_nodes=session.n_sites,
            cost=session.cost_matrix(),
            inbound={s.index: s.rp.inbound_limit for s in session.sites},
            outbound={s.index: s.rp.outbound_limit for s in session.sites},
            groups=groups,
            latency_bound_ms=latency_bound_ms,
        )

    @classmethod
    def from_tables(
        cls,
        cost: Mapping[int, Mapping[int, float]],
        inbound: Mapping[int, int],
        outbound: Mapping[int, int],
        group_members: Mapping[StreamId, frozenset[int] | set[int]],
        latency_bound_ms: float,
    ) -> "ForestProblem":
        """Assemble a problem directly from explicit tables (tests, examples)."""
        n_nodes = len(inbound)
        groups = [
            MulticastGroup(stream=stream, subscribers=frozenset(members))
            for stream, members in sorted(group_members.items())
        ]
        return cls(
            n_nodes=n_nodes,
            cost={i: dict(row) for i, row in cost.items()},
            inbound=dict(inbound),
            outbound=dict(outbound),
            groups=groups,
            latency_bound_ms=latency_bound_ms,
        )

    @classmethod
    def evolve(
        cls,
        prev: "ForestProblem",
        workload: SubscriptionWorkload,
    ) -> "ForestProblem":
        """Diffed assembly: patch ``prev`` into the next round's problem.

        Costs and degree bounds are per-session constants, so the new
        problem *shares* the previous one's dense cost matrix (including
        its lazily-built transpose), write-through cost rows and limit
        tables — none of the O(N²) work of :meth:`from_workload` is
        repeated.  Only the multicast groups are rebuilt from
        ``workload`` (unchanged groups reuse the previous objects), and
        the derived ``u`` and ``m`` tables are patched copy-on-write for
        exactly the groups the diff touches.

        The result is equivalent to a from-scratch assembly of the same
        workload: equal costs, limits, groups, ``u`` and ``m``, hence
        bit-identical build results under the same RNG.  Because tables
        are shared, in-place tweaks (``problem.cost[a][b] = x``) are
        visible across every problem evolved from the same ancestor —
        the control plane treats them as read-only.

        Unlike :meth:`from_workload`, ``evolve`` has no session to
        check subscriptions against, so streams are **caller-trusted**:
        only node-id ranges are validated.  The membership server
        satisfies this by construction (``global_workload`` drops
        subscriptions whose publisher never advertised, and
        advertisements are validated against the registry on arrival);
        direct callers feeding unfiltered workloads should assemble
        from scratch to keep the unpublished-stream check.
        """
        if workload.n_sites != prev.n_nodes:
            raise SubscriptionError(
                f"workload covers {workload.n_sites} sites but the previous "
                f"problem has {prev.n_nodes}"
            )
        # Unchanged streams reuse the previous MulticastGroup (identity
        # reuse, no re-validation); ProblemDelta.between is the single
        # diff implementation — its extra O(groups) pass is negligible
        # next to the O(N²) this path avoids.
        old_by = {group.stream: group for group in prev.groups}
        groups: list[MulticastGroup] = []
        for stream, members in sorted(workload.groups().items()):
            old = old_by.get(stream)
            if old is not None and old.subscribers == members:
                groups.append(old)
            else:
                groups.append(MulticastGroup(stream=stream, subscribers=members))
        delta = ProblemDelta.between(prev.groups, groups)

        problem = cls.__new__(cls)
        problem.n_nodes = prev.n_nodes
        problem.cost = prev.cost
        problem.inbound = prev.inbound
        problem.outbound = prev.outbound
        problem.groups = groups
        problem.latency_bound_ms = prev.latency_bound_ms
        problem._dense = prev._dense
        problem._inbound_limits = prev._inbound_limits
        problem._outbound_limits = prev._outbound_limits
        if delta.empty:
            problem._u = prev._u
            problem._m_table = prev._m_table
            return problem
        for group in delta.added:
            problem._check_group(group)
        for _old, group in delta.changed:
            problem._check_group(group)
        problem._u = cls._patch_u(prev._u, delta)
        m_table = list(prev._m_table)
        for group in delta.removed:
            m_table[group.source] -= 1
        for group in delta.added:
            m_table[group.source] += 1
        problem._m_table = m_table
        return problem

    @staticmethod
    def _patch_u(
        prev_u: dict[int, dict[int, int]], delta: ProblemDelta
    ) -> dict[int, dict[int, int]]:
        """Apply a group delta to the sparse ``u`` matrix, copy-on-write.

        Untouched rows are shared with the previous problem; touched
        rows are copied before editing and zero entries are dropped, so
        the patched matrix equals a from-scratch :meth:`_compute_u`.
        """
        u = dict(prev_u)
        touched: set[int] = set()

        def row_of(member: int) -> dict[int, int]:
            if member not in touched:
                u[member] = dict(u.get(member, _EMPTY_U_ROW))
                touched.add(member)
            return u[member]

        for group in delta.removed:
            source = group.source
            for member in group.subscribers:
                row_of(member)[source] -= 1
        for old, new in delta.changed:
            source = old.source
            for member in old.subscribers - new.subscribers:
                row_of(member)[source] -= 1
            for member in new.subscribers - old.subscribers:
                row = row_of(member)
                row[source] = row.get(source, 0) + 1
        for group in delta.added:
            source = group.source
            for member in group.subscribers:
                row = row_of(member)
                row[source] = row.get(source, 0) + 1
        for member in touched:
            row = u[member]
            for source in [s for s, count in row.items() if count == 0]:
                del row[source]
            if not row:
                del u[member]
        return u

    def __str__(self) -> str:
        return (
            f"ForestProblem(nodes={self.n_nodes}, groups={self.n_groups}, "
            f"requests={self.total_requests()}, Bcost={self.latency_bound_ms}ms)"
        )


@dataclass
class ProblemStats:
    """Aggregate statistics of a problem instance (for reports)."""

    n_nodes: int
    n_groups: int
    n_requests: int
    mean_group_size: float
    density: float = field(default=0.0)

    @classmethod
    def of(cls, problem: ForestProblem) -> "ProblemStats":
        """Compute stats; *density* is mean requested in-degree / capacity."""
        n_requests = problem.total_requests()
        mean_size = n_requests / problem.n_groups if problem.n_groups else 0.0
        demand = {i: 0 for i in range(problem.n_nodes)}
        for group in problem.groups:
            for member in group.subscribers:
                demand[member] += 1
        ratios = [
            demand[i] / problem.inbound_limit(i)
            for i in range(problem.n_nodes)
            if problem.inbound_limit(i) > 0
        ]
        density = sum(ratios) / len(ratios) if ratios else 0.0
        return cls(
            n_nodes=problem.n_nodes,
            n_groups=problem.n_groups,
            n_requests=n_requests,
            mean_group_size=mean_size,
            density=density,
        )
