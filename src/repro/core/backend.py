"""Pluggable array backend for the dense overlay structures.

The overlay hot paths operate on two very different shapes of data:

* **scalar probes** — one ``dout[member]`` read, one ``rfc`` compare,
  one cost lookup per candidate.  CPython list indexing is several
  times faster than ``ndarray.__getitem__`` for these, so the
  authoritative storage for degree tables, limit tables and dense cost
  rows stays plain Python lists on *every* backend.
* **bulk kernels** — whole-table rfc queries, large-tree parent scans,
  per-tree data-plane arithmetic, bulk count patching.  These are where
  numpy pays, and they are the only places the numpy backend diverges
  from the reference implementation.

Both backends are pinned bit-identical: every numpy kernel is either
elementwise float64 arithmetic (IEEE-identical to the scalar loop), a
``cumsum``-based left-to-right sum (numpy's pairwise ``np.sum`` is
*not* used anywhere), or an ``argmax``/``argmin`` first-occurrence
selection that matches the strict-inequality scalar loops.  The
equivalence suites in ``tests/core/test_backend.py`` and the scenario
digest matrix enforce this.

Selection precedence: explicit argument > ``TELE3D_BACKEND`` env var >
auto (numpy when importable, python otherwise).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.problem import ForestProblem
    from repro.core.state import BuilderState
    from repro.core.forest import MulticastTree
    from repro.core.node_join import ParentPolicy

__all__ = [
    "ArrayBackend",
    "PythonBackend",
    "NumpyBackend",
    "BACKEND_NAMES",
    "BACKEND_ENV_VAR",
    "check_backend_name",
    "numpy_available",
    "resolve_backend",
]

#: Accepted values for every ``backend`` knob (config, env, CLI).
BACKEND_NAMES = ("auto", "python", "numpy")

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV_VAR = "TELE3D_BACKEND"

_np = None
_np_checked = False


def numpy_available() -> bool:
    """True when numpy can be imported (checked once, then cached)."""
    global _np, _np_checked
    if not _np_checked:
        _np_checked = True
        try:
            import numpy  # noqa: PLC0415 - optional dependency probe

            _np = numpy
        except ImportError:  # pragma: no cover - depends on environment
            _np = None
    return _np is not None


def check_backend_name(name: str) -> str:
    """Validate a backend knob value, returning it unchanged."""
    if name not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown array backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    return name


class ArrayBackend:
    """Reference (pure-Python) backend; also the fallback.

    Subclasses override the bulk kernels; the scalar reference
    implementations below define the pinned semantics.
    """

    name = "python"

    #: Minimum tree size before ``try_join`` routes the parent scan
    #: through :meth:`parent_scan` instead of the inline scalar loop.
    #: With the write-through array mirrors (``_TreeArrays`` /
    #: ``_StateArrays``) the vectorized scan does no per-scan gathers
    #: from python state and wins from ~30 members (measured crossover
    #: ~29), so the python backend never dispatches and numpy gates
    #: at 32.
    vector_scan_min: float = float("inf")

    # -- bulk state queries ------------------------------------------------------

    def rfc_bulk(
        self,
        out_limits: Sequence[int],
        dout: Sequence[int],
        m_hat: Sequence[int],
    ):
        """Remaining forwarding capacity ``O_i - dout_i - m̂_i`` for all i."""
        return [o - d - m for o, d, m in zip(out_limits, dout, m_hat)]

    def parent_scan(
        self,
        problem: "ForestProblem",
        state: "BuilderState",
        tree: "MulticastTree",
        subscriber: int,
        policy: "ParentPolicy",
    ) -> int | None:
        """Best attach point for ``subscriber`` in ``tree`` (or None).

        The reference semantics live in the scalar loop in
        :mod:`repro.core.node_join`; this delegates to it so the two can
        never drift.
        """
        from repro.core.node_join import scan_parent_scalar

        return scan_parent_scalar(problem, state, tree, subscriber, policy)

    # -- data-plane kernels ------------------------------------------------------

    #: Minimum frame-vector length before the data-plane kernels pay off
    #: as ndarrays: below it, per-op dispatch overhead makes numpy ~2x
    #: slower than the list comprehensions (measured crossover ~64).
    plane_vector_min: float = float("inf")

    def plane_kernels(self, n_frames: int) -> "ArrayBackend":
        """The backend to run one tree's frame arithmetic on.

        Both backends produce bit-identical reports, so this is purely a
        cost decision: short frame vectors (the default 1 s sweep run is
        16 frames) stay on the list kernels even under numpy.
        """
        if n_frames < self.plane_vector_min:
            return _python_backend
        return self

    def as_vector(self, values: list[float]):
        """Adopt a list of floats as this backend's vector type."""
        return values

    def shift(self, values, delta: float):
        """Elementwise ``values + delta``."""
        return [v + delta for v in values]

    def deltas(self, a, b):
        """Elementwise ``a - b``."""
        return [x - y for x, y in zip(a, b)]

    def seq_sum(self, values) -> float:
        """Left-to-right float sum (the event-plane accumulation order)."""
        return float(sum(values))

    def vec_max(self, values) -> float:
        """Maximum of a non-empty vector."""
        return float(max(values))

    # -- sampled-plane kernels ---------------------------------------------------
    #
    # The sampled noisy plane draws per-hop jitter/loss from an
    # RngStream (never backend-native RNG, so both backends see the
    # exact same draws) and hands the post-processing to these kernels.
    # Like the data-plane kernels above, every numpy override is
    # elementwise float64 arithmetic or an order-preserving selection —
    # bit-identical to the scalar loops.

    def survivors(self, draws, threshold: float):
        """Per-draw survival mask: ``draw >= threshold``.

        Matches :class:`~repro.sim.network.LatencyNetwork`'s drop test
        (``random() < loss_probability`` drops), so a draw strictly
        below the loss probability is a loss.
        """
        return [d >= threshold for d in draws]

    def mask_and(self, a, b):
        """Elementwise boolean AND of two masks."""
        return [x and y for x, y in zip(a, b)]

    def add_vec(self, a, b):
        """Elementwise ``a + b`` of two equal-length vectors."""
        return [x + y for x, y in zip(a, b)]

    def compress(self, values, mask):
        """Order-preserving selection of ``values`` where ``mask``."""
        return [v for v, m in zip(values, mask) if m]

    def count_true(self, mask) -> int:
        """Number of true entries in a mask."""
        return sum(1 for m in mask if m)

    def masked_int_sum(self, values, mask) -> int:
        """Exact integer sum of ``values`` where ``mask``."""
        return sum(v for v, m in zip(values, mask) if m)

    def to_list(self, values) -> list:
        """Materialize a backend vector as a plain Python list."""
        return list(values)

    # -- delta patching ----------------------------------------------------------

    def apply_count_deltas(
        self, counts: list[int], deltas: Iterable[tuple[int, int]]
    ) -> None:
        """Apply ``counts[i] += d`` for every ``(i, d)`` pair, in place."""
        for index, delta in deltas:
            counts[index] += delta

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__} {self.name!r}>"


#: Alias with the conventional name for the fallback backend.
PythonBackend = ArrayBackend


class _TreeArrays:
    """Attach-ordered ndarray mirror of one tree's scan inputs.

    ``members[:size]`` and ``from_source[:size]`` hold the tree's member
    ids and source-to-member path costs in exactly the iteration order of
    ``MulticastTree.path_costs()`` (source first, then attach order; a
    detach shifts the tail left, matching dict deletion).  The tree
    write-throughs on :meth:`MulticastTree.attach` /
    :meth:`MulticastTree.detach_leaf` keep the mirror current, so the
    vectorized parent scan never re-gathers the member list per scan —
    the per-scan cost drops from O(members) python-loop gathers to pure
    fancy indexing.

    Capacity doubles on append (amortized O(1)); costs are stored as the
    exact float64 the attach computed, so the mirror is bit-identical to
    the dict it shadows.
    """

    __slots__ = ("_np", "members", "from_source", "size")

    def __init__(self, np_mod, tree: "MulticastTree") -> None:
        self._np = np_mod
        costs = tree.path_costs()
        n = len(costs)
        cap = max(16, 2 * n)
        self.members = np_mod.empty(cap, dtype=np_mod.intp)
        self.from_source = np_mod.empty(cap, dtype=np_mod.float64)
        self.members[:n] = np_mod.fromiter(costs.keys(), dtype=np_mod.intp, count=n)
        self.from_source[:n] = np_mod.fromiter(
            costs.values(), dtype=np_mod.float64, count=n
        )
        self.size = n

    def append(self, node: int, cost_from_source: float) -> None:
        n = self.size
        if n == len(self.members):
            self._grow()
        self.members[n] = node
        self.from_source[n] = cost_from_source
        self.size = n + 1

    def _grow(self) -> None:
        np_mod = self._np
        cap = 2 * len(self.members)
        members = np_mod.empty(cap, dtype=np_mod.intp)
        from_source = np_mod.empty(cap, dtype=np_mod.float64)
        n = self.size
        members[:n] = self.members[:n]
        from_source[:n] = self.from_source[:n]
        self.members = members
        self.from_source = from_source

    def remove(self, node: int) -> None:
        n = self.size
        members = self.members
        idx = int(self._np.nonzero(members[:n] == node)[0][0])
        members[idx : n - 1] = members[idx + 1 : n]
        self.from_source[idx : n - 1] = self.from_source[idx + 1 : n]
        self.size = n - 1


class _StateArrays:
    """Full-length int64 mirrors of a builder state's degree tables.

    Construction snapshots ``state.dout`` / ``state.m_hat`` and installs
    the arrays as those lists' write-through mirrors (the lists are
    ``_MirroredCounts``), so every subsequent write — the builder choke
    points and direct test pokes alike — updates both.  The parent scan
    then reads ``dout[members]`` / ``m_hat[members]`` as single
    fancy-index gathers instead of a python loop over the authoritative
    lists.
    """

    __slots__ = ("dout", "m_hat")

    def __init__(self, np_mod, state: "BuilderState") -> None:
        self.dout = np_mod.asarray(state.dout, dtype=np_mod.int64)
        self.m_hat = np_mod.asarray(state.m_hat, dtype=np_mod.int64)
        state.dout.mirror = self.dout
        state.m_hat.mirror = self.m_hat


class NumpyBackend(ArrayBackend):
    """numpy bulk kernels, pinned bit-identical to the reference.

    Every kernel here is restricted to operations with scalar-identical
    float64 semantics; see the module docstring.
    """

    name = "numpy"
    vector_scan_min = 32
    plane_vector_min = 64

    #: Below this many pairs, the scalar patch loop beats ``np.add.at``.
    _count_patch_min = 512

    def __init__(self) -> None:
        if not numpy_available():  # pragma: no cover - guarded by resolver
            raise ConfigurationError("numpy backend requested but numpy is not importable")
        self._np = _np

    def rfc_bulk(self, out_limits, dout, m_hat):
        np = self._np
        out = np.asarray(out_limits, dtype=np.int64)
        return out - np.asarray(dout, dtype=np.int64) - np.asarray(m_hat, dtype=np.int64)

    def limits_array(self, table) -> "object":
        """ndarray mirror of a limit table's flat twin (cached on it).

        The mirror is boxed next to the flat twin, so every table
        sharing the twin (copy-on-write views) shares the mirror too:
        any write through any of them drops it, and the fork re-boxes —
        a cached array can never go stale.
        """
        cell = table._arr_cell
        arr = cell[0]
        if arr is None:
            arr = cell[0] = self._np.asarray(
                table._flat, dtype=self._np.int64
            )
        return arr

    def tree_arrays(self, tree) -> _TreeArrays:
        """The attach-ordered member/cost mirror of ``tree`` (lazy).

        Created (one O(members) backfill) on a tree's first vectorized
        scan; the tree's mutation choke points write through afterwards.
        """
        arrays = tree._arrays
        if arrays is None:
            arrays = tree._arrays = _TreeArrays(self._np, tree)
        return arrays

    def state_arrays(self, state) -> _StateArrays:
        """The int64 degree-table mirror of ``state`` (lazy)."""
        arrays = state._arrays
        if arrays is None:
            arrays = state._arrays = _StateArrays(self._np, state)
        return arrays

    def parent_scan(self, problem, state, tree, subscriber, policy):
        from repro.core.node_join import ParentPolicy

        np = self._np
        arrays = self.tree_arrays(tree)
        n = arrays.size
        members = arrays.members[:n]
        from_source = arrays.from_source[:n]
        st = self.state_arrays(state)
        col = problem.dense_cost_matrix().column_array(subscriber)
        limits = self.limits_array(problem.outbound)[members]
        degrees = st.dout[members]
        path_cost = from_source + col[members]
        eligible = (degrees < limits) & (path_cost < problem.latency_bound_ms)
        if policy is ParentPolicy.FIRST_FIT:
            hits = np.flatnonzero(eligible)
            return int(members[hits[0]]) if hits.size else None
        if policy is ParentPolicy.MIN_COST:
            masked = np.where(eligible, path_cost, np.inf)
            best = int(np.argmin(masked))
            return int(members[best]) if np.isfinite(masked[best]) else None
        # MAX_RFC.  The scalar loop special-cases the source: when the
        # source has not disseminated yet it becomes the provisional best
        # *without* entering the rfc competition, and any member with
        # rfc > 0 (strict) takes over.  argmax is first-occurrence, which
        # matches the strict-> scan in attach order.
        reservations = st.m_hat[members]
        rfc = limits - degrees - reservations
        source = tree.source
        fallback = None
        in_competition = eligible
        if not tree.disseminated:
            is_source = members == source
            src_hits = np.flatnonzero(is_source & eligible)
            if src_hits.size:
                fallback = source
            in_competition = eligible & ~is_source
        masked = np.where(in_competition, rfc, 0)
        best = int(np.argmax(masked))
        if masked[best] > 0:
            return int(members[best])
        return fallback

    # -- data-plane kernels ------------------------------------------------------

    def as_vector(self, values):
        return self._np.asarray(values, dtype=self._np.float64)

    def shift(self, values, delta):
        return values + delta

    def deltas(self, a, b):
        return a - b

    def seq_sum(self, values) -> float:
        if len(values) == 0:  # pragma: no cover - trees always deliver frames
            return 0.0
        # cumsum accumulates left-to-right like the event plane's loop;
        # np.sum's pairwise reduction would not be bit-identical.
        return float(self._np.cumsum(values)[-1])

    def vec_max(self, values) -> float:
        return float(values.max())

    # -- sampled-plane kernels ---------------------------------------------------

    def survivors(self, draws, threshold: float):
        return self._np.asarray(draws, dtype=self._np.float64) >= threshold

    def mask_and(self, a, b):
        return a & b

    def add_vec(self, a, b):
        return a + b

    def compress(self, values, mask):
        return values[mask]

    def count_true(self, mask) -> int:
        return int(mask.sum())

    def masked_int_sum(self, values, mask) -> int:
        np = self._np
        return int(np.asarray(values, dtype=np.int64)[mask].sum())

    def to_list(self, values) -> list:
        return values.tolist()

    # -- delta patching ----------------------------------------------------------

    def apply_count_deltas(self, counts, deltas):
        pairs = deltas if isinstance(deltas, list) else list(deltas)
        if len(pairs) < self._count_patch_min:
            for index, delta in pairs:
                counts[index] += delta
            return
        np = self._np
        arr = np.asarray(counts, dtype=np.int64)
        idx = np.fromiter((p[0] for p in pairs), dtype=np.intp, count=len(pairs))
        dlt = np.fromiter((p[1] for p in pairs), dtype=np.int64, count=len(pairs))
        np.add.at(arr, idx, dlt)
        counts[:] = arr.tolist()


_python_backend = ArrayBackend()
_numpy_backend: NumpyBackend | None = None


def _get_numpy_backend() -> NumpyBackend:
    global _numpy_backend
    if _numpy_backend is None:
        _numpy_backend = NumpyBackend()
    return _numpy_backend


def resolve_backend(name: "str | ArrayBackend | None" = None) -> ArrayBackend:
    """Resolve a backend knob to a backend instance.

    ``name`` may be an existing backend instance (returned unchanged),
    one of :data:`BACKEND_NAMES`, or ``None``/"auto" to consult
    ``TELE3D_BACKEND`` and fall back to auto-detection.
    """
    if isinstance(name, ArrayBackend):
        return name
    if name in (None, "auto"):
        env = os.environ.get(BACKEND_ENV_VAR, "").strip()
        if env and env != "auto":
            name = env
        else:
            return _get_numpy_backend() if numpy_available() else _python_backend
    check_backend_name(name)
    if name == "python":
        return _python_backend
    if not numpy_available():
        raise ConfigurationError(
            "numpy backend requested (via argument or TELE3D_BACKEND) "
            "but numpy is not importable; use backend='python' or 'auto'"
        )
    return _get_numpy_backend()
