"""The basic node-join algorithm (Sec. 4.3.1, Appendix A, Fig. 6).

Joining ``RP_i`` into the existing tree ``T_s``:

1. **Inbound check** — reject immediately when ``din_i >= I_i``.
2. **Parent search** — among current tree members ``k`` (which, by
   membership, already have the stream) that still have free out-degree
   (``dout_k < O_k``) and satisfy the latency bound
   (``cost(source->k in tree) + c(k, i) < B_cost``), pick the parent with
   the **maximum remaining forwarding capacity**
   ``rfc_k = O_k - dout_k - m̂_k`` — the load-balancing heart of the
   scheme — requiring ``rfc_k > 0``.
3. **Reservation** — when the tree consists of the source alone (its
   stream not yet disseminated), the source is eligible regardless of its
   rfc: the outbound slot counted by ``m̂`` was reserved precisely for
   this first dissemination.  (Because trees grow from the source, "not
   yet disseminated" is equivalent to "the tree has no other member".)
4. If no candidate survives, the tree is *saturated* and the request is
   rejected.

Fidelity note: the paper's pseudo-code handles the already-reserved
source with the comparison ``O_k - m̂ > max`` without subtracting
``dout`` and without updating ``max``; we treat the source uniformly via
its rfc once the stream is disseminated (and document this as the one
interpretation choice — it preserves the stated intent of load
balancing and reproduces the Fig. 6 worked example exactly).

Alternative ``ParentPolicy`` values exist for the ablation baselines:
``MIN_COST`` picks the latency-closest eligible parent and ``FIRST_FIT``
the first eligible member, both ignoring rfc.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import OverlayError
from repro.core.forest import MulticastTree
from repro.core.model import RejectionReason
from repro.core.problem import ForestProblem
from repro.core.state import BuilderState


class ParentPolicy(enum.Enum):
    """How the node-join algorithm chooses among eligible parents."""

    #: The paper's policy: maximize remaining forwarding capacity.
    MAX_RFC = "max-rfc"
    #: Ablation: minimize the resulting source->subscriber path latency.
    MIN_COST = "min-cost"
    #: Ablation: first eligible member in insertion order.
    FIRST_FIT = "first-fit"


@dataclass(frozen=True)
class JoinOutcome:
    """Result of one join attempt."""

    accepted: bool
    parent: int | None = None
    path_cost_ms: float | None = None
    reason: RejectionReason | None = None

    def __post_init__(self) -> None:
        if self.accepted and self.parent is None:
            raise OverlayError("accepted join must name a parent")
        if not self.accepted and self.reason is None:
            raise OverlayError("rejected join must carry a reason")


# Rejections carry no per-attempt data, so the two possible outcomes are
# shared singletons (tens of thousands are produced per sweep build).
_REJECT_INBOUND = JoinOutcome(
    accepted=False, reason=RejectionReason.INBOUND_SATURATED
)
_REJECT_TREE = JoinOutcome(
    accepted=False, reason=RejectionReason.TREE_SATURATED
)


def try_join(
    problem: ForestProblem,
    state: BuilderState,
    tree: MulticastTree,
    subscriber: int,
    policy: ParentPolicy = ParentPolicy.MAX_RFC,
) -> JoinOutcome:
    """Attempt to join ``subscriber`` into ``tree``; mutates on success.

    On acceptance the tree gains the edge ``parent -> subscriber`` and
    the builder state is updated (degrees, reservation release).  On
    rejection nothing is mutated.
    """
    if subscriber in tree:
        raise OverlayError(
            f"node {subscriber} is already in tree {tree.stream}"
        )
    if not state.inbound_free(subscriber):
        return _REJECT_INBOUND

    candidate = _find_parent(problem, state, tree, subscriber, policy)
    if candidate is None:
        return _REJECT_TREE

    edge_cost = problem.edge_cost(candidate, subscriber)
    path_cost = tree.cost_from_source(candidate) + edge_cost
    tree.attach(candidate, subscriber, edge_cost)
    state.record_attach(tree, candidate, subscriber)
    return JoinOutcome(True, candidate, path_cost)


def _find_parent(
    problem: ForestProblem,
    state: BuilderState,
    tree: MulticastTree,
    subscriber: int,
    policy: ParentPolicy,
) -> int | None:
    """Select a parent for ``subscriber`` under ``policy``; None if saturated.

    Small trees (the common case at the paper's group sizes) run the
    scalar scan below; once a tree outgrows the backend's
    ``vector_scan_min`` the scan dispatches to the backend's masked
    argmax/argmin kernel, which is pinned to identical selections.
    """
    backend = problem.array_backend
    if len(tree) >= backend.vector_scan_min:
        return backend.parent_scan(problem, state, tree, subscriber, policy)
    return scan_parent_scalar(problem, state, tree, subscriber, policy)


def scan_parent_scalar(
    problem: ForestProblem,
    state: BuilderState,
    tree: MulticastTree,
    subscriber: int,
    policy: ParentPolicy,
) -> int | None:
    """The reference parent scan (scalar probes, one pass in attach order).

    One pass over the tree members against the precomputed dense cost
    column of the subscriber — no per-candidate dict-of-dict hops.  The
    degree/reservation tables are likewise read directly: this loop is
    the innermost hot path of every overlay build, and it defines the
    selection semantics every vectorized backend kernel must reproduce
    (first-occurrence ties, strictly-positive rfc, source special-case).
    """
    best: int | None = None
    best_rfc = 0  # MAX_RFC requires strictly positive rfc (paper's max <- 0)
    best_cost = float("inf")
    cost_to_subscriber = problem.costs_to(subscriber)
    path_costs = tree.path_costs()
    bound = problem.latency_bound_ms
    # Flat node-indexed arrays: every probe below is a plain list
    # indexing (the degree tables and limit twins are kept in lockstep
    # with their dict views).
    dout = state.dout
    outbound = problem.outbound_limits()
    m_hat = state.m_hat
    for member, cost_from_source in path_costs.items():
        out_limit = outbound[member]
        if dout[member] >= out_limit:
            continue
        path_cost = cost_from_source + cost_to_subscriber[member]
        if path_cost >= bound:
            continue
        if policy is ParentPolicy.FIRST_FIT:
            return member
        if policy is ParentPolicy.MIN_COST:
            if path_cost < best_cost:
                best, best_cost = member, path_cost
            continue
        # MAX_RFC (the paper's policy)
        if member == tree.source and not tree.disseminated:
            # Reserved slot: the source may always serve the first
            # dissemination of its own stream (rfc not consulted).
            best = member
            continue
        rfc = out_limit - dout[member] - m_hat[member]
        if rfc > best_rfc:
            best, best_rfc = member, rfc
    return best
