"""Incremental overlay maintenance (the paper's future-work direction).

The paper solves the *static* construction problem and re-solves it on
any change.  This module provides the repair operations a deployment
needs between full re-solves:

* :func:`add_subscription` — join one new request into an existing
  forest with the basic node-join algorithm (optionally with the CO-RJ
  victim swap as fallback);
* :func:`remove_subscription` — drop a satisfied leaf request and
  release its resources (interior nodes must keep relaying, exactly as
  an RP keeps forwarding a stream its own displays stopped watching);
* :func:`churn_rate` — how much of the existing forest a full re-solve
  would move, for deciding *when* a re-solve is worth it;
* :class:`IncrementalRepairer` — the full control-path repairer: given
  the previous round's :class:`~repro.core.base.BuildResult` and the
  next round's :class:`~repro.core.problem.ForestProblem`, it carries
  every surviving edge over untouched, prunes departed members (whole
  subtrees re-home via the node-join algorithm), and only the genuinely
  new or orphaned requests run through a join — so satisfied users are
  not disturbed by unrelated churn.

The :data:`REBUILD_POLICIES` threaded through ``TISession``,
``MembershipServer`` and ``ScenarioRuntime`` pick between repair and
re-solve:

* ``"always"`` — the paper's model: re-solve from scratch every round;
* ``"incremental"`` — repair every round, falling back to a scratch
  rebuild only when the repair is infeasible (a previously-served
  request could not be re-homed: capacity exhaustion or disconnected
  residue);
* ``"hybrid"`` — repair, but quality-guard each round against the
  from-scratch solution: adopt the repair only while its rejection
  count does not exceed scratch and its forest cost stays within the
  configured drift budget.

Incremental joins never move existing edges, so satisfied users are
never disturbed; the price is that the incremental answer can be worse
than a fresh solve (quantified by :func:`churn_rate` and the hybrid
drift budget).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OverlayError, SubscriptionError
from repro.core.base import BuildResult
from repro.core.correlation import CorrelatedRandomJoinBuilder
from repro.core.forest import OverlayForest
from repro.core.model import RejectionReason, SubscriptionRequest
from repro.core.node_join import JoinOutcome, ParentPolicy, try_join
from repro.core.problem import ForestProblem
from repro.core.state import BuilderState
from repro.util.validation import REBUILD_POLICIES, check_rebuild_policy

#: Default hybrid drift budget: the repaired forest may cost at most
#: ``(1 + budget)`` times the from-scratch solution before the round
#: falls back to the scratch rebuild.
DEFAULT_DRIFT_BUDGET = 0.15

#: Canonical validator (the constant itself lives in
#: :mod:`repro.util.validation` so the session layer can share it).
validate_rebuild_policy = check_rebuild_policy


def overlay_cost(result: BuildResult) -> float:
    """Total relay cost of the forest: sum of every tree edge's latency.

    This is the quality metric the hybrid policy budgets: local repair
    keeps stale edges alive, so its forest drifts away from the
    from-scratch optimum; the drift budget caps how far.
    """
    problem = result.problem
    total = 0.0
    for tree in result.forest.trees.values():
        for parent, child in tree.edges():
            total += problem.edge_cost(parent, child)
    return total


def add_subscription(
    result: BuildResult,
    request: SubscriptionRequest,
    use_swap: bool = False,
    policy: ParentPolicy = ParentPolicy.MAX_RFC,
) -> JoinOutcome:
    """Join one new request into an already-built overlay.

    The request must reference a stream whose multicast group exists in
    the problem (the membership server's advertisement matching happens
    upstream); re-adding a currently-satisfied request is an error.

    With ``use_swap=True`` a rejection falls back to the CO-RJ victim
    swap (Sec. 4.4) before giving up.
    """
    problem = result.problem
    if not 0 <= request.subscriber < problem.n_nodes:
        raise SubscriptionError(f"unknown subscriber {request.subscriber}")
    if request in result.forest.satisfied:
        raise OverlayError(f"{request} is already satisfied")

    state = result.state
    forest = result.forest
    result.invalidate_caches()  # every path below may touch the rejected list
    state.open_group(request.stream)
    tree = forest.tree(request.stream)
    outcome = try_join(problem, state, tree, request.subscriber, policy=policy)
    if outcome.accepted:
        forest.satisfied.append(request)
        _drop_rejection_record(result, request)
        return outcome

    if use_swap:
        swapper = CorrelatedRandomJoinBuilder(repair_passes=0)
        _drop_rejection_record(result, request)
        if swapper.on_rejected(problem, state, forest, request, outcome):
            satisfied_cost = tree.cost_from_source(request.subscriber)
            return JoinOutcome(
                accepted=True,
                parent=tree.parent(request.subscriber),
                path_cost_ms=satisfied_cost,
            )
        forest.rejected.append((request, outcome.reason))
        return outcome

    if not _has_rejection_record(result, request):
        forest.rejected.append((request, outcome.reason))
    return outcome


def remove_subscription(
    result: BuildResult, request: SubscriptionRequest
) -> None:
    """Drop one *satisfied* request from the overlay.

    Only leaf subscribers release resources immediately; an interior
    subscriber keeps its edge because its subtree still needs the
    stream (the RP keeps relaying), and only its local delivery stops —
    we model that by leaving the forest untouched but removing the
    request from the satisfied set.
    """
    forest = result.forest
    if request not in forest.satisfied:
        raise OverlayError(f"{request} is not satisfied")
    tree = forest.trees.get(request.stream)
    if tree is None or request.subscriber not in tree:
        raise OverlayError(f"{request} has no tree node to remove")
    forest.satisfied.remove(request)
    result.invalidate_caches()
    if tree.is_leaf(request.subscriber):
        parent = tree.detach_leaf(request.subscriber)
        result.state.record_detach(tree, parent, request.subscriber)


def churn_rate(before: BuildResult, after: BuildResult) -> float:
    """Fraction of commonly-satisfied requests whose parent moved.

    Compares two builds of (possibly different) problems over the same
    node space — typically the incremental state versus a fresh
    re-solve — and reports how disruptive adopting ``after`` would be.
    """
    before_parents = {
        request: before.forest.trees[request.stream].parent(request.subscriber)
        for request in before.satisfied
    }
    common = [
        request
        for request in after.satisfied
        if request in before_parents
    ]
    if not common:
        return 0.0
    moved = sum(
        1
        for request in common
        if after.forest.trees[request.stream].parent(request.subscriber)
        != before_parents[request]
    )
    return moved / len(common)


def _has_rejection_record(
    result: BuildResult, request: SubscriptionRequest
) -> bool:
    return any(rejected == request for rejected, _ in result.forest.rejected)


def _drop_rejection_record(
    result: BuildResult, request: SubscriptionRequest
) -> None:
    """Remove a stale rejection record for ``request`` if one exists."""
    rejected = result.forest.rejected
    for index, (recorded, _reason) in enumerate(rejected):
        if recorded == request:
            del rejected[index]
            return


@dataclass(frozen=True)
class RepairReport:
    """Outcome of one :meth:`IncrementalRepairer.repair` call.

    ``feasible`` is the fallback signal: it is False when a request that
    was served last round could not be re-homed after its relay departed
    (capacity exhaustion or disconnected residue) — a scratch rebuild
    might still serve that user, so policies treat the repair as failed.
    """

    result: BuildResult
    feasible: bool
    carried: int          #: satisfied requests whose edge survived intact
    orphaned: int         #: previously-satisfied requests whose relay left
    rejoined: int         #: orphans successfully re-homed
    #: Previously-served, still-requested requests that end the repair
    #: unserved — orphans that could not be re-homed *and* carried
    #: requests later evicted by a victim swap.
    lost: int
    fresh_joined: int     #: genuinely new requests joined
    fresh_rejected: int   #: genuinely new requests rejected
    dropped_trees: int    #: trees whose stream left the problem entirely

    @property
    def touched(self) -> int:
        """Requests the repair actually had to (re-)join."""
        return self.orphaned + self.fresh_joined + self.fresh_rejected

    def touched_fraction(self, total_requests: int) -> float:
        """``touched`` as a fraction of the round's request volume.

        This is the per-round increment of the scratch-free hybrid's
        drift estimate: every request the repair had to place greedily
        on top of the stale forest is a potential deviation from the
        from-scratch optimum.
        """
        return self.touched / total_requests if total_requests > 0 else 0.0


@dataclass
class IncrementalRepairer:
    """Patches a surviving overlay onto the next round's problem.

    The repair walks the previous forest top-down and carries every edge
    whose child is still a satisfied requester *and* whose parent chain
    survived; because degree bounds and the cost matrix are per-session
    constants, a carried subset of a feasible forest is itself feasible,
    so no constraint re-checks are needed on the carry path.  Members
    whose request disappeared (site leave, failure, FOV change) are
    pruned; their descendants become *orphans* and re-join through the
    basic node-join algorithm, exactly like fresh requests — optionally
    with the CO-RJ victim swap as a last resort (``use_swap``).

    The repaired :class:`~repro.core.base.BuildResult` references the
    *new* problem and a freshly-replayed
    :class:`~repro.core.state.BuilderState`, so it satisfies every
    invariant the auditor re-derives (degree ledger, reservation
    accounting, request accounting) by construction.
    """

    policy: ParentPolicy = field(default=ParentPolicy.MAX_RFC)
    use_swap: bool = False
    #: Accumulated drift estimate since the last from-scratch anchor:
    #: the sum of each repair's touched fraction.  The scratch-free
    #: hybrid policy compares this against its drift budget to decide
    #: when a verification re-solve is due; it re-anchors via
    #: :meth:`reset_drift` whenever a scratch solution is computed.
    _drift_estimate: float = field(default=0.0, init=False, repr=False)

    @property
    def drift_estimate(self) -> float:
        """Estimated cost drift accumulated since the last anchor."""
        return self._drift_estimate

    def reset_drift(self, value: float = 0.0) -> None:
        """Re-anchor the drift estimate (after a scratch solve).

        ``value`` lets a verification that *kept* the repair re-anchor
        on the drift it actually measured instead of zero.
        """
        self._drift_estimate = value

    def repair(
        self, previous: BuildResult, problem: ForestProblem
    ) -> RepairReport:
        """Carry the surviving forest into ``problem``; join the rest."""
        forest = OverlayForest()
        state = BuilderState(problem)
        prev_forest = previous.forest
        prev_satisfied = set(prev_forest.satisfied)
        new_streams = {group.stream for group in problem.groups}
        dropped_trees = sum(
            1
            for stream, tree in prev_forest.trees.items()
            if stream not in new_streams and len(tree) > 1
        )

        carried = 0
        orphans: list[SubscriptionRequest] = []
        handled: set[SubscriptionRequest] = set()
        for group in sorted(problem.groups, key=lambda g: g.stream):
            state.open_group(group.stream)
            tree = forest.tree(group.stream)
            old_tree = prev_forest.trees.get(group.stream)
            if old_tree is None:
                continue
            wanted = group.subscribers
            # Old members iterate source-first in attach order, so every
            # carried node finds its parent already attached; a node whose
            # ancestor was pruned sees its parent missing and orphans.
            for node in old_tree.members():
                if node == old_tree.source:
                    continue
                request = SubscriptionRequest(subscriber=node, stream=group.stream)
                if node not in wanted or request not in prev_satisfied:
                    continue  # no longer requested: prune (subtree orphans)
                handled.add(request)
                parent = old_tree.parent(node)
                if parent in tree and self._edge_fits(
                    problem, state, tree, parent, node
                ):
                    tree.attach(parent, node, problem.edge_cost(parent, node))
                    state.record_attach(tree, parent, node)
                    forest.satisfied.append(request)
                    carried += 1
                else:
                    orphans.append(request)

        swapper = (
            CorrelatedRandomJoinBuilder(repair_passes=0) if self.use_swap else None
        )

        def rejoin(request: SubscriptionRequest) -> bool:
            tree = forest.tree(request.stream)
            outcome = try_join(
                problem, state, tree, request.subscriber, policy=self.policy
            )
            if outcome.accepted:
                forest.satisfied.append(request)
                return True
            if swapper is not None and swapper.on_rejected(
                problem, state, forest, request, outcome
            ):
                return True
            forest.rejected.append((request, outcome.reason))
            return False

        rejoined = 0
        for request in orphans:
            if rejoin(request):
                rejoined += 1
        fresh_joined = fresh_rejected = 0
        for request in problem.all_requests():
            if request in handled:
                continue
            if rejoin(request):
                fresh_joined += 1
            else:
                fresh_rejected += 1

        result = BuildResult(
            problem=problem,
            forest=forest,
            state=state,
            algorithm=previous.algorithm,
        )
        # A user served last round whose request still stands must still
        # be served, whether the repair orphaned them (no re-home found)
        # or a victim swap evicted them after the carry.
        satisfied_now = set(forest.satisfied)
        lost = sum(
            1
            for request in handled
            if request in prev_satisfied and request not in satisfied_now
        )
        report = RepairReport(
            result=result,
            feasible=lost == 0,
            carried=carried,
            orphaned=len(orphans),
            rejoined=rejoined,
            lost=lost,
            fresh_joined=fresh_joined,
            fresh_rejected=fresh_rejected,
            dropped_trees=dropped_trees,
        )
        self._drift_estimate += report.touched_fraction(problem.total_requests())
        return report

    @staticmethod
    def _edge_fits(
        problem: ForestProblem,
        state: BuilderState,
        tree,
        parent: int,
        node: int,
    ) -> bool:
        """Re-validate one carried edge against the *new* problem.

        On the live control path bounds and costs are session constants,
        so a carried subset of a feasible forest always fits and this
        never fires; it guards direct API use against problems with
        tightened capacities or costs, degrading the edge to an orphan
        re-join instead of returning a constraint-violating forest.
        """
        return (
            state.dout[parent] < problem.outbound_limit(parent)
            and state.din[node] < problem.inbound_limit(node)
            and tree.cost_from_source(parent) + problem.edge_cost(parent, node)
            < problem.latency_bound_ms
        )
