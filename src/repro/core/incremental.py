"""Incremental overlay maintenance (the paper's future-work direction).

The paper solves the *static* construction problem and re-solves it on
any change.  This module adds the obvious incremental operations a
deployment needs between full re-solves:

* :func:`add_subscription` — join one new request into an existing
  forest with the basic node-join algorithm (optionally with the CO-RJ
  victim swap as fallback);
* :func:`remove_subscription` — drop a satisfied leaf request and
  release its resources (interior nodes must keep relaying, exactly as
  an RP keeps forwarding a stream its own displays stopped watching);
* :func:`churn_rate` — how much of the existing forest a full re-solve
  would move, for deciding *when* a re-solve is worth it.

Incremental joins never move existing edges, so satisfied users are
never disturbed; the price is that the incremental answer can be worse
than a fresh solve (quantified by :func:`churn_rate` tests).
"""

from __future__ import annotations

from repro.errors import OverlayError, SubscriptionError
from repro.core.base import BuildResult
from repro.core.correlation import CorrelatedRandomJoinBuilder
from repro.core.model import RejectionReason, SubscriptionRequest
from repro.core.node_join import JoinOutcome, ParentPolicy, try_join


def add_subscription(
    result: BuildResult,
    request: SubscriptionRequest,
    use_swap: bool = False,
    policy: ParentPolicy = ParentPolicy.MAX_RFC,
) -> JoinOutcome:
    """Join one new request into an already-built overlay.

    The request must reference a stream whose multicast group exists in
    the problem (the membership server's advertisement matching happens
    upstream); re-adding a currently-satisfied request is an error.

    With ``use_swap=True`` a rejection falls back to the CO-RJ victim
    swap (Sec. 4.4) before giving up.
    """
    problem = result.problem
    if not 0 <= request.subscriber < problem.n_nodes:
        raise SubscriptionError(f"unknown subscriber {request.subscriber}")
    if request in result.forest.satisfied:
        raise OverlayError(f"{request} is already satisfied")

    state = result.state
    forest = result.forest
    result.invalidate_caches()  # every path below may touch the rejected list
    state.open_group(request.stream)
    tree = forest.tree(request.stream)
    outcome = try_join(problem, state, tree, request.subscriber, policy=policy)
    if outcome.accepted:
        forest.satisfied.append(request)
        _drop_rejection_record(result, request)
        return outcome

    if use_swap:
        swapper = CorrelatedRandomJoinBuilder(repair_passes=0)
        _drop_rejection_record(result, request)
        if swapper.on_rejected(problem, state, forest, request, outcome):
            satisfied_cost = tree.cost_from_source(request.subscriber)
            return JoinOutcome(
                accepted=True,
                parent=tree.parent(request.subscriber),
                path_cost_ms=satisfied_cost,
            )
        forest.rejected.append((request, outcome.reason))
        return outcome

    if not _has_rejection_record(result, request):
        forest.rejected.append((request, outcome.reason))
    return outcome


def remove_subscription(
    result: BuildResult, request: SubscriptionRequest
) -> None:
    """Drop one *satisfied* request from the overlay.

    Only leaf subscribers release resources immediately; an interior
    subscriber keeps its edge because its subtree still needs the
    stream (the RP keeps relaying), and only its local delivery stops —
    we model that by leaving the forest untouched but removing the
    request from the satisfied set.
    """
    forest = result.forest
    if request not in forest.satisfied:
        raise OverlayError(f"{request} is not satisfied")
    tree = forest.trees.get(request.stream)
    if tree is None or request.subscriber not in tree:
        raise OverlayError(f"{request} has no tree node to remove")
    forest.satisfied.remove(request)
    if tree.is_leaf(request.subscriber):
        parent = tree.detach_leaf(request.subscriber)
        result.state.record_detach(tree, parent, request.subscriber)


def churn_rate(before: BuildResult, after: BuildResult) -> float:
    """Fraction of commonly-satisfied requests whose parent moved.

    Compares two builds of (possibly different) problems over the same
    node space — typically the incremental state versus a fresh
    re-solve — and reports how disruptive adopting ``after`` would be.
    """
    before_parents = {
        request: before.forest.trees[request.stream].parent(request.subscriber)
        for request in before.satisfied
    }
    common = [
        request
        for request in after.satisfied
        if request in before_parents
    ]
    if not common:
        return 0.0
    moved = sum(
        1
        for request in common
        if after.forest.trees[request.stream].parent(request.subscriber)
        != before_parents[request]
    )
    return moved / len(common)


def _has_rejection_record(
    result: BuildResult, request: SubscriptionRequest
) -> bool:
    return any(rejected == request for rejected, _ in result.forest.rejected)


def _drop_rejection_record(
    result: BuildResult, request: SubscriptionRequest
) -> None:
    """Remove a stale rejection record for ``request`` if one exists."""
    rejected = result.forest.rejected
    for index, (recorded, _reason) in enumerate(rejected):
        if recorded == request:
            del rejected[index]
            return
