"""Algorithm registry: look builders up by their paper names."""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.core.base import OverlayBuilder
from repro.core.correlation import CorrelatedRandomJoinBuilder
from repro.core.granularity import GranularityBuilder
from repro.core.node_join import ParentPolicy
from repro.core.randomized import RandomJoinBuilder
from repro.core.tree_order import (
    LargestTreeFirstBuilder,
    MinCapacityTreeFirstBuilder,
    SmallestTreeFirstBuilder,
)

_FACTORIES: dict[str, Callable[..., OverlayBuilder]] = {
    "ltf": LargestTreeFirstBuilder,
    "stf": SmallestTreeFirstBuilder,
    "mctf": MinCapacityTreeFirstBuilder,
    "rj": RandomJoinBuilder,
    "co-rj": CorrelatedRandomJoinBuilder,
    "gran-ltf": GranularityBuilder,
}


def available_algorithms() -> list[str]:
    """Names accepted by :func:`make_builder`, sorted."""
    return sorted(_FACTORIES)


def make_builder(name: str, **kwargs) -> OverlayBuilder:
    """Instantiate a builder by its paper name.

    Keyword arguments are forwarded to the builder (e.g.
    ``make_builder("gran-ltf", granularity=8)`` or
    ``make_builder("rj", parent_policy=ParentPolicy.MIN_COST)``).
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        known = ", ".join(available_algorithms())
        raise ConfigurationError(
            f"unknown algorithm {name!r}; known algorithms: {known}"
        ) from None
    return factory(**kwargs)


__all__ = ["available_algorithms", "make_builder", "ParentPolicy"]
