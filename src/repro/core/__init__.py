"""Overlay forest construction — the paper's primary contribution.

Given the global subscription workload, construct one multicast tree per
subscribed stream over the RP nodes, subject to per-node in/out degree
bounds and a source-to-subscriber latency bound, minimizing the request
rejection ratio (Sec. 4.2; NP-complete per Wang & Crowcroft).

Contents map directly onto the paper:

* :mod:`repro.core.model` / :mod:`repro.core.problem` — notation
  (Table 1) and the Forest Construction Problem;
* :mod:`repro.core.forest` / :mod:`repro.core.state` — multicast
  trees/forest and the shared builder state (degrees, reservations);
* :mod:`repro.core.node_join` — the basic node-join algorithm
  (Appendix A, worked example Fig. 6);
* :mod:`repro.core.tree_order` — LTF, STF, MCTF (Sec. 4.3.2);
* :mod:`repro.core.randomized` — RJ (Sec. 4.3.3);
* :mod:`repro.core.granularity` — the Gran-LTF spectrum (Sec. 5.3);
* :mod:`repro.core.correlation` — criticality and CO-RJ (Sec. 4.4,
  worked example Fig. 7);
* :mod:`repro.core.metrics` — Eq. 1, Eq. 3 and utilization metrics.
"""

from repro.core.model import MulticastGroup, RejectionReason, SubscriptionRequest
from repro.core.problem import ForestProblem
from repro.core.forest import MulticastTree, OverlayForest
from repro.core.state import BuilderState
from repro.core.node_join import JoinOutcome, ParentPolicy, try_join
from repro.core.base import BuildResult, OverlayBuilder
from repro.core.tree_order import (
    LargestTreeFirstBuilder,
    MinCapacityTreeFirstBuilder,
    SmallestTreeFirstBuilder,
)
from repro.core.randomized import RandomJoinBuilder
from repro.core.granularity import GranularityBuilder
from repro.core.correlation import CorrelatedRandomJoinBuilder, criticality
from repro.core.incremental import (
    DEFAULT_DRIFT_BUDGET,
    REBUILD_POLICIES,
    IncrementalRepairer,
    RepairReport,
    add_subscription,
    churn_rate,
    overlay_cost,
    remove_subscription,
    validate_rebuild_policy,
)
from repro.core.metrics import (
    ForestMetrics,
    correlation_weighted_rejection,
    criticality_loss_ratio,
    pairwise_rejection_sum,
    rejection_ratio,
)
from repro.core.registry import available_algorithms, make_builder

__all__ = [
    "MulticastGroup",
    "RejectionReason",
    "SubscriptionRequest",
    "ForestProblem",
    "MulticastTree",
    "OverlayForest",
    "BuilderState",
    "JoinOutcome",
    "ParentPolicy",
    "try_join",
    "BuildResult",
    "OverlayBuilder",
    "LargestTreeFirstBuilder",
    "SmallestTreeFirstBuilder",
    "MinCapacityTreeFirstBuilder",
    "RandomJoinBuilder",
    "GranularityBuilder",
    "CorrelatedRandomJoinBuilder",
    "criticality",
    "add_subscription",
    "remove_subscription",
    "churn_rate",
    "DEFAULT_DRIFT_BUDGET",
    "REBUILD_POLICIES",
    "IncrementalRepairer",
    "RepairReport",
    "overlay_cost",
    "validate_rebuild_policy",
    "ForestMetrics",
    "rejection_ratio",
    "pairwise_rejection_sum",
    "correlation_weighted_rejection",
    "criticality_loss_ratio",
    "available_algorithms",
    "make_builder",
]
