"""CO-RJ: exploiting semantic stream correlation (Sec. 4.4, Fig. 7).

Streams from one site are highly correlated (the cameras capture the
same scene from different angles), so losing one of four subscribed
streams from site B degrades a scene, while losing the single subscribed
stream from site C loses a scene entirely.  The **criticality** for node
``i`` to lose a stream originating at ``j`` is ``Q_{i->j} = 1/u_{i->j}``
(Eq. 2).

CO-RJ runs RJ, but whenever a request ``r_i(s_j^p)`` is rejected because
the tree is saturated it searches for a *victim*: a stream ``s_k^q``
(``k != j``) such that

1. ``Q_{i->k} < Q_{i->j}`` — the victim is less critical to lose;
2. ``RP_i`` is a **leaf** in the victim's tree ``T_k`` (detaching it
   cannot orphan other nodes);
3. the parent ``h`` of ``RP_i`` in ``T_k`` has already joined the target
   tree ``T_j`` (so ``h`` has the requested stream and can relay it);
4. connecting ``i`` under ``h`` in ``T_j`` respects the latency bound.

When all four hold, the edge ``h -> i`` moves from ``T_k`` to ``T_j``:
``h`` serves ``i`` the more critical stream instead of the less critical
one, with no degree change at either endpoint (``h`` may itself remain
saturated, exactly as node F in Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.forest import MulticastTree, OverlayForest
from repro.core.model import RejectionReason, SubscriptionRequest
from repro.core.node_join import JoinOutcome
from repro.core.problem import ForestProblem
from repro.core.randomized import RandomJoinBuilder
from repro.core.state import BuilderState


def criticality(problem: ForestProblem, subscriber: int, source: int) -> float:
    """Eq. 2: ``Q_{i->j} = 1 / u_{i->j}`` (infinite when nothing is requested).

    A pair with no requests has infinite criticality, which conveniently
    makes it ineligible as a CO-RJ victim (nothing to take away).
    """
    u = problem.u(subscriber, source)
    if u == 0:
        return float("inf")
    return 1.0 / u


@dataclass(frozen=True)
class _Swap:
    """A victim candidate: evict ``victim`` and reuse its edge for the target."""

    victim: SubscriptionRequest
    victim_tree: MulticastTree
    parent: int
    quality: float  # the victim's criticality (lower = better victim)


@dataclass
class CorrelatedRandomJoinBuilder(RandomJoinBuilder):
    """CO-RJ: RJ plus the correlation-aware victim swap on saturation.

    ``swap_on_inbound`` extends the swap to inbound-saturated rejections
    as well: the swap replaces one received stream with another, so the
    subscriber's in-degree is unchanged and the mechanism applies to
    both saturation modes.  The paper's text names tree saturation only;
    the extension is on by default because inbound saturation is the
    other face of the same criticality trade (disable it for the
    strictest reading).
    """

    name: str = "co-rj"
    swap_on_inbound: bool = True
    #: Number of post-build repair sweeps: rejected requests are
    #: re-offered the victim swap against the *completed* forest (the
    #: target tree has far more members by then, so condition (3) —
    #: a victim parent that already joined the target tree — holds much
    #: more often).  0 restores the strictly on-the-fly behaviour.
    repair_passes: int = 2

    def on_rejected(
        self,
        problem: ForestProblem,
        state: BuilderState,
        forest: OverlayForest,
        request: SubscriptionRequest,
        outcome: JoinOutcome,
    ) -> bool:
        """Attempt the Sec. 4.4 swap; returns True when the swap happened."""
        swappable = {RejectionReason.TREE_SATURATED}
        if self.swap_on_inbound:
            swappable.add(RejectionReason.INBOUND_SATURATED)
        if outcome.reason not in swappable:
            return False
        swap = self._find_victim(problem, forest, request)
        if swap is None:
            return False
        self._apply_swap(problem, state, forest, request, swap)
        return True

    def build(self, problem: ForestProblem, rng: RngStream):  # type: ignore[override]
        """RJ build, then criticality-ordered swap repair sweeps."""
        result = super().build(problem, rng)
        for _ in range(max(0, self.repair_passes)):
            if not self._repair_sweep(problem, result):
                break
        return result

    def _repair_sweep(self, problem: ForestProblem, result) -> bool:
        """One sweep over rejected requests, most critical first.

        Returns True when at least one swap was applied (so another
        sweep may find newly enabled opportunities).
        """
        forest = result.forest
        state = result.state
        pending = [
            request
            for request, reason in forest.rejected
            if reason is not RejectionReason.VICTIM_SWAPPED
        ]
        pending.sort(
            key=lambda r: (-criticality(problem, r.subscriber, r.source), r)
        )
        progressed = False
        for request in pending:
            if request.subscriber in forest.tree(request.stream):
                continue  # already satisfied by an earlier swap this sweep
            swap = self._find_victim(problem, forest, request)
            if swap is None:
                continue
            self._remove_rejection(forest, request)
            self._apply_swap(problem, state, forest, request, swap)
            progressed = True
        if progressed:
            result.invalidate_caches()
        return progressed

    @staticmethod
    def _remove_rejection(forest: OverlayForest, request: SubscriptionRequest) -> None:
        """Drop ``request``'s rejection record prior to re-satisfying it."""
        for index, (rejected, _reason) in enumerate(forest.rejected):
            if rejected == request:
                del forest.rejected[index]
                return
        raise ValueError(f"{request} is not recorded as rejected")

    # -- internals ---------------------------------------------------------------

    def _find_victim(
        self,
        problem: ForestProblem,
        forest: OverlayForest,
        request: SubscriptionRequest,
    ) -> _Swap | None:
        """Find the best victim meeting all 4 conditions.

        Candidates are enumerated from the subscriber's sparse ``u`` row
        crossed with the problem's streams-by-source index rather than by
        probing every constructed tree: only sites the subscriber
        actually requests can yield a finite victim criticality, and
        condition (2) restricts victims to trees the subscriber is a
        member of — both of which the old full-forest scan rediscovered
        per tree.  The winner is the minimum under the total order
        ``(criticality, str(stream))``, so enumeration order is
        irrelevant and the selection is bit-identical to the full scan.
        """
        subscriber = request.subscriber
        u_row = problem.u_row(subscriber)
        own_u = u_row.get(request.source, 0)
        own_q = float("inf") if own_u == 0 else 1.0 / own_u
        target_tree = forest.tree(request.stream)
        best: _Swap | None = None
        cost_to_subscriber = problem.costs_to(subscriber)
        trees = forest.trees
        by_source = problem.streams_by_source()
        bound = problem.latency_bound_ms
        for site, victim_u in u_row.items():
            if site == request.source:  # condition (1): k != j
                continue
            victim_q = 1.0 / victim_u
            if not victim_q < own_q:  # condition (1): strictly less critical
                continue
            for stream in by_source.get(site, ()):
                tree = trees.get(stream)
                if tree is None or not tree.is_leaf(subscriber):  # condition (2)
                    continue
                parent = tree.parent(subscriber)
                if parent is None or parent not in target_tree:  # condition (3)
                    continue
                new_cost = (
                    target_tree.cost_from_source(parent)
                    + cost_to_subscriber[parent]
                )
                if new_cost >= bound:  # condition (4)
                    continue
                candidate = _Swap(
                    victim=SubscriptionRequest(
                        subscriber=subscriber, stream=stream
                    ),
                    victim_tree=tree,
                    parent=parent,
                    quality=victim_q,
                )
                if best is None or (candidate.quality, str(stream)) < (
                    best.quality,
                    str(best.victim.stream),
                ):
                    best = candidate
        return best

    def _apply_swap(
        self,
        problem: ForestProblem,
        state: BuilderState,
        forest: OverlayForest,
        request: SubscriptionRequest,
        swap: _Swap,
    ) -> None:
        """Move the edge ``parent -> subscriber`` from the victim tree to T_j."""
        subscriber = request.subscriber
        # Detach first so the node's degrees are net-unchanged afterwards.
        swap.victim_tree.detach_leaf(subscriber)
        state.record_detach(swap.victim_tree, swap.parent, subscriber)
        target_tree = forest.tree(request.stream)
        edge_cost = problem.edge_cost(swap.parent, subscriber)
        target_tree.attach(swap.parent, subscriber, edge_cost)
        state.record_attach(target_tree, swap.parent, subscriber)
        forest.satisfied.remove(swap.victim)
        forest.rejected.append((swap.victim, RejectionReason.VICTIM_SWAPPED))
        forest.satisfied.append(request)
