"""Synthetic geographic backbone generator.

For sweeps beyond the embedded datasets (e.g. Fig. 10 runs up to 20
nodes) we generate Waxman-style backbones embedded on the globe: PoPs are
placed inside continental bounding boxes with realistic weights, and link
probability decays exponentially with distance (the classic Waxman model).
A spanning tree over nearest neighbours is added first so the result is
always connected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.topology.geo import GeoPoint, haversine_km
from repro.topology.graph import Topology
from repro.util.rng import RngStream
from repro.util.validation import check_at_least, check_probability, check_positive

#: (name, weight, lat_min, lat_max, lon_min, lon_max) — rough continental boxes.
_REGIONS: list[tuple[str, float, float, float, float, float]] = [
    ("north-america", 0.35, 25.0, 50.0, -125.0, -70.0),
    ("europe", 0.30, 36.0, 60.0, -10.0, 25.0),
    ("asia", 0.25, 1.0, 46.0, 100.0, 145.0),
    ("south-america", 0.10, -35.0, 5.0, -70.0, -40.0),
]


@dataclass
class SyntheticBackboneConfig:
    """Parameters of the synthetic backbone generator.

    Attributes
    ----------
    n_pops:
        Number of points of presence to place (>= 2).
    waxman_alpha:
        Distance-decay scale as a fraction of the maximum pairwise
        distance; larger values yield longer links.
    waxman_beta:
        Overall link density multiplier in (0, 1].
    extra_degree:
        Target mean extra degree added on top of the connectivity
        spanning tree.
    regions:
        Continental boxes with placement weights; defaults to a
        four-continent split similar to real tier-1 footprints.
    """

    n_pops: int = 24
    waxman_alpha: float = 0.25
    waxman_beta: float = 0.6
    extra_degree: float = 2.0
    regions: list[tuple[str, float, float, float, float, float]] = field(
        default_factory=lambda: list(_REGIONS)
    )

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on bad parameters."""
        check_at_least("n_pops", self.n_pops, 2)
        check_probability("waxman_beta", self.waxman_beta)
        check_positive("waxman_alpha", self.waxman_alpha)
        if self.extra_degree < 0:
            raise ConfigurationError(
                f"extra_degree must be non-negative, got {self.extra_degree}"
            )
        if not self.regions:
            raise ConfigurationError("at least one placement region is required")


def synthetic_backbone(config: SyntheticBackboneConfig, rng: RngStream) -> Topology:
    """Generate a connected, geographically-embedded backbone.

    The construction places PoPs region-by-region, connects them with a
    nearest-neighbour spanning tree (guaranteeing connectivity), then adds
    Waxman links until the target mean degree is reached.
    """
    config.validate()
    topology = Topology(name=f"synthetic-{config.n_pops}")
    points: list[tuple[str, GeoPoint]] = []
    names = [name for name, *_ in config.regions]
    weights = [weight for _, weight, *_ in config.regions]
    boxes = {name: box for name, _, *box in config.regions}
    for index in range(config.n_pops):
        region = rng.weighted_choice(names, weights)
        lat_min, lat_max, lon_min, lon_max = boxes[region]
        point = GeoPoint(rng.uniform(lat_min, lat_max), rng.uniform(lon_min, lon_max))
        pop_id = f"pop-{index:03d}-{region}"
        topology.add_pop(pop_id, point)
        points.append((pop_id, point))

    # Connectivity first: greedily attach each new PoP to its nearest
    # already-placed PoP (a randomized nearest-neighbour tree).
    for index in range(1, len(points)):
        pop_id, point = points[index]
        nearest = min(
            points[:index], key=lambda entry: haversine_km(point, entry[1])
        )
        topology.add_link(pop_id, nearest[0])

    # Waxman extra links: P(u, v) = beta * exp(-d / (alpha * d_max)).
    max_distance = max(
        haversine_km(pa, pb)
        for i, (_, pa) in enumerate(points)
        for _, pb in points[i + 1 :]
    ) if len(points) > 1 else 1.0
    scale = config.waxman_alpha * max(max_distance, 1e-9)
    target_links = int(config.n_pops * config.extra_degree / 2)
    candidates = [
        (a_id, b_id, haversine_km(a_pt, b_pt))
        for i, (a_id, a_pt) in enumerate(points)
        for b_id, b_pt in points[i + 1 :]
    ]
    rng.shuffle(candidates)
    added = 0
    existing = {frozenset((link.a, link.b)) for link in topology.links()}
    for a_id, b_id, dist in candidates:
        if added >= target_links:
            break
        if frozenset((a_id, b_id)) in existing:
            continue
        probability = config.waxman_beta * math.exp(-dist / scale)
        if rng.random() < probability:
            topology.add_link(a_id, b_id)
            existing.add(frozenset((a_id, b_id)))
            added += 1
    return topology
