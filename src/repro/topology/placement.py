"""Site placement: choosing which PoPs host 3DTI sites.

The paper "randomly select[s] 3-10 nodes" from the topology for each
experiment; :func:`place_sites` implements that plus a deterministic
"spread" strategy (farthest-point sampling) useful for worst-case latency
studies.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, TopologyError
from repro.topology.geo import haversine_km
from repro.topology.graph import Topology
from repro.util.rng import RngStream


def place_sites(
    topology: Topology,
    n_sites: int,
    rng: RngStream | None = None,
    strategy: str = "random",
) -> list[str]:
    """Choose ``n_sites`` distinct PoPs to host the 3DTI sites.

    Parameters
    ----------
    topology:
        The backbone to place sites on.
    n_sites:
        Number of sites; must not exceed the number of PoPs.
    rng:
        Required for the ``random`` strategy (and used to pick the seed
        PoP for ``spread``).
    strategy:
        ``"random"`` — uniform sample without replacement (the paper's
        method); ``"spread"`` — greedy farthest-point sampling by
        great-circle distance.
    """
    if n_sites < 1:
        raise ConfigurationError(f"n_sites must be >= 1, got {n_sites}")
    pops = topology.pop_ids
    if n_sites > len(pops):
        raise TopologyError(
            f"cannot place {n_sites} sites on a {len(pops)}-PoP backbone"
        )
    if strategy == "random":
        if rng is None:
            raise ConfigurationError("the 'random' strategy requires an rng")
        return rng.sample(pops, n_sites)
    if strategy == "spread":
        return _farthest_point_sample(topology, n_sites, rng)
    raise ConfigurationError(f"unknown placement strategy {strategy!r}")


def _farthest_point_sample(
    topology: Topology, n_sites: int, rng: RngStream | None
) -> list[str]:
    """Greedy farthest-point sampling over great-circle distances."""
    pops = topology.pop_ids
    first = rng.choice(pops) if rng is not None else pops[0]
    chosen = [first]
    while len(chosen) < n_sites:
        best_pop = None
        best_distance = -1.0
        for pop in pops:
            if pop in chosen:
                continue
            nearest = min(
                haversine_km(topology.location(pop), topology.location(c))
                for c in chosen
            )
            if nearest > best_distance:
                best_distance = nearest
                best_pop = pop
        assert best_pop is not None  # n_sites <= len(pops) guarantees progress
        chosen.append(best_pop)
    return chosen
