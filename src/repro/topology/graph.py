"""The backbone topology graph and its latency metric.

A :class:`Topology` is an undirected graph whose vertices are points of
presence (PoPs) with geographic coordinates and whose edges are backbone
links.  Each link's cost is a one-way latency in milliseconds, derived
from great-circle distance exactly as the paper computes edge costs
("based on the geographical distances between the nodes").

All-pairs shortest-path costs are computed with repeated Dijkstra and
cached; the overlay layer consumes the resulting dense cost matrix.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterable, Iterator, Mapping

from repro.errors import TopologyError
from repro.topology.dense import DenseCostMatrix
from repro.topology.geo import GeoPoint, haversine_km
from repro.util.units import propagation_delay_ms


@dataclass(frozen=True)
class Link:
    """An undirected backbone link between two PoPs with a latency cost."""

    a: str
    b: str
    cost_ms: float

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"self-loop link at PoP {self.a!r}")
        if self.cost_ms < 0:
            raise TopologyError(f"negative link cost: {self.cost_ms}")

    def other(self, node: str) -> str:
        """Return the endpoint that is not ``node``."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise TopologyError(f"{node!r} is not an endpoint of {self}")


class Topology:
    """An undirected, geographically-embedded backbone graph.

    Parameters
    ----------
    name:
        Identifier used in diagnostics and experiment reports.
    """

    def __init__(self, name: str = "backbone") -> None:
        self.name = name
        self._coords: dict[str, GeoPoint] = {}
        self._adj: dict[str, dict[str, float]] = {}
        self._apsp_cache: dict[str, dict[str, float]] = {}

    # -- construction ------------------------------------------------------------

    def add_pop(self, pop_id: str, location: GeoPoint) -> None:
        """Register a PoP.  Re-adding an existing id is an error."""
        if pop_id in self._coords:
            raise TopologyError(f"duplicate PoP id {pop_id!r}")
        self._coords[pop_id] = location
        self._adj[pop_id] = {}
        self._apsp_cache.clear()

    def add_link(self, a: str, b: str, cost_ms: float | None = None) -> Link:
        """Connect two PoPs.

        If ``cost_ms`` is omitted it is derived from the great-circle
        distance between the endpoints (propagation at 2/3 c plus one
        router hop), matching the paper's distance-based edge costs.
        """
        for node in (a, b):
            if node not in self._coords:
                raise TopologyError(f"unknown PoP {node!r}")
        if a == b:
            raise TopologyError(f"self-loop link at PoP {a!r}")
        if cost_ms is None:
            km = haversine_km(self._coords[a], self._coords[b])
            cost_ms = propagation_delay_ms(km, hops=1)
        if cost_ms < 0:
            raise TopologyError(f"negative link cost: {cost_ms}")
        self._adj[a][b] = cost_ms
        self._adj[b][a] = cost_ms
        self._apsp_cache.clear()
        return Link(a, b, cost_ms)

    # -- inspection --------------------------------------------------------------

    @property
    def pop_ids(self) -> list[str]:
        """All PoP identifiers, in insertion order."""
        return list(self._coords)

    def __len__(self) -> int:
        return len(self._coords)

    def __contains__(self, pop_id: str) -> bool:
        return pop_id in self._coords

    def location(self, pop_id: str) -> GeoPoint:
        """Coordinates of a PoP."""
        try:
            return self._coords[pop_id]
        except KeyError:
            raise TopologyError(f"unknown PoP {pop_id!r}") from None

    def neighbors(self, pop_id: str) -> Mapping[str, float]:
        """Adjacent PoPs and link costs."""
        try:
            return dict(self._adj[pop_id])
        except KeyError:
            raise TopologyError(f"unknown PoP {pop_id!r}") from None

    def links(self) -> Iterator[Link]:
        """Iterate each undirected link exactly once."""
        for a, nbrs in self._adj.items():
            for b, cost in nbrs.items():
                if a < b:
                    yield Link(a, b, cost)

    def link_count(self) -> int:
        """Number of undirected links."""
        return sum(1 for _ in self.links())

    def is_connected(self) -> bool:
        """True when every PoP is reachable from every other PoP."""
        if not self._coords:
            return True
        start = next(iter(self._coords))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nbr in self._adj[node]:
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        return len(seen) == len(self._coords)

    # -- shortest paths ----------------------------------------------------------

    #: Below this many PoPs the pure-Python Dijkstra wins (and every
    #: tier-1 topology stays on the reference path); above it, a single
    #: scipy sparse-graph solve replaces per-source heap runs when scipy
    #: is importable.
    _BULK_SSSP_MIN_POPS = 128

    def _bulk_shortest_costs(self, sources: Iterable[str]) -> None:
        """Pre-fill the APSP cache for ``sources`` in one sparse solve.

        Purely an accelerator: scipy's Dijkstra performs the identical
        ``dist[u] + w`` float relaxation, and with non-negative weights
        the per-node distances are the unique fixpoint of that
        recurrence — bit-for-bit equal to :meth:`shortest_costs_from`
        (pinned by the equivalence test).  No-ops (leaving the reference
        path in charge) on small graphs or when scipy is missing.
        """
        missing = [s for s in sources if s not in self._apsp_cache]
        if not missing or len(self._coords) < self._BULK_SSSP_MIN_POPS:
            return
        try:
            from scipy.sparse import csr_matrix
            from scipy.sparse.csgraph import dijkstra
        except ImportError:  # pragma: no cover - depends on environment
            return
        pops = list(self._coords)
        index = {pop: i for i, pop in enumerate(pops)}
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for a, nbrs in self._adj.items():
            ia = index[a]
            for b, cost in nbrs.items():
                rows.append(ia)
                cols.append(index[b])
                data.append(cost)
        graph = csr_matrix(
            (data, (rows, cols)), shape=(len(pops), len(pops))
        )
        dist = dijkstra(
            graph, directed=True, indices=[index[s] for s in missing]
        )
        unreachable = float("inf")
        for source, row in zip(missing, dist):
            self._apsp_cache[source] = {
                pops[j]: float(row[j])
                for j in range(len(pops))
                if row[j] != unreachable
            }

    def shortest_costs_from(self, source: str) -> Mapping[str, float]:
        """Dijkstra single-source latency costs (cached).

        Returns the cached row itself wrapped read-only — callers on the
        sweep hot path hit this per sample, and copying the whole row
        per hit dominated profile time.  Use ``dict(...)`` for a
        mutable copy.
        """
        if source not in self._coords:
            raise TopologyError(f"unknown PoP {source!r}")
        cached = self._apsp_cache.get(source)
        if cached is not None:
            return MappingProxyType(cached)
        dist: dict[str, float] = {source: 0.0}
        heap: list[tuple[float, str]] = [(0.0, source)]
        done: set[str] = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in done:
                continue
            done.add(node)
            for nbr, cost in self._adj[node].items():
                nd = d + cost
                if nd < dist.get(nbr, float("inf")):
                    dist[nbr] = nd
                    heapq.heappush(heap, (nd, nbr))
        self._apsp_cache[source] = dist
        return MappingProxyType(dist)

    def cost_ms(self, a: str, b: str) -> float:
        """Shortest-path one-way latency between two PoPs."""
        if a == b:
            return 0.0
        costs = self.shortest_costs_from(a)
        try:
            return costs[b]
        except KeyError:
            raise TopologyError(f"no path from {a!r} to {b!r}") from None

    def cost_matrix(self, pops: Iterable[str] | None = None) -> dict[str, dict[str, float]]:
        """Dense pairwise latency matrix restricted to ``pops``.

        This is the object the overlay layer consumes: a symmetric
        mapping ``matrix[a][b] -> ms`` over the selected PoPs.
        """
        selected = list(pops) if pops is not None else self.pop_ids
        for node in selected:
            if node not in self._coords:
                raise TopologyError(f"unknown PoP {node!r}")
        self._bulk_shortest_costs(selected)
        matrix: dict[str, dict[str, float]] = {}
        for a in selected:
            costs = self.shortest_costs_from(a)
            row: dict[str, float] = {}
            for b in selected:
                if a == b:
                    row[b] = 0.0
                elif b in costs:
                    row[b] = costs[b]
                else:
                    raise TopologyError(f"no path from {a!r} to {b!r}")
            matrix[a] = row
        return matrix

    def dense_cost_matrix(
        self, pops: Iterable[str] | None = None
    ) -> DenseCostMatrix:
        """The pairwise latency matrix as an index-mapped dense matrix.

        This is the form the overlay hot paths consume: contiguous row
        lists with O(1) ``edge_cost`` and bulk row access, labelled by
        PoP id in the order of ``pops``.
        """
        selected = list(pops) if pops is not None else self.pop_ids
        for a in selected:
            if a not in self._coords:
                raise TopologyError(f"unknown PoP {a!r}")
        self._bulk_shortest_costs(selected)
        rows: list[list[float]] = []
        for a in selected:
            costs = self.shortest_costs_from(a)
            row: list[float] = []
            for b in selected:
                if a == b:
                    row.append(0.0)
                elif b in costs:
                    row.append(costs[b])
                else:
                    raise TopologyError(f"no path from {a!r} to {b!r}")
            rows.append(row)
        return DenseCostMatrix(rows, labels=selected)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Topology(name={self.name!r}, pops={len(self._coords)}, "
            f"links={self.link_count()})"
        )


@dataclass
class TopologyStats:
    """Summary statistics of a topology, for reports and sanity tests."""

    pops: int
    links: int
    mean_link_cost_ms: float
    max_link_cost_ms: float
    diameter_ms: float = field(default=0.0)

    @classmethod
    def of(cls, topology: Topology) -> "TopologyStats":
        """Compute stats (including latency diameter) for ``topology``."""
        link_costs = [link.cost_ms for link in topology.links()]
        if not link_costs:
            return cls(pops=len(topology), links=0, mean_link_cost_ms=0.0, max_link_cost_ms=0.0)
        diameter = 0.0
        for src in topology.pop_ids:
            costs = topology.shortest_costs_from(src)
            diameter = max(diameter, max(costs.values()))
        return cls(
            pops=len(topology),
            links=len(link_costs),
            mean_link_cost_ms=sum(link_costs) / len(link_costs),
            max_link_cost_ms=max(link_costs),
            diameter_ms=diameter,
        )
