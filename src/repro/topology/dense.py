"""Contiguous dense cost matrices for the overlay hot paths.

The overlay builders interrogate pairwise latency costs millions of
times per sweep (every parent search scans every tree member).  A
dict-of-dict matrix pays two hash lookups per probe; the
:class:`DenseCostMatrix` here stores the same data as an index-mapped
list of row lists, so a probe is two list indexings and a whole row can
be handed to a scan loop at once.

The row/column lists stay the authoritative storage on every array
backend (scalar probes are faster on lists); when the numpy backend is
active, :meth:`row_array`/:meth:`column_array` expose lazily-built
ndarray mirrors for the vectorized bulk kernels.  ``set_cost`` patches
rows, the lazy transpose and any mirrors in place, so a diffed round's
single-entry cost tweaks no longer re-pay the O(N²) transpose rebuild.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Iterable, Mapping, Sequence

from repro.errors import TopologyError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.backend import ArrayBackend


class DenseCostMatrix:
    """An n x n cost matrix over nodes indexed ``0..n-1``.

    Rows are plain float lists; :meth:`row` and :meth:`column` return
    the internal lists directly (no copies) and callers must treat them
    as read-only.  An optional ``labels`` sequence maps external ids
    (e.g. PoP names) to indices for graph-level consumers.
    """

    __slots__ = (
        "n",
        "_rows",
        "_cols",
        "_labels",
        "_index",
        "_backend",
        "_rows_arr",
        "_cols_arr",
    )

    def __init__(
        self,
        rows: list[list[float]],
        labels: Sequence[Hashable] | None = None,
        backend: "ArrayBackend | str | None" = None,
    ) -> None:
        self.n = len(rows)
        for i, row in enumerate(rows):
            if len(row) != self.n:
                raise TopologyError(
                    f"row {i} has {len(row)} entries, expected {self.n}"
                )
        self._rows = rows
        self._cols: list[list[float]] | None = None
        self._backend = backend
        self._rows_arr = None
        self._cols_arr = None
        if labels is not None and len(labels) != self.n:
            raise TopologyError(
                f"{len(labels)} labels for {self.n} rows"
            )
        self._labels = list(labels) if labels is not None else None
        self._index = (
            {label: i for i, label in enumerate(self._labels)}
            if self._labels is not None
            else None
        )

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_nested(
        cls,
        nested: Mapping,
        nodes: Iterable[Hashable] | None = None,
    ) -> "DenseCostMatrix":
        """Build from a ``nested[a][b] -> cost`` mapping.

        ``nodes`` fixes the index order; by default the mapping's own
        key order is used.  Missing entries raise
        :class:`~repro.errors.TopologyError`.
        """
        order = list(nodes) if nodes is not None else list(nested)
        rows: list[list[float]] = []
        for a in order:
            source = nested.get(a)
            if source is None:
                raise TopologyError(f"missing cost row for node {a!r}")
            try:
                rows.append([float(source[b]) for b in order])
            except KeyError as missing:
                raise TopologyError(
                    f"missing cost entry {a!r}->{missing.args[0]!r}"
                ) from None
        return cls(rows, labels=order)

    # -- lookups -----------------------------------------------------------------

    def edge_cost(self, a: int, b: int) -> float:
        """O(1) cost between node indices ``a`` and ``b``."""
        return self._rows[a][b]

    def row(self, a: int) -> list[float]:
        """Costs *from* node ``a`` to every node (shared list, read-only)."""
        return self._rows[a]

    def rows(self) -> list[list[float]]:
        """All rows in index order (the shared lists, read-only)."""
        return self._rows

    def column(self, b: int) -> list[float]:
        """Costs *to* node ``b`` from every node (shared list, read-only).

        The transpose is materialized lazily on first use and reused, so
        repeated column scans (the parent-search hot path) stay O(1) per
        call after the first.
        """
        if self._cols is None:
            self._cols = [list(col) for col in zip(*self._rows)] if self.n else []
        return self._cols[b]

    def set_cost(self, a: int, b: int, value: float) -> None:
        """Update one entry, patching the transpose and mirrors in place.

        Dropping the lazy transpose here would force a diffed round's
        next ``column`` call to re-pay the O(N²) rebuild for a single
        changed entry; instead every materialized view is kept in sync.
        """
        self._rows[a][b] = value
        if self._cols is not None:
            self._cols[b][a] = value
        if self._rows_arr is not None:
            self._rows_arr[a, b] = value
        if self._cols_arr is not None:
            self._cols_arr[b, a] = value

    # -- array mirrors -----------------------------------------------------------

    @property
    def array_backend(self) -> "ArrayBackend":
        """The resolved array backend for this matrix (lazily bound)."""
        from repro.core.backend import ArrayBackend, resolve_backend

        if not isinstance(self._backend, ArrayBackend):
            self._backend = resolve_backend(self._backend)
        return self._backend

    def row_array(self, a: int):
        """Row ``a`` as this backend's vector type (ndarray on numpy)."""
        backend = self.array_backend
        if backend.name != "numpy":
            return self._rows[a]
        if self._rows_arr is None:
            self._rows_arr = backend.as_vector(self._rows)
        return self._rows_arr[a]

    def column_array(self, b: int):
        """Column ``b`` as this backend's vector type (ndarray on numpy)."""
        backend = self.array_backend
        if backend.name != "numpy":
            return self.column(b)
        if self._cols_arr is None:
            if self._rows_arr is None:
                self._rows_arr = backend.as_vector(self._rows)
            # Materialized (C-contiguous) so fancy-indexed gathers in the
            # parent scan do not stride across the transpose view.
            self._cols_arr = self._rows_arr.T.copy()
        return self._cols_arr[b]

    def index_of(self, label: Hashable) -> int:
        """Index of an external node id (requires labels)."""
        if self._index is None:
            raise TopologyError("matrix has no label mapping")
        try:
            return self._index[label]
        except KeyError:
            raise TopologyError(f"unknown node {label!r}") from None

    @property
    def labels(self) -> list[Hashable] | None:
        """External ids in index order, when provided."""
        return list(self._labels) if self._labels is not None else None

    def is_symmetric(self, tolerance: float = 0.0) -> bool:
        """True when ``cost(a, b) == cost(b, a)`` everywhere."""
        rows = self._rows
        for i in range(self.n):
            row = rows[i]
            for j in range(i + 1, self.n):
                if abs(row[j] - rows[j][i]) > tolerance:
                    return False
        return True

    def to_nested(self) -> dict:
        """Export back to the legacy ``nested[a][b]`` dict form.

        Keys are labels when present, indices otherwise.
        """
        keys = self._labels if self._labels is not None else list(range(self.n))
        return {
            keys[i]: {keys[j]: self._rows[i][j] for j in range(self.n)}
            for i in range(self.n)
        }

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"DenseCostMatrix(n={self.n}, labelled={self._labels is not None})"
