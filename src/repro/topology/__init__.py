"""Internet topology substrate (the paper's Mapnet stand-in).

The evaluation in the paper selects 3-10 nodes from a real Internet
topology (CAIDA Mapnet) and derives edge costs from geographic distance.
The Mapnet snapshot is no longer distributed, so this package provides:

* :mod:`repro.topology.backbone` — embedded PoP-level backbone datasets
  with real public city coordinates (an Internet2/Abilene-like national
  research network and a tier-1-like global carrier);
* :mod:`repro.topology.synthetic` — a geographic Waxman generator for
  arbitrarily sized backbones;
* :mod:`repro.topology.graph` — the :class:`Topology` graph with
  Dijkstra-based all-pairs latency costs;
* :mod:`repro.topology.placement` — site-placement strategies.

The overlay-construction algorithms consume only the resulting pairwise
RP-to-RP cost matrix, so any geographically-embedded connected graph
exercises the identical code paths as the original Mapnet data.
"""

from repro.topology.dense import DenseCostMatrix
from repro.topology.geo import GeoPoint, haversine_km
from repro.topology.graph import Link, Topology
from repro.topology.backbone import BACKBONES, load_backbone
from repro.topology.synthetic import SyntheticBackboneConfig, synthetic_backbone
from repro.topology.placement import place_sites

__all__ = [
    "DenseCostMatrix",
    "GeoPoint",
    "haversine_km",
    "Link",
    "Topology",
    "BACKBONES",
    "load_backbone",
    "SyntheticBackboneConfig",
    "synthetic_backbone",
    "place_sites",
]
