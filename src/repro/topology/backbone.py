"""Embedded PoP-level backbone datasets (the Mapnet substitute).

CAIDA's Mapnet visualized real ISP backbone maps: PoPs at real cities
joined by physical links.  The snapshot used in the paper is no longer
distributed, so we embed two datasets of the same character, built from
public city coordinates:

* ``abilene`` — the 11-PoP Internet2/Abilene research backbone that the
  paper's testbed (TEEVE, Internet2 sites) actually ran over;
* ``tier1`` — a 26-PoP global carrier-style backbone spanning North
  America, Europe, Asia-Pacific, and South America.

Link costs are derived from great-circle distance when the topology is
instantiated, exactly as the paper computes costs.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.geo import GeoPoint
from repro.topology.graph import Topology

# (pop id, latitude, longitude)
_ABILENE_POPS: list[tuple[str, float, float]] = [
    ("seattle", 47.61, -122.33),
    ("sunnyvale", 37.37, -122.04),
    ("los-angeles", 34.05, -118.24),
    ("denver", 39.74, -104.99),
    ("kansas-city", 39.10, -94.58),
    ("houston", 29.76, -95.37),
    ("atlanta", 33.75, -84.39),
    ("washington-dc", 38.91, -77.04),
    ("new-york", 40.71, -74.01),
    ("chicago", 41.88, -87.63),
    ("indianapolis", 39.77, -86.16),
]

_ABILENE_LINKS: list[tuple[str, str]] = [
    ("seattle", "sunnyvale"),
    ("seattle", "denver"),
    ("sunnyvale", "los-angeles"),
    ("sunnyvale", "denver"),
    ("los-angeles", "houston"),
    ("denver", "kansas-city"),
    ("kansas-city", "houston"),
    ("kansas-city", "indianapolis"),
    ("houston", "atlanta"),
    ("atlanta", "indianapolis"),
    ("atlanta", "washington-dc"),
    ("indianapolis", "chicago"),
    ("chicago", "new-york"),
    ("new-york", "washington-dc"),
]

_TIER1_POPS: list[tuple[str, float, float]] = [
    # North America
    ("seattle", 47.61, -122.33),
    ("palo-alto", 37.44, -122.14),
    ("los-angeles", 34.05, -118.24),
    ("denver", 39.74, -104.99),
    ("dallas", 32.78, -96.80),
    ("chicago", 41.88, -87.63),
    ("atlanta", 33.75, -84.39),
    ("miami", 25.76, -80.19),
    ("washington-dc", 38.91, -77.04),
    ("new-york", 40.71, -74.01),
    ("toronto", 43.65, -79.38),
    ("mexico-city", 19.43, -99.13),
    # Europe
    ("london", 51.51, -0.13),
    ("paris", 48.86, 2.35),
    ("amsterdam", 52.37, 4.90),
    ("frankfurt", 50.11, 8.68),
    ("madrid", 40.42, -3.70),
    ("milan", 45.46, 9.19),
    ("stockholm", 59.33, 18.07),
    # Asia-Pacific
    ("tokyo", 35.68, 139.69),
    ("seoul", 37.57, 126.98),
    ("hong-kong", 22.32, 114.17),
    ("singapore", 1.35, 103.82),
    ("sydney", -33.87, 151.21),
    # South America
    ("sao-paulo", -23.55, -46.63),
    ("buenos-aires", -34.60, -58.38),
]

_TIER1_LINKS: list[tuple[str, str]] = [
    # North American mesh
    ("seattle", "palo-alto"),
    ("seattle", "denver"),
    ("seattle", "chicago"),
    ("palo-alto", "los-angeles"),
    ("palo-alto", "denver"),
    ("los-angeles", "dallas"),
    ("denver", "dallas"),
    ("denver", "chicago"),
    ("dallas", "atlanta"),
    ("dallas", "chicago"),
    ("chicago", "toronto"),
    ("chicago", "new-york"),
    ("atlanta", "miami"),
    ("atlanta", "washington-dc"),
    ("washington-dc", "new-york"),
    ("new-york", "toronto"),
    ("los-angeles", "mexico-city"),
    ("dallas", "mexico-city"),
    # Transatlantic
    ("new-york", "london"),
    ("washington-dc", "paris"),
    ("new-york", "amsterdam"),
    # European ring
    ("london", "paris"),
    ("london", "amsterdam"),
    ("amsterdam", "frankfurt"),
    ("paris", "frankfurt"),
    ("paris", "madrid"),
    ("frankfurt", "milan"),
    ("frankfurt", "stockholm"),
    ("milan", "madrid"),
    # Transpacific and intra-Asia
    ("seattle", "tokyo"),
    ("los-angeles", "tokyo"),
    ("tokyo", "seoul"),
    ("tokyo", "hong-kong"),
    ("hong-kong", "singapore"),
    ("seoul", "hong-kong"),
    ("singapore", "sydney"),
    ("los-angeles", "sydney"),
    # Europe-Asia
    ("frankfurt", "singapore"),
    # South America
    ("miami", "sao-paulo"),
    ("sao-paulo", "buenos-aires"),
    ("mexico-city", "sao-paulo"),
]

#: Registry of embedded backbone datasets: name -> (pops, links).
BACKBONES: dict[str, tuple[list[tuple[str, float, float]], list[tuple[str, str]]]] = {
    "abilene": (_ABILENE_POPS, _ABILENE_LINKS),
    "tier1": (_TIER1_POPS, _TIER1_LINKS),
}


#: Seed for generated ``synthetic-<n>`` backbones; fixed so a name like
#: ``synthetic-256`` denotes one reproducible topology everywhere.
SYNTHETIC_BACKBONE_SEED = 9001


def load_backbone(name: str = "tier1") -> Topology:
    """Instantiate an embedded backbone dataset as a :class:`Topology`.

    Beyond the embedded datasets, ``synthetic-<n>`` (e.g.
    ``synthetic-256``) generates a deterministic Waxman backbone with
    ``n`` PoPs, which is how scenario and perf sweeps scale past the
    26-PoP tier-1 map.

    Raises
    ------
    TopologyError
        If ``name`` is not one of :data:`BACKBONES` or ``synthetic-<n>``.
    """
    if name.startswith("synthetic-"):
        return _synthetic_by_name(name)
    try:
        pops, links = BACKBONES[name]
    except KeyError:
        known = ", ".join(sorted(BACKBONES))
        raise TopologyError(
            f"unknown backbone {name!r}; known: {known}, synthetic-<n>"
        ) from None
    topology = Topology(name=name)
    for pop_id, lat, lon in pops:
        topology.add_pop(pop_id, GeoPoint(lat, lon))
    for a, b in links:
        topology.add_link(a, b)
    if not topology.is_connected():  # defensive: datasets above are connected
        raise TopologyError(f"backbone {name!r} is not connected")
    return topology


def _synthetic_by_name(name: str) -> Topology:
    """Generate the deterministic backbone for a ``synthetic-<n>`` name."""
    from repro.topology.synthetic import SyntheticBackboneConfig, synthetic_backbone
    from repro.util.rng import RngStream

    suffix = name[len("synthetic-"):]
    try:
        n_pops = int(suffix)
    except ValueError:
        raise TopologyError(
            f"bad synthetic backbone name {name!r}; expected synthetic-<n>"
        ) from None
    if n_pops < 2:
        raise TopologyError(f"synthetic backbone needs >= 2 PoPs, got {n_pops}")
    topology = synthetic_backbone(
        SyntheticBackboneConfig(n_pops=n_pops),
        RngStream(SYNTHETIC_BACKBONE_SEED, label=name),
    )
    topology.name = name
    return topology
