"""Geographic primitives: coordinates and great-circle distance."""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Mean Earth radius in kilometres.
EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class GeoPoint:
    """A point on the Earth's surface (degrees latitude / longitude)."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return haversine_km(self, other)


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points via the haversine formula."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(math.sqrt(min(1.0, h)))
