"""Figure 11: RJ vs CO-RJ under the correlation-aware rejection metric.

Heterogeneous nodes, Zipf workload, N = 3..10, with the rejection metric
redefined to account for stream correlation (Eq. 3).  The paper's
finding: CO-RJ's weighted rejection *decreases* as sites grow (more
trees mean more swap opportunities) while RJ's grows; at N = 10 CO-RJ is
a factor of ~5 better.

We plot the bounded criticality-loss ratio (DESIGN.md metric note) and
also record Eq. 3 verbatim in a second pair of series.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.correlation import CorrelatedRandomJoinBuilder
from repro.core.metrics import correlation_weighted_rejection, criticality_loss_ratio
from repro.core.randomized import RandomJoinBuilder
from repro.experiments.runner import SeriesResult, audit_hook, sample_problems
from repro.experiments.settings import ExperimentSetting
from repro.topology.backbone import load_backbone
from repro.util.rng import RngStream

#: The paper sweeps 3..10 sites.
FIG11_SITES = tuple(range(3, 11))


def run_fig11(
    setting: ExperimentSetting | None = None,
    n_sites_values: Sequence[int] = FIG11_SITES,
) -> SeriesResult:
    """Regenerate Fig. 11: the two algorithms' correlation-aware rejection."""
    if setting is None:
        setting = ExperimentSetting(
            workload="zipf",
            nodes="heterogeneous",
            # Fig. 11 calibration (DESIGN.md): denser interest and no
            # coverage guarantee, so critically-lost streams belong to
            # real multicast groups that CO-RJ's swap can actually use
            # (solo-subscriber trees admit no victim parent).
            interest=0.18,
            guarantee_coverage=False,
        )
    topology = load_backbone(setting.backbone)
    builders = {"rj": RandomJoinBuilder(), "co-rj": CorrelatedRandomJoinBuilder()}
    auditor = audit_hook(setting)
    result = SeriesResult(xs=list(n_sites_values))
    build_root = RngStream(setting.seed, label=f"{setting.label()}-fig11")
    for n_sites in n_sites_values:
        totals = {name: 0.0 for name in builders}
        eq3_totals = {name: 0.0 for name in builders}
        count = 0
        for index, problem in enumerate(
            sample_problems(setting, n_sites, topology=topology)
        ):
            count += 1
            for name, builder in builders.items():
                rng = build_root.spawn(f"N{n_sites}/sample{index}/{name}")
                build = builder.build(problem, rng)
                if auditor is not None:
                    auditor.audit_build(
                        build, event=f"fig11/N{n_sites}/{index}/{name}"
                    )
                totals[name] += criticality_loss_ratio(build)
                eq3_totals[name] += correlation_weighted_rejection(build)
        for name in builders:
            result.add_point(name, totals[name] / count)
            result.add_point(f"{name}-eq3", eq3_totals[name] / count)
    return result


def improvement_factor(result: SeriesResult, suffix: str = "") -> float:
    """CO-RJ's improvement factor over RJ at the largest N.

    ``suffix=""`` compares the bounded criticality-loss series;
    ``suffix="-eq3"`` compares Eq. 3 verbatim.
    """
    rj = result.series["rj" + suffix][-1]
    co = result.series["co-rj" + suffix][-1]
    if co == 0.0:
        return float("inf")
    return rj / co
