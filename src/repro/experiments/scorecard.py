"""Machine-checkable reproduction scorecard.

EXPERIMENTS.md states, per figure, which of the paper's qualitative
shapes this library reproduces.  This module encodes those claims as
executable checks over freshly-run harness results, so the scorecard
can never silently drift from the code: ``tele3d scorecard`` (or the
corresponding test) re-runs every figure at a reduced sample count and
evaluates each claim.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import improvement_factor, run_fig11
from repro.experiments.settings import ExperimentSetting


@dataclass(frozen=True)
class Claim:
    """One shape claim: an artifact, a statement, and its verdict."""

    artifact: str
    statement: str
    holds: bool
    detail: str = ""

    def render(self) -> str:
        """One scorecard line."""
        mark = "PASS" if self.holds else "FAIL"
        detail = f"  [{self.detail}]" if self.detail else ""
        return f"[{mark}] {self.artifact}: {self.statement}{detail}"


def evaluate_fig8(samples: int = 40, seed: int = 42) -> list[Claim]:
    """Shape claims for the two extreme Fig. 8 panels."""
    claims: list[Claim] = []
    for workload, nodes in (("random", "uniform"), ("zipf", "heterogeneous")):
        setting = ExperimentSetting(
            workload=workload, nodes=nodes, samples=samples, seed=seed
        )
        result = run_fig8(setting)
        label = f"fig8 {workload}/{nodes}"
        rj, ltf = result.series["rj"], result.series["ltf"]
        stf, mctf = result.series["stf"], result.series["mctf"]
        claims.append(
            Claim(
                label,
                "rejection trends upward with N",
                rj[-1] > min(rj) and ltf[-1] > min(ltf),
                f"rj {rj[0]:.3f}->{rj[-1]:.3f}",
            )
        )
        if nodes == "heterogeneous":
            # LTF's whole-tree advantage shows across the full sweep.
            claims.append(
                Claim(
                    label,
                    "LTF beats STF on average",
                    sum(ltf) < sum(stf),
                    f"mean ltf {sum(ltf)/len(ltf):.4f} "
                    f"vs stf {sum(stf)/len(stf):.4f}",
                )
            )
        else:
            # In uniform panels STF catches up once inbound saturates
            # (N >= 8, documented deviation); claim the first half.
            half = len(result.xs) // 2 + 1
            claims.append(
                Claim(
                    label,
                    "LTF beats-or-ties STF over the first half of the sweep "
                    "(STF catches up at large N — documented deviation)",
                    sum(ltf[:half]) <= sum(stf[:half]) * 1.005,
                    f"first-half ltf {sum(ltf[:half]):.4f} "
                    f"vs stf {sum(stf[:half]):.4f}",
                )
            )
        claims.append(
            Claim(
                label,
                "RJ within 5% of the best algorithm on average "
                "(paper: RJ best outright)",
                sum(rj) <= 1.05 * min(sum(ltf), sum(stf), sum(mctf)),
                f"mean rj {sum(rj)/len(rj):.4f}",
            )
        )
    return claims


def evaluate_fig9(samples: int = 40, seed: int = 42) -> list[Claim]:
    """Shape claims for the granularity spectrum."""
    setting = ExperimentSetting(
        workload="random", nodes="uniform", samples=samples, seed=seed
    )
    result = run_fig9(setting)
    values = result.series["gran-ltf"]
    spread = (max(values) - min(values)) / max(min(values), 1e-9)
    return [
        Claim(
            "fig9",
            "granularity spectrum stays within a 15% band "
            "(paper's 20% gain NOT reproduced — documented)",
            spread <= 0.15,
            f"band {spread:.1%}",
        ),
        Claim(
            "fig9",
            "large granularity does not degrade beyond 10% of g=1",
            values[-1] <= values[0] * 1.10,
            f"g=1 {values[0]:.4f} vs g=max {values[-1]:.4f}",
        ),
    ]


def evaluate_fig10(samples: int = 25, seed: int = 42) -> list[Claim]:
    """Shape claims for load balancing."""
    setting = replace(
        ExperimentSetting(
            workload="random", nodes="uniform", samples=samples, seed=seed
        ),
        mean_subscribers=1.4,
        guarantee_coverage=False,
    )
    result = run_fig10(setting)
    utilization = result.series["out-degree-utilization"]
    relay = result.series["relay-fraction"]
    stddev = result.series["utilization-stddev"]
    return [
        Claim(
            "fig10",
            "out-degree utilization high and stable across N",
            min(utilization) > 0.85
            and max(utilization) - min(utilization) < 0.1,
            f"range {min(utilization):.3f}..{max(utilization):.3f}",
        ),
        Claim(
            "fig10",
            "meaningful relay share at every N (paper ~25%, ours ~11-15%)",
            all(r > 0.05 for r in relay),
            f"range {min(relay):.3f}..{max(relay):.3f}",
        ),
        Claim(
            "fig10",
            "cross-node utilization stddev bounded (paper <3%, ours <15%)",
            all(s < 0.15 for s in stddev),
            f"max {max(stddev):.3f}",
        ),
    ]


def evaluate_fig11(samples: int = 25, seed: int = 42) -> list[Claim]:
    """Shape claims for the correlation optimization."""
    setting = replace(
        ExperimentSetting(
            workload="zipf", nodes="heterogeneous", samples=samples, seed=seed
        ),
        interest=0.18,
        guarantee_coverage=False,
    )
    result = run_fig11(setting)
    co, rj = result.series["co-rj"], result.series["rj"]
    factor = improvement_factor(result, suffix="-eq3")
    early_gap = rj[0] - co[0]
    late_gap = rj[-1] - co[-1]
    return [
        Claim(
            "fig11",
            "CO-RJ never worse than RJ (within 2% noise) at any N",
            all(c <= r * 1.02 for c, r in zip(co, rj)),
        ),
        Claim(
            "fig11",
            "CO-RJ's advantage grows with N",
            late_gap > early_gap,
            f"gap {early_gap:.4f} -> {late_gap:.4f}",
        ),
        Claim(
            "fig11",
            "Eq.3 improvement factor > 1.2x at N=10 (paper: 5x — partial)",
            factor > 1.2,
            f"{factor:.2f}x",
        ),
    ]


def full_scorecard(samples: int = 30, seed: int = 42) -> list[Claim]:
    """Every claim, freshly evaluated."""
    claims: list[Claim] = []
    claims.extend(evaluate_fig8(samples=samples, seed=seed))
    claims.extend(evaluate_fig9(samples=samples, seed=seed))
    claims.extend(evaluate_fig10(samples=samples, seed=seed))
    claims.extend(evaluate_fig11(samples=samples, seed=seed))
    return claims


def render_scorecard(claims: list[Claim]) -> str:
    """The scorecard as printable text."""
    lines = ["Reproduction scorecard (shape claims, freshly evaluated):"]
    lines.extend(f"  {claim.render()}" for claim in claims)
    passed = sum(claim.holds for claim in claims)
    lines.append(f"  -- {passed}/{len(claims)} claims hold")
    return "\n".join(lines)
