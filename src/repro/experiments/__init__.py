"""Experiment harnesses regenerating every figure of the evaluation.

One module per paper artifact:

* :mod:`repro.experiments.fig8`  — rejection ratio vs. N, 4 panels;
* :mod:`repro.experiments.fig9`  — granularity analysis;
* :mod:`repro.experiments.fig10` — out-degree utilization / load balance;
* :mod:`repro.experiments.fig11` — RJ vs CO-RJ under the correlation
  metric;
* :mod:`repro.experiments.disruption` — rebuild-policy disruption sweep
  under churn (repair vs re-solve, beyond the paper);
* :mod:`repro.experiments.convergence` — control-convergence latency vs
  control-link delay on the event-driven control plane;

plus :mod:`repro.experiments.runner` (sampling machinery shared by all)
and :mod:`repro.experiments.settings` (the canonical Sec. 5.1 settings).
"""

from repro.experiments.settings import ExperimentSetting
from repro.experiments.runner import SeriesResult, sample_problems, sweep_mean_metric
from repro.experiments.convergence import run_convergence
from repro.experiments.disruption import run_disruption
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11

__all__ = [
    "ExperimentSetting",
    "SeriesResult",
    "sample_problems",
    "sweep_mean_metric",
    "run_convergence",
    "run_disruption",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
]
