"""Canonical experiment settings (Sec. 5.1 of the paper).

Every figure harness consumes an :class:`ExperimentSetting`; the
defaults below are the paper's parameters where stated, and the
documented calibration choices of DESIGN.md where not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.session.capacity import (
    CapacityModel,
    HeterogeneousCapacityModel,
    UniformCapacityModel,
)
from repro.workload.coverage import CoverageWorkloadModel
from repro.workload.uniform import UniformPopularity
from repro.workload.zipf import ZipfPopularity

#: Default number of workload samples per setting (the paper uses 200).
DEFAULT_SAMPLES = 200

#: Default one-way latency bound for interactivity (DESIGN.md calibration).
DEFAULT_LATENCY_BOUND_MS = 120.0

#: Default root seed for all harnesses.
DEFAULT_SEED = 42


@dataclass
class ExperimentSetting:
    """One experiment configuration cell."""

    workload: str = "random"  # "zipf" | "random"
    nodes: str = "uniform"  # "uniform" | "heterogeneous"
    backbone: str = "tier1"
    samples: int = DEFAULT_SAMPLES
    seed: int = DEFAULT_SEED
    latency_bound_ms: float = DEFAULT_LATENCY_BOUND_MS
    #: Mean probability that a remote site subscribes to a given stream
    #: (the coverage workload's density knob; see DESIGN.md calibration).
    interest: float = 0.10
    #: Site-level FOV skew of the coverage workload (a viewer focuses on
    #: one or two remote participants); widens the u_{i->j} spread.
    focus_skew: float = 1.0
    #: Every stream keeps >= 1 subscriber when True (Sec. 5.1's "streams
    #: each site has to send"); Figs. 10/11 disable it (see DESIGN.md).
    guarantee_coverage: bool = True
    #: Fig. 10 calibration: hold the mean subscriber count per stream
    #: constant across N instead of using ``interest`` directly.
    mean_subscribers: float | None = None
    displays_per_site: int = 4
    fov_size: int = 8
    zipf_exponent: float = 1.0
    #: Audit every constructed overlay with the runtime
    #: :class:`~repro.sim.invariants.InvariantAuditor`, aborting the
    #: sweep on the first structural violation.
    audit: bool = False

    def __post_init__(self) -> None:
        if self.workload not in ("zipf", "random"):
            raise ConfigurationError(
                f"workload must be 'zipf' or 'random', got {self.workload!r}"
            )
        if self.nodes not in ("uniform", "heterogeneous"):
            raise ConfigurationError(
                f"nodes must be 'uniform' or 'heterogeneous', got {self.nodes!r}"
            )
        if self.samples < 1:
            raise ConfigurationError(f"samples must be >= 1, got {self.samples}")
        if self.latency_bound_ms <= 0:
            raise ConfigurationError(
                f"latency_bound_ms must be positive, got {self.latency_bound_ms}"
            )

    def capacity_model(self) -> CapacityModel:
        """The paper's node-resource distribution for this setting."""
        if self.nodes == "uniform":
            return UniformCapacityModel()
        return HeterogeneousCapacityModel()

    def popularity_model(self):
        """The display-centric popularity family (FOV/pubsub pipelines)."""
        if self.workload == "zipf":
            return ZipfPopularity(exponent=self.zipf_exponent)
        return UniformPopularity()

    def workload_model(self) -> CoverageWorkloadModel:
        """The stream-centric coverage workload used by the figure sweeps.

        Sec. 5.1 fixes "the number of streams each site has to send",
        i.e. every published stream has at least one subscriber; the
        coverage model samples exactly that (see
        :mod:`repro.workload.coverage`).
        """
        popularity = "zipf" if self.workload == "zipf" else "uniform"
        return CoverageWorkloadModel(
            interest=self.interest,
            popularity=popularity,
            zipf_exponent=self.zipf_exponent,
            focus_skew=self.focus_skew,
            guarantee_coverage=self.guarantee_coverage,
            mean_subscribers=self.mean_subscribers,
        )

    def label(self) -> str:
        """Short identifier used in seeds and report headers."""
        return f"{self.workload}-{self.nodes}"
