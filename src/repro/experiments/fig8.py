"""Figure 8: average rejection ratio of STF/LTF/MCTF/RJ vs. N.

Four panels — (workload, nodes) in {zipf, random} x {heterogeneous,
uniform} — each sweeping N = 3..10 and averaging the rejection ratio
over the setting's workload samples.

Expected shape (paper): rejection grows with N; LTF beats STF (~25 %
under random/heterogeneous); RJ is lowest overall (~16.7 % better than
LTF/MCTF and ~26.7 % better than STF under random/uniform); LTF comes
close to RJ under Zipf.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.metrics import mean_pairwise_rejection
from repro.core.registry import make_builder
from repro.experiments.runner import SeriesResult, sweep_mean_metric
from repro.experiments.settings import ExperimentSetting

#: The four algorithms of Figure 8, in the paper's legend order.
FIG8_ALGORITHMS = ("stf", "ltf", "mctf", "rj")

#: The paper sweeps 3..10 sites.
FIG8_SITES = tuple(range(3, 11))


def run_fig8(
    setting: ExperimentSetting,
    n_sites_values: Sequence[int] = FIG8_SITES,
    algorithms: Sequence[str] = FIG8_ALGORITHMS,
) -> SeriesResult:
    """Regenerate one Fig. 8 panel for ``setting``."""
    builders = {name: make_builder(name) for name in algorithms}
    return sweep_mean_metric(
        setting, list(n_sites_values), builders, mean_pairwise_rejection
    )


def run_fig8_panel(
    workload: str,
    nodes: str,
    samples: int = 200,
    seed: int = 42,
    n_sites_values: Sequence[int] = FIG8_SITES,
) -> SeriesResult:
    """Convenience wrapper selecting the panel by its two setting axes."""
    setting = ExperimentSetting(
        workload=workload, nodes=nodes, samples=samples, seed=seed
    )
    return run_fig8(setting, n_sites_values=n_sites_values)
