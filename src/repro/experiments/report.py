"""Rendering experiment results as tables / plots / markdown sections."""

from __future__ import annotations

from repro.experiments.runner import SeriesResult
from repro.util.ascii_plot import line_plot
from repro.util.tables import Table


def series_table(result: SeriesResult, x_name: str, title: str | None = None) -> str:
    """Render a series result as an aligned ASCII table."""
    table = Table([x_name] + result.names(), title=title)
    for row in result.as_rows():
        table.add_row(row)
    return table.render()


def series_plot(
    result: SeriesResult,
    title: str,
    include: list[str] | None = None,
    height: int = 12,
) -> str:
    """Render selected series of a result as an ASCII line plot."""
    names = include if include is not None else result.names()
    series = {name: result.series[name] for name in names}
    return line_plot(series, result.xs, title=title, height=height)


def markdown_section(
    heading: str,
    expectation: str,
    result: SeriesResult,
    x_name: str,
    observations: str = "",
) -> str:
    """One EXPERIMENTS.md section: expectation, data table, observations."""
    lines = [f"### {heading}", "", f"**Paper expectation.** {expectation}", ""]
    lines.append("```")
    lines.append(series_table(result, x_name))
    lines.append("```")
    if observations:
        lines.extend(["", f"**Observed.** {observations}"])
    lines.append("")
    return "\n".join(lines)
