"""Fig-style disruption sweep: rebuild policies under churn vs N.

The paper's centralized model re-solves the overlay from scratch on any
membership or subscription change; :mod:`repro.core.incremental` adds
local repair.  This harness quantifies the difference the way the
paper's figures do — one curve per rebuild policy, swept across session
size — using the scenario runtime's per-round disruption metric (the
fraction of surviving satisfied requests whose parent moved,
:func:`~repro.core.incremental.churn_rate`).

CLI::

    tele3d disruption --scenario mixed-churn --sizes 8,16,32 --seed 7
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.experiments.runner import SeriesResult
from repro.scenarios.library import get_scenario
from repro.scenarios.runtime import ScenarioReport, ScenarioRuntime
from repro.util.validation import REBUILD_POLICIES, check_rebuild_policy

#: Default sweep sizes; sizes above the embedded backbones switch to the
#: deterministic ``synthetic-<n>`` backbone automatically.
DEFAULT_SIZES = (8, 16, 32)

#: Site counts beyond this need the synthetic backbone (tier1 has 26 PoPs).
_MAX_TIER1_SITES = 26


def policy_spec(scenario: str, sites: int, seed: int, policy: str):
    """A named scenario pinned to one rebuild policy.

    Pools larger than the embedded tier1 backbone switch to the
    deterministic ``synthetic-<n>`` backbone.  This is the canonical
    spec builder for policy comparisons (the scenario property tests
    reuse it).
    """
    check_rebuild_policy(policy)
    spec = get_scenario(scenario, sites=sites, seed=seed)
    overrides: dict = {"rebuild_policy": policy}
    if sites > _MAX_TIER1_SITES:
        overrides["backbone"] = f"synthetic-{sites}"
    return replace(spec, **overrides)


def scenario_report(
    scenario: str,
    sites: int,
    seed: int,
    policy: str,
    audit: bool = False,
) -> ScenarioReport:
    """Run one named scenario under one rebuild policy."""
    spec = policy_spec(scenario, sites=sites, seed=seed, policy=policy)
    return ScenarioRuntime(spec, audit=audit).run()


def run_disruption(
    scenario: str = "mixed-churn",
    sizes: Sequence[int] = DEFAULT_SIZES,
    seed: int = 7,
    policies: Sequence[str] = REBUILD_POLICIES,
    audit: bool = False,
) -> SeriesResult:
    """Sweep mean per-round disruption across N, one series per policy.

    Each policy replays the *same* compiled scenario (same seed, same
    event schedule), so the comparison is paired: only the overlay
    maintenance strategy differs.  A ``<policy>-rejection`` series rides
    along so quality loss is visible next to the stability gain.
    """
    result = SeriesResult(xs=list(sizes))
    for sites in sizes:
        for policy in policies:
            report = scenario_report(
                scenario, sites=sites, seed=seed, policy=policy, audit=audit
            )
            result.add_point(policy, report.mean_disruption)
            result.add_point(f"{policy}-rejection", report.rejection_ratio)
    return result
