"""Figure 9: impact of granularity on rejection ratio.

Gran-LTF constructs ``g`` trees at a time; ``g = 1`` is LTF and ``g = F``
is RJ.  The paper runs ten uniform nodes under the random workload and
finds rejection generally falling as ``g`` grows, with a small
fluctuation region at large granularity.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.granularity import GranularityBuilder
from repro.core.metrics import rejection_ratio
from repro.experiments.runner import SeriesResult, mean_metric_per_builder
from repro.experiments.settings import ExperimentSetting
from repro.topology.backbone import load_backbone

#: Default granularity sweep: dense at the start where the curve moves,
#: sparser toward the RJ end (clamped to each sample's F at build time).
FIG9_GRANULARITIES = (
    1, 2, 3, 4, 5, 6, 8, 10, 13, 16, 20, 25, 30, 40, 50, 60, 80, 100,
)

#: The paper's panel uses ten sites.
FIG9_SITES = 10


def run_fig9(
    setting: ExperimentSetting | None = None,
    granularities: Sequence[int] = FIG9_GRANULARITIES,
    n_sites: int = FIG9_SITES,
) -> SeriesResult:
    """Regenerate Fig. 9: mean rejection ratio per granularity value."""
    if setting is None:
        setting = ExperimentSetting(workload="random", nodes="uniform")
    topology = load_backbone(setting.backbone)
    builders = {
        f"g={g}": GranularityBuilder(granularity=g) for g in granularities
    }
    means = mean_metric_per_builder(
        setting, n_sites, builders, rejection_ratio, topology=topology
    )
    result = SeriesResult(xs=list(granularities))
    for g in granularities:
        result.add_point("gran-ltf", means[f"g={g}"])
    return result
