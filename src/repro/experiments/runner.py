"""Shared sweep machinery: sample problems, average metrics.

Each sample redraws site placement, node capacities and the subscription
workload (the paper averages across 200 subscription samples); every
algorithm sees the *same* problem instance per sample, making the
comparison paired.  All randomness derives from the setting's seed via
named sub-streams, so every figure is reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.core.base import BuildResult, OverlayBuilder
from repro.core.problem import ForestProblem
from repro.experiments.settings import ExperimentSetting
from repro.session.session import SessionConfig, build_session
from repro.topology.backbone import load_backbone
from repro.topology.graph import Topology
from repro.util.rng import RngStream


@dataclass
class SeriesResult:
    """One figure's data: x-axis plus named y-series."""

    xs: list[int]
    series: dict[str, list[float]] = field(default_factory=dict)

    def add_point(self, name: str, value: float) -> None:
        """Append a y value to series ``name``."""
        self.series.setdefault(name, []).append(value)

    def as_rows(self) -> list[list[object]]:
        """Rows of [x, y1, y2, ...] aligned with sorted series names."""
        names = sorted(self.series)
        rows: list[list[object]] = []
        for idx, x in enumerate(self.xs):
            rows.append([x] + [self.series[name][idx] for name in names])
        return rows

    def names(self) -> list[str]:
        """Sorted series names."""
        return sorted(self.series)


def sample_problems(
    setting: ExperimentSetting,
    n_sites: int,
    topology: Topology | None = None,
) -> Iterator[ForestProblem]:
    """Yield ``setting.samples`` independent problem instances.

    Passing a pre-loaded ``topology`` shares its shortest-path cache
    across samples and sweeps.
    """
    topology = topology or load_backbone(setting.backbone)
    capacity_model = setting.capacity_model()
    workload_model = setting.workload_model()
    root = RngStream(setting.seed, label=setting.label())
    for index in range(setting.samples):
        rng = root.spawn(f"N{n_sites}/sample{index}")
        session = build_session(
            topology,
            capacity_model,
            rng.spawn("session"),
            SessionConfig(
                n_sites=n_sites, displays_per_site=setting.displays_per_site
            ),
        )
        workload = workload_model.generate(session, rng.spawn("workload"))
        yield ForestProblem.from_workload(
            session, workload, setting.latency_bound_ms
        )


def audit_hook(setting: ExperimentSetting):
    """A strict :class:`InvariantAuditor` when ``setting.audit``, else None.

    Every figure harness passes each build result through the hook so
    ``--audit`` sweeps abort with :class:`~repro.errors.SimulationError`
    on the first structural violation.
    """
    if not setting.audit:
        return None
    from repro.sim.invariants import InvariantAuditor

    return InvariantAuditor(strict=True)


def mean_metric_per_builder(
    setting: ExperimentSetting,
    n_sites: int,
    builders: dict[str, OverlayBuilder],
    metric: Callable[[BuildResult], float],
    topology: Topology | None = None,
) -> dict[str, float]:
    """Average ``metric`` over all samples, per builder (paired runs).

    With ``setting.audit`` set, every build result is audited by a strict
    :class:`~repro.sim.invariants.InvariantAuditor`; the first structural
    violation aborts the sweep with :class:`~repro.errors.SimulationError`.
    """
    totals = {name: 0.0 for name in builders}
    count = 0
    auditor = audit_hook(setting)
    build_root = RngStream(setting.seed, label=f"{setting.label()}-build")
    for index, problem in enumerate(
        sample_problems(setting, n_sites, topology=topology)
    ):
        count += 1
        for name, builder in builders.items():
            rng = build_root.spawn(f"N{n_sites}/sample{index}/{name}")
            result = builder.build(problem, rng)
            if auditor is not None:
                auditor.audit_build(
                    result, event=f"N{n_sites}/sample{index}/{name}"
                )
            totals[name] += metric(result)
    if count == 0:
        return {name: 0.0 for name in builders}
    return {name: total / count for name, total in totals.items()}


def sweep_mean_metric(
    setting: ExperimentSetting,
    n_sites_values: Sequence[int],
    builders: dict[str, OverlayBuilder],
    metric: Callable[[BuildResult], float],
) -> SeriesResult:
    """Run :func:`mean_metric_per_builder` across an N sweep."""
    topology = load_backbone(setting.backbone)
    result = SeriesResult(xs=list(n_sites_values))
    for n_sites in n_sites_values:
        means = mean_metric_per_builder(
            setting, n_sites, builders, metric, topology=topology
        )
        for name, value in means.items():
            result.add_point(name, value)
    return result
