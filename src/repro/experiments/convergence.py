"""Control-convergence sweep: directive settle time vs control-link delay.

The event-driven control plane (:mod:`repro.pubsub.service`) makes
control latency a first-class quantity: each round's *convergence* is
the time from the dirty message that triggered it to the last
:class:`~repro.pubsub.messages.DirectiveAck`.  This harness replays one
named scenario across a range of one-way control-link delays (fixed
debounce window) and reports, per delay point, the mean/max convergence
latency, how many rounds the debounce coalesced events into, and how
many rounds overlapped a still-converging predecessor — the regime the
paper's synchronous model cannot express.

CLI::

    tele3d convergence --scenario flash-crowd --delays 0,20,50,100
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.experiments.runner import SeriesResult
from repro.scenarios.library import get_scenario
from repro.scenarios.runtime import ScenarioReport, ScenarioRuntime

#: Default one-way control-link delays to sweep (milliseconds).
DEFAULT_DELAYS = (0.0, 20.0, 50.0, 100.0)


def async_report(
    scenario: str,
    sites: int,
    seed: int,
    control_delay_ms: float,
    debounce_ms: float,
    audit: bool = False,
) -> ScenarioReport:
    """Run one named scenario through the event-driven control plane."""
    spec = replace(
        get_scenario(scenario, sites=sites, seed=seed),
        async_control=True,
        control_delay_ms=control_delay_ms,
        debounce_ms=debounce_ms,
    )
    return ScenarioRuntime(spec, audit=audit).run()


def run_convergence(
    scenario: str = "flash-crowd",
    delays: Sequence[float] = DEFAULT_DELAYS,
    sites: int = 8,
    seed: int = 7,
    debounce_ms: float = 10.0,
    audit: bool = False,
) -> SeriesResult:
    """Sweep convergence latency across control-link delays.

    Every delay point replays the *same* compiled scenario (same seed,
    same event schedule), so the comparison is paired: only the control
    links slow down.  Alongside the latency series, ``rounds`` shows the
    debounce coalescing events (fewer rounds than events once the window
    spans several arrivals) and ``overlapping-rounds`` counts rounds
    triggered while their predecessor was still propagating.
    """
    result = SeriesResult(xs=list(delays))
    for delay in delays:
        report = async_report(
            scenario,
            sites=sites,
            seed=seed,
            control_delay_ms=delay,
            debounce_ms=debounce_ms,
            audit=audit,
        )
        result.add_point("mean-convergence-ms", report.mean_convergence_ms)
        result.add_point("max-convergence-ms", report.max_convergence_ms)
        result.add_point("rounds", float(report.rounds))
        result.add_point("overlapping-rounds", float(report.overlapping_rounds))
        result.add_point("stale-directives", float(report.stale_directives))
    return result
