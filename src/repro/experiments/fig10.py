"""Figure 10: out-degree utilization and load balancing of RJ.

With uniform nodes under the random workload, N = 4..20, the paper
reports (1) average out-degree utilization close to 100 %, (2) standard
deviation across nodes below 3 %, and (3) about 25 % of each node's
out-degree devoted to relaying streams that originate at other nodes —
the multicast saving over all-to-all unicast.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.core.metrics import ForestMetrics
from repro.core.randomized import RandomJoinBuilder
from repro.experiments.runner import SeriesResult, audit_hook, sample_problems
from repro.experiments.settings import ExperimentSetting
from repro.topology.backbone import load_backbone
from repro.util.rng import RngStream

#: The paper sweeps 4..20 nodes for this figure.
FIG10_SITES = tuple(range(4, 21, 2))


def run_fig10(
    setting: ExperimentSetting | None = None,
    n_sites_values: Sequence[int] = FIG10_SITES,
) -> SeriesResult:
    """Regenerate Fig. 10: utilization / relay-fraction / stddev vs. N."""
    if setting is None:
        setting = ExperimentSetting(workload="random", nodes="uniform")
    # Fig. 10 calibration (DESIGN.md): a constant expected subscriber
    # count per stream keeps outbound utilization near 1 and leaves the
    # ~25 % relay share at every N; the coverage guarantee is off so
    # unpopular streams release source capacity for relaying.
    if setting.mean_subscribers is None:
        setting = replace(
            setting, mean_subscribers=1.4, guarantee_coverage=False
        )
    topology = load_backbone(setting.backbone)
    builder = RandomJoinBuilder()
    auditor = audit_hook(setting)
    result = SeriesResult(xs=list(n_sites_values))
    build_root = RngStream(setting.seed, label=f"{setting.label()}-fig10")
    for n_sites in n_sites_values:
        total_util = 0.0
        total_std = 0.0
        total_relay = 0.0
        count = 0
        for index, problem in enumerate(
            sample_problems(setting, n_sites, topology=topology)
        ):
            rng = build_root.spawn(f"N{n_sites}/sample{index}")
            build = builder.build(problem, rng)
            if auditor is not None:
                auditor.audit_build(build, event=f"fig10/N{n_sites}/{index}")
            metrics = ForestMetrics.of(build)
            total_util += metrics.mean_out_utilization
            total_std += metrics.std_out_utilization
            total_relay += metrics.mean_relay_fraction
            count += 1
        result.add_point("out-degree-utilization", total_util / count)
        result.add_point("utilization-stddev", total_std / count)
        result.add_point("relay-fraction", total_relay / count)
    return result
