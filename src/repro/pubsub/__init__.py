"""Publish-subscribe control plane (Sec. 3 of the paper).

The 3D cameras are publishers, the 3D displays subscribers, and one
rendezvous point (RP) per site mediates: it forms a star to the local
devices, aggregates the displays' subscriptions, and reports them to a
centralized membership server.  The server solves the overlay
construction problem and dictates to every RP its forwarding table.

* :mod:`repro.pubsub.messages` — the control message vocabulary;
* :mod:`repro.pubsub.faults` — control-link fault injection (loss,
  jitter, duplication, timed partitions);
* :mod:`repro.pubsub.rp` — the per-site RP agent;
* :mod:`repro.pubsub.membership` — the centralized membership server;
* :mod:`repro.pubsub.service` — the event-driven membership service
  (delayed control links, debounced rounds, async directive push);
* :mod:`repro.pubsub.system` — the end-to-end façade used by examples
  and the data-plane simulator.
"""

from repro.pubsub.faults import FaultConfig, FaultyLink, PartitionWindow
from repro.pubsub.messages import (
    Advertise,
    Advertisement,
    ControlAck,
    ControlEnvelope,
    DirectiveAck,
    DisplaySubscription,
    Heartbeat,
    OverlayDirective,
    RejoinRequest,
    SiteSubscription,
    Subscribe,
    Withdraw,
)
from repro.pubsub.rp import RPAgent
from repro.pubsub.membership import MembershipServer
from repro.pubsub.service import ControlRound, MembershipService
from repro.pubsub.system import PubSubSystem

__all__ = [
    "Advertise",
    "Advertisement",
    "ControlAck",
    "ControlEnvelope",
    "ControlRound",
    "DirectiveAck",
    "FaultConfig",
    "FaultyLink",
    "Heartbeat",
    "PartitionWindow",
    "RejoinRequest",
    "DisplaySubscription",
    "OverlayDirective",
    "SiteSubscription",
    "Subscribe",
    "Withdraw",
    "RPAgent",
    "MembershipServer",
    "MembershipService",
    "PubSubSystem",
]
