"""The event-driven membership service (async control plane).

The paper's centralized membership server is modeled synchronously in
:class:`~repro.pubsub.membership.MembershipServer`: advertise,
aggregate, build and install happen in one call, so control traffic has
no latency, rounds can never overlap, and a site cannot join while a
build is in flight.  :class:`MembershipService` lifts that same server
onto the deterministic :class:`~repro.sim.engine.Simulator` as an
*event-driven* service:

* RPs push timestamped control envelopes (:class:`~repro.pubsub.messages.Advertise`,
  :class:`~repro.pubsub.messages.Subscribe`,
  :class:`~repro.pubsub.messages.Withdraw`) over simulated control links
  with per-site propagation delay;
* arriving messages mark the membership state *dirty*; the first dirty
  message opens a **debounce window** (a cancellable
  :class:`~repro.sim.engine.Timer`), and every further message inside
  the window coalesces into the same epoch-numbered build round;
* when the window closes, the service builds the overlay exactly the
  way the synchronous server does (same builder, same rebuild policy,
  same ``round-<epoch>`` RNG labels) and *pushes* the resulting
  :class:`~repro.pubsub.messages.OverlayDirective` to every registered
  RP, again over the delayed links;
* each RP acknowledges installation with a
  :class:`~repro.pubsub.messages.DirectiveAck`; a directive that
  arrives after the RP already installed a newer epoch is **discarded
  as stale** (out-of-order delivery under per-site delay skew);
* per round the service records the **control-convergence latency** —
  the time from the dirty message that triggered the round to the last
  acknowledgment — the paper-level metric an interactive 3DTI session
  actually feels.

Every message crosses a :class:`~repro.pubsub.faults.FaultyLink`, which
is where chaos enters: seeded per-message loss, jitter, duplication and
timed site<->server partitions.  The protocol survives them with three
mechanisms, each inert until its knob is turned:

* **Idempotent sequencing** — each site-side report carries a per-site
  monotonic ``seq``; the server applies latest-wins per (site, kind),
  discards duplicates without re-dirtying the round machinery, and a
  withdrawal establishes a *floor* below which late pre-leave reports
  are dead on arrival (the reorder that would otherwise resurrect a
  departed site).
* **Retransmit with capped exponential backoff**
  (``retransmit_timeout_ms > 0``) — sequenced reports are re-sent until
  a :class:`~repro.pubsub.messages.ControlAck` lands, directive pushes
  until their :class:`~repro.pubsub.messages.DirectiveAck` does; both
  back off exponentially (capped) and give up after
  ``max_retransmits`` attempts so partitions cannot pin a round open
  forever.
* **Heartbeat failure detection** (``heartbeat_ms > 0``) — live sites
  beat on a recurring timer; the server withdraws any registered site
  silent for ``miss_threshold`` beat periods, turning ``FAIL`` from a
  declared event into a *detected* one.  A heartbeat from a site the
  server no longer knows (a zombie: falsely suspected across a
  partition) provokes a :class:`~repro.pubsub.messages.RejoinRequest`,
  and the live site re-admits itself as a fresh join.  With
  ``phi_threshold > 0`` the static deadline is replaced on both ends
  by the φ-accrual detector
  (:class:`~repro.pubsub.detector.PhiAccrualDetector`), which adapts
  its silence budget to each link's observed heartbeat cadence.
* **Server crash / recovery** (``faults.outages`` or an explicit
  ``crash_server()``) — the membership server itself can die: all of
  its soft state (registrations, epochs, dedup floors, pending
  timers) vanishes, and it restarts under a higher *incarnation*
  number, warm from a durable checkpoint
  (``checkpoint_interval_ms > 0``) or cold.  Every server-originated
  envelope carries the incarnation; sites discard messages from dead
  incarnations and answer the first contact from a higher one with a
  full soft-state refresh (advertise + subscribe replay) from which
  the server reconstructs its registrations.  Meanwhile each site
  scores the server's heartbeat-response stream with its own failure
  detector: on suspicion (or ack starvation) it *parks* outbound
  reports — timer-free, so a drain stays clean — and replays them in
  sequence order on the next server contact, so no membership change
  is lost to the outage.

With all knobs at zero the service degenerates to the synchronous
model: every event triggers exactly one round at the event's own
timestamp and directives install instantly, so directives are
bit-identical to :meth:`PubSubSystem.run_control_round` /
:class:`~repro.scenarios.runtime.ScenarioRuntime`'s synchronous path
(the equivalence suite in ``tests/scenarios/test_async_control.py``
pins this per scenario x seed x builder — with and without the fault
layer's reliability machinery armed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.core.base import BuildResult
from repro.errors import ConfigurationError, ProtocolError
from repro.pubsub.detector import PhiAccrualDetector
from repro.pubsub.faults import FaultConfig, FaultyLink
from repro.pubsub.membership import MembershipServer, ServerCheckpoint
from repro.pubsub.messages import (
    Advertise,
    Advertisement,
    ControlAck,
    ControlEnvelope,
    DirectiveAck,
    Heartbeat,
    HeartbeatAck,
    OverlayDirective,
    RejoinRequest,
    SiteSubscription,
    Subscribe,
    Withdraw,
)
from repro.pubsub.rp import RPAgent
from repro.sim.engine import Simulator, Timer
from repro.util.rng import RngStream
from repro.util.validation import (
    check_finite_non_negative,
    check_non_negative,
    check_phi_threshold,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.invariants import InvariantAuditor

#: Exponential backoff base between retransmit attempts: attempt *k*
#: waits ``timeout * RETRANSMIT_BACKOFF**k``, capped below.
RETRANSMIT_BACKOFF = 2.0
#: Backoff ceiling as a multiple of the base timeout.
RETRANSMIT_BACKOFF_CAP = 8.0
#: Attempts after the original send before a message is abandoned —
#: what bounds drain time when a partition outlives every backoff.
DEFAULT_MAX_RETRANSMITS = 6


@dataclass
class _PendingReport:
    """Site-side retransmit state for one sequenced report."""

    site: int
    kind: str
    message: ControlEnvelope
    attempts: int = 0
    timer: Timer | None = None


@dataclass
class _PendingDirective:
    """Server-side retransmit state for one (epoch, site) push."""

    site: int
    round_: "ControlRound"
    attempts: int = 0
    timer: Timer | None = None


@dataclass
class ControlRound:
    """Bookkeeping for one epoch-numbered asynchronous build round."""

    epoch: int
    #: Arrival time of the dirty message that opened the debounce window.
    trigger_ms: float
    #: Server incarnation that built the round (0 on hand-built rounds;
    #: sites discard directives from incarnations below their highest
    #: seen, except 0 which is unversioned).
    incarnation: int = field(default=0, kw_only=True)
    #: Time the overlay was actually built (window close).
    built_ms: float
    #: ``"repair"`` or ``"rebuild"`` (the server's mode for the round).
    mode: str
    #: ``"diffed"`` or ``"scratch"`` — how the round's problem was
    #: assembled (the async plane reuses the shared server's evolved
    #: problem exactly like the synchronous plane does).
    assembly: str
    #: Sites the directive was pushed to (the server's registered set
    #: at build time).
    installed: tuple[int, ...]
    directive: OverlayDirective
    result: BuildResult
    #: Control messages coalesced into this round by the debounce window.
    coalesced: int = 1
    #: Ack arrival time per site (stale discards never ack).
    acked: dict[int, float] = field(default_factory=dict)
    #: Sites that discarded this round's directive as stale.
    stale_sites: tuple[int, ...] = ()
    #: Last-ack-minus-trigger; None while acks are still in flight.
    convergence_ms: float | None = None
    _awaiting_install: set[int] = field(default_factory=set, repr=False)
    _awaiting_ack: set[int] = field(default_factory=set, repr=False)
    _install_finished: bool = field(default=False, repr=False)

    @property
    def converged(self) -> bool:
        """True once every non-stale site has acknowledged."""
        return self.convergence_ms is not None


class MembershipService:
    """Event-driven façade over a :class:`MembershipServer`.

    Parameters
    ----------
    sim:
        The simulation clock everything runs on.
    server:
        The synchronous server doing the actual overlay construction;
        the service owns its registration state transitions.
    rps:
        Site-indexed RP agents the directives install into.
    build_rng:
        Parent stream for per-round build RNGs; round *e* draws from
        ``build_rng.spawn(f"round-{e}")`` — the same labels the
        synchronous scenario path uses, which is what makes the
        zero-delay case bit-identical.
    control_delay_ms / debounce_ms:
        One-way link delay and dirty-state coalescing window; ``None``
        resolves against the session's defaults.
    site_delays:
        Optional per-site delay overrides (read at send time, so tests
        can skew links mid-run to force out-of-order delivery).
    auditor:
        Optional invariant auditor; each epoch is audited when its last
        directive delivery lands, against the sites actually holding
        that epoch.
    faults:
        Control-link fault model; ``None`` builds one from the
        session's ``control_loss_rate``/``control_jitter_ms`` defaults
        (a perfect link unless configured otherwise).
    chaos_rng:
        Stream feeding the link's loss/jitter/duplication draws;
        ``None`` derives ``build_rng.spawn("chaos-link")`` (spawning is
        stateless, so the derivation cannot perturb the build streams).
    heartbeat_ms / miss_threshold:
        Heartbeat period and missed-beat budget of the failure
        detector; ``None`` resolves against the session.  0 disables
        detection entirely.
    retransmit_timeout_ms:
        Ack timeout arming the retransmit machinery for reports and
        directive pushes; ``None`` resolves against the session, 0
        keeps the legacy fire-and-forget transport (no acks at all).
    max_retransmits:
        Attempts after the original send before giving up.
    phi_threshold:
        φ-accrual suspicion threshold (see
        :class:`~repro.pubsub.detector.PhiAccrualDetector`); ``None``
        resolves against the session, 0 keeps the static
        ``miss_threshold x heartbeat_ms`` deadline.  Requires
        heartbeats to have a cadence to score.
    checkpoint_interval_ms:
        Period of the server's durable soft-state checkpoint; ``None``
        resolves against the session, 0 disables checkpointing (a
        crashed server restarts cold and rebuilds purely from the
        sites' refresh).
    server_failover:
        Arms the client-side half of server crash tolerance: heartbeat
        responses, server suspicion, report parking/replay.  ``None``
        arms it exactly when the fault model schedules outages, which
        keeps the machinery bit-invisible in crash-free runs.
    """

    def __init__(
        self,
        sim: Simulator,
        server: MembershipServer,
        rps: Mapping[int, RPAgent],
        build_rng: RngStream,
        control_delay_ms: float | None = None,
        debounce_ms: float | None = None,
        site_delays: Mapping[int, float] | None = None,
        auditor: "InvariantAuditor | None" = None,
        faults: FaultConfig | None = None,
        chaos_rng: RngStream | None = None,
        heartbeat_ms: float | None = None,
        miss_threshold: int | None = None,
        retransmit_timeout_ms: float | None = None,
        max_retransmits: int = DEFAULT_MAX_RETRANSMITS,
        phi_threshold: float | None = None,
        checkpoint_interval_ms: float | None = None,
        server_failover: bool | None = None,
    ) -> None:
        session = server.session
        if control_delay_ms is None:
            control_delay_ms = session.control_delay_ms
        if debounce_ms is None:
            debounce_ms = session.debounce_ms
        if heartbeat_ms is None:
            heartbeat_ms = session.heartbeat_ms
        if miss_threshold is None:
            miss_threshold = session.miss_threshold
        if retransmit_timeout_ms is None:
            retransmit_timeout_ms = session.retransmit_timeout_ms
        if phi_threshold is None:
            phi_threshold = session.phi_threshold
        if checkpoint_interval_ms is None:
            checkpoint_interval_ms = session.checkpoint_interval_ms
        if faults is None:
            faults = FaultConfig(
                loss_rate=session.control_loss_rate,
                jitter_ms=session.control_jitter_ms,
            )
        if server_failover is None:
            server_failover = bool(faults.outages)
        check_non_negative("control_delay_ms", control_delay_ms)
        check_non_negative("debounce_ms", debounce_ms)
        check_non_negative("heartbeat_ms", heartbeat_ms)
        check_non_negative("retransmit_timeout_ms", retransmit_timeout_ms)
        check_phi_threshold(phi_threshold)
        check_finite_non_negative("checkpoint_interval_ms", checkpoint_interval_ms)
        if miss_threshold < 1:
            raise ConfigurationError(
                f"miss_threshold must be >= 1, got {miss_threshold}"
            )
        if max_retransmits < 0:
            raise ConfigurationError(
                f"max_retransmits must be >= 0, got {max_retransmits}"
            )
        if phi_threshold > 0 and heartbeat_ms <= 0:
            raise ConfigurationError(
                "phi_threshold requires heartbeats: the detector scores "
                "a heartbeat cadence, so heartbeat_ms must be > 0"
            )
        self.sim = sim
        self.server = server
        self.rps = rps
        self.build_rng = build_rng
        self.control_delay_ms = control_delay_ms
        self.debounce_ms = debounce_ms
        self.site_delays = site_delays
        self.auditor = auditor
        self.faults = faults
        self.heartbeat_ms = heartbeat_ms
        self.miss_threshold = miss_threshold
        self.retransmit_timeout_ms = retransmit_timeout_ms
        self.max_retransmits = max_retransmits
        self.phi_threshold = phi_threshold
        self.checkpoint_interval_ms = checkpoint_interval_ms
        self.server_failover = server_failover
        #: The transport every control message crosses.
        self.link = FaultyLink(
            sim,
            chaos_rng if chaos_rng is not None else build_rng.spawn("chaos-link"),
            faults,
        )
        #: Completed build rounds, in epoch order.
        self.rounds: list[ControlRound] = []
        #: Directives discarded because the RP was already ahead.
        self.stale_directives = 0
        #: Hook invoked right after each round is built (before any
        #: directive delivery): ``on_round(round)``.
        self.on_round: Callable[[ControlRound], None] | None = None
        #: Hook invoked when an epoch finishes installing (last
        #: delivery landed): ``on_installed(round)``.
        self.on_installed: Callable[[ControlRound], None] | None = None
        self._pending: Timer | None = None
        self._trigger_ms: float | None = None
        self._coalesced = 0
        # -- sequencing / idempotence --------------------------------------
        self._next_seq: dict[int, int] = {}
        self._applied_seq: dict[tuple[int, str], int] = {}
        self._withdraw_floor: dict[int, int] = {}
        #: Sites withdrawn (by message or by the failure detector) since
        #: their last applied registration: a second withdrawal for one
        #: of these is redundant and must not roll another epoch.
        self._withdrawn: set[int] = set()
        self.duplicates_discarded = 0
        self.stale_reports_discarded = 0
        self.duplicate_withdraws = 0
        self.duplicate_directives = 0
        self.duplicate_acks = 0
        # -- retransmission ------------------------------------------------
        self._unacked: dict[tuple[int, int], _PendingReport] = {}
        self._pending_directives: dict[tuple[int, int], _PendingDirective] = {}
        self.retransmits = 0
        self.retransmit_giveups = 0
        # -- heartbeats / failure detection --------------------------------
        self._live: set[int] = set()
        self._heartbeat_timers: dict[int, Timer] = {}
        self._last_seen: dict[int, float] = {}
        self._fail_times: dict[int, float] = {}
        self._quiesced = False
        self.heartbeats_sent = 0
        self.heartbeats_received = 0
        self.detected_failures = 0
        self.false_suspicions = 0
        self.rejoin_requests = 0
        self.readmissions = 0
        #: Silence-to-withdrawal latency per detected real failure.
        self.detection_latencies: list[float] = []
        self._detector: Timer | None = None
        if self.heartbeat_ms > 0:
            self._detector = sim.schedule_timer(
                self.heartbeat_ms, self._detect, interval_ms=self.heartbeat_ms
            )
        # -- φ-accrual detectors (None keeps the static deadline) -----------
        self._site_detector: PhiAccrualDetector | None = None
        self._server_detector: PhiAccrualDetector | None = None
        if self.phi_threshold > 0:
            self._site_detector = PhiAccrualDetector(
                threshold=self.phi_threshold,
                initial_interval_ms=self.heartbeat_ms,
            )
            if self.server_failover:
                self._server_detector = PhiAccrualDetector(
                    threshold=self.phi_threshold,
                    initial_interval_ms=self.heartbeat_ms,
                )
        # -- server crash / recovery ----------------------------------------
        #: The server's current incarnation; bumped on every recovery.
        self.incarnation = 1
        self._server_down = False
        #: Highest server incarnation each site has seen (sites are born
        #: knowing incarnation 1, the pre-crash server).
        self._known_incarnation: dict[int, int] = {}
        #: Reports parked while their site suspects the server is down
        #: (no timers: parked entries replay on recovery, so they never
        #: show up as armed retransmit state).
        self._parked: dict[tuple[int, int], _PendingReport] = {}
        #: Sites currently suspecting the server.
        self._suspecting: set[int] = set()
        #: (incarnation, epoch) of the directive each site last installed
        #: *via this service* — the ballot order for supersession.  A
        #: restarted server may re-number epochs its predecessor used,
        #: so sites order directives by incarnation first.  Site-side
        #: state: survives server crashes.
        self._installed_rounds: dict[int, tuple[int, int]] = {}
        #: Per-site "lingering departure" probes: a site that withdrew
        #: while the server was unreachable stays up just long enough to
        #: deliver its parked farewell (no heartbeats anymore, so the
        #: probe is its only remaining path to learning the server came
        #: back).
        self._linger_timers: dict[int, Timer] = {}
        #: Last server contact per site (acks, directives, rejoins).
        self._server_last_seen: dict[int, float] = {}
        self._checkpoint: ServerCheckpoint | None = None
        self._checkpoint_timer: Timer | None = None
        self._client_sweep: Timer | None = None
        self._recovery_started: float | None = None
        self.server_crashes = 0
        self.server_recoveries = 0
        self.stale_incarnation_discards = 0
        self.refresh_replays = 0
        self.server_suspicions = 0
        self.reports_parked = 0
        self.reports_replayed = 0
        self.linger_probes = 0
        self.messages_lost_to_outage = 0
        self.checkpoints_taken = 0
        self.checkpoint_restores = 0
        #: Recovery-to-reconverged latency per server recovery (the time
        #: from restart until every live site is registered again).
        self.recovery_latencies: list[float] = []
        if self.checkpoint_interval_ms > 0:
            self._checkpoint_timer = sim.schedule_timer(
                self.checkpoint_interval_ms,
                self._take_checkpoint,
                interval_ms=self.checkpoint_interval_ms,
            )
        if self.server_failover and self.heartbeat_ms > 0:
            self._client_sweep = sim.schedule_timer(
                self.heartbeat_ms,
                self._client_detect,
                interval_ms=self.heartbeat_ms,
            )
        for window in faults.outages:
            sim.schedule_at(window.start_ms, self.crash_server)
            sim.schedule_at(window.end_ms, self.recover_server)

    @property
    def reliable(self) -> bool:
        """True when the ack/retransmit machinery is armed."""
        return self.retransmit_timeout_ms > 0

    # -- site-side transport entry points -----------------------------------------

    def advertise(self, advertisement: Advertisement) -> Advertise:
        """Send an advertisement over the site's control link."""
        site = advertisement.site
        message = Advertise(
            sent_ms=self.sim.now,
            epoch=self._site_epoch(site),
            advertisement=advertisement,
            seq=self._take_seq(site),
        )
        self._site_alive(site)
        self._send(message, site)
        return message

    def subscribe(self, subscription: SiteSubscription) -> Subscribe:
        """Send an aggregated subscription over the site's control link."""
        site = subscription.site
        message = Subscribe(
            sent_ms=self.sim.now,
            epoch=self._site_epoch(site),
            subscription=subscription,
            seq=self._take_seq(site),
        )
        self._site_alive(site)
        self._send(message, site)
        return message

    def withdraw(self, site: int) -> Withdraw:
        """Send a withdrawal (graceful leave or declared failure).

        The site's earlier in-flight reports are cancelled first: once
        it is leaving, retransmitting a stale advertise/subscribe is
        pure ghost traffic (the server's withdraw floor would discard a
        late copy anyway).  Only the withdrawal itself stays tracked
        for reliable delivery.
        """
        self._cancel_site_reports(site)
        message = Withdraw(
            sent_ms=self.sim.now,
            epoch=self._site_epoch(site),
            site=site,
            seq=self._take_seq(site),
        )
        self._site_down(site)
        self._send(message, site)
        return message

    def fail_site(self, site: int) -> Withdraw | None:
        """An abrupt site death.

        With heartbeat detection on, *nothing* is sent — the site just
        falls silent (its heartbeats stop, its pending retransmits die
        with it) and the server must detect the failure.  Without
        heartbeats this degrades to a declared withdrawal, the legacy
        model.
        """
        if self.heartbeat_ms <= 0:
            return self.withdraw(site)
        self._site_down(site)
        self._fail_times[site] = self.sim.now
        self._cancel_site_reports(site)
        return None

    def _cancel_site_reports(self, site: int) -> None:
        """Drop every pending retransmit of ``site``'s tracked reports.

        Pops the ``_unacked`` entries *and* cancels their timers as one
        unit, so a departed (withdrawn or failed) site can never fire a
        ghost retransmit after its entry is gone.
        """
        for key in [k for k in self._unacked if k[0] == site]:
            entry = self._unacked.pop(key)
            if entry.timer is not None:
                entry.timer.cancel()
        for key in [k for k in self._parked if k[0] == site]:
            del self._parked[key]
        timer = self._linger_timers.pop(site, None)
        if timer is not None:
            timer.cancel()

    def mark_dirty(self) -> None:
        """Force a build round even without control traffic.

        The bootstrap path of an empty session uses this so the
        degenerate zero-site round still happens (the synchronous
        runtime always runs its bootstrap round).
        """
        self._mark_dirty()

    def quiesce(self) -> None:
        """Stop periodic work (heartbeats + detector) so a drain terminates.

        In-flight traffic and bounded retransmits still land; only the
        self-rearming timers are silenced.  Used by the scenario runtime
        at the horizon before its final drain.
        """
        self._quiesced = True
        for timer in self._heartbeat_timers.values():
            timer.cancel()
        self._heartbeat_timers.clear()
        if self._detector is not None:
            self._detector.cancel()
            self._detector = None
        if self._client_sweep is not None:
            self._client_sweep.cancel()
            self._client_sweep = None
        if self._checkpoint_timer is not None:
            self._checkpoint_timer.cancel()
            self._checkpoint_timer = None
        for timer in self._linger_timers.values():
            timer.cancel()
        self._linger_timers.clear()

    # -- message propagation -------------------------------------------------------

    def delay_for(self, site: int) -> float:
        """One-way control-link delay for ``site`` (read at send time)."""
        if self.site_delays is not None and site in self.site_delays:
            return self.site_delays[site]
        return self.control_delay_ms

    def _site_epoch(self, site: int) -> int:
        rp = self.rps.get(site)
        return rp.epoch if rp is not None else -1

    def _take_seq(self, site: int) -> int:
        """Next per-site sequence number (monotonic across rejoins)."""
        seq = self._next_seq.get(site, 0) + 1
        self._next_seq[site] = seq
        return seq

    def _send(self, message: ControlEnvelope, site: int | None = None) -> None:
        if site is None:
            site = message.site  # type: ignore[attr-defined]
        kind = _kind_of(message)
        if self.server_failover and site in self._suspecting:
            # The site believes the server is down: transmitting would
            # only burn retransmit attempts into a dead socket.  Park
            # the report; it replays in seq order on the next server
            # contact (same or higher incarnation).
            self._parked[(site, message.seq)] = _PendingReport(
                site=site, kind=kind, message=message
            )
            self.reports_parked += 1
            self._ensure_linger(site)
            return
        self.link.transmit(
            site,
            self.delay_for(site),
            lambda: self._receive(message),
            kind=kind,
            message=message,
        )
        if self.reliable and kind != "heartbeat":
            self._track_report(site, message, kind)

    def _track_report(
        self, site: int, message: ControlEnvelope, kind: str
    ) -> None:
        entry = _PendingReport(site=site, kind=kind, message=message)
        self._unacked[(site, message.seq)] = entry
        entry.timer = self.sim.schedule_timer(
            self.retransmit_timeout_ms,
            lambda: self._retransmit_report(site, message.seq),
        )

    def _retransmit_report(self, site: int, seq: int) -> None:
        entry = self._unacked.get((site, seq))
        if entry is None:
            return
        if entry.attempts >= self.max_retransmits:
            del self._unacked[(site, seq)]
            if self.server_failover:
                # Ack starvation with failover armed is a server-death
                # signal, not a reason to lose the report: park it (and
                # everything else this site has in flight) for replay.
                entry.timer = None
                entry.attempts = 0
                self._parked[(site, seq)] = entry
                self.reports_parked += 1
                self._suspect_server(site)
                self._ensure_linger(site)
                return
            self.retransmit_giveups += 1
            return
        entry.attempts += 1
        self.retransmits += 1
        message = entry.message
        self.link.transmit(
            site,
            self.delay_for(site),
            lambda: self._receive(message),
            kind=entry.kind,
            message=message,
            attempt=entry.attempts,
        )
        entry.timer = self.sim.schedule_timer(
            self._backoff(entry.attempts),
            lambda: self._retransmit_report(site, seq),
        )

    def _backoff(self, attempts: int) -> float:
        """Capped exponential wait before retransmit attempt ``attempts+1``."""
        return min(
            self.retransmit_timeout_ms * (RETRANSMIT_BACKOFF**attempts),
            self.retransmit_timeout_ms * RETRANSMIT_BACKOFF_CAP,
        )

    # -- server-side arrival --------------------------------------------------------

    def _receive(self, message: ControlEnvelope) -> None:
        """Server-side arrival of one control envelope."""
        if self._server_down:
            # Dead process: the message crossed the link into nothing.
            self.messages_lost_to_outage += 1
            return
        if isinstance(message, Heartbeat):
            self._receive_heartbeat(message)
            return
        site: int = message.site  # type: ignore[attr-defined]
        kind = _kind_of(message)
        self._last_seen[site] = self.sim.now
        if self._site_detector is not None:
            self._site_detector.touch(site, self.sim.now)
        # A restarted (cold) server must never hand out epochs below
        # what sites already installed — fast-forward to any higher
        # epoch a report carries.  Provably inert crash-free: a site's
        # installed epoch can never exceed the server's.
        self.server.ensure_epoch_floor(message.epoch)
        verdict = self._classify(site, kind, message.seq)
        if verdict != "apply":
            if verdict == "duplicate":
                self.duplicates_discarded += 1
            else:
                self.stale_reports_discarded += 1
            # Idempotent discard: no re-dirtying — but in reliable mode
            # re-ack so the sender's retransmit loop stops.
            if self.reliable:
                self._ack_report(site, kind, message.seq)
            return
        if isinstance(message, Advertise):
            self.server.register_advertisement(message.advertisement)
            self._withdrawn.discard(site)
        elif isinstance(message, Subscribe):
            self.server.register_subscription(message.subscription)
            self._withdrawn.discard(site)
        elif isinstance(message, Withdraw):
            newest = max(
                self._applied_seq.get((site, "advertise"), 0),
                self._applied_seq.get((site, "subscribe"), 0),
            )
            if 0 < message.seq < newest:
                # The site re-announced after issuing this leave (seqs
                # share one per-site counter, so the order is total): a
                # slow withdrawal straggling in behind the rejoin must
                # not kill the site's new life.
                self.stale_reports_discarded += 1
                if self.reliable:
                    self._ack_report(site, kind, message.seq)
                return
            if message.seq > 0:
                # Any slower pre-leave report must not resurrect the site.
                self._withdraw_floor[site] = max(
                    self._withdraw_floor.get(site, 0), message.seq
                )
            if site in self._withdrawn:
                # The failure detector (or an earlier withdrawal) beat
                # this message to it: applying it again would roll a
                # second epoch for one departure.
                self.duplicate_withdraws += 1
                if self.reliable:
                    self._ack_report(site, kind, message.seq)
                return
            self.server.withdraw_site(site)
            self._withdrawn.add(site)
            if self._site_detector is not None:
                self._site_detector.forget(site)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected control message {message!r}")
        if self.reliable:
            self._ack_report(site, kind, message.seq)
        if self._recovery_started is not None:
            self._check_recovered()
        # Any applied arrival dirties the round — even a payload the
        # dirty-tracked registration skipped.  The synchronous model
        # rebuilds on every report, and randomized builders make
        # "rebuild with unchanged workload" an observable event, so
        # triggering must not depend on whether the payload changed.
        self._mark_dirty()

    def _classify(self, site: int, kind: str, seq: int) -> str:
        """``apply`` | ``duplicate`` | ``stale`` for one sequenced report."""
        if seq <= 0:
            return "apply"  # unsequenced envelope (hand-built or legacy)
        if seq <= self._applied_seq.get((site, kind), 0):
            return "duplicate"
        if kind != "withdraw" and seq < self._withdraw_floor.get(site, 0):
            # Reordered pre-withdraw state arriving after the leave.
            return "stale"
        self._applied_seq[(site, kind)] = seq
        return "apply"

    def _ack_report(self, site: int, kind: str, seq: int) -> None:
        if seq <= 0:
            return
        ack = ControlAck(
            sent_ms=self.sim.now,
            epoch=-1,
            site=site,
            acked_seq=seq,
            kind=kind,
            incarnation=self.incarnation,
        )
        self.link.transmit(
            site,
            self.delay_for(site),
            lambda: self._receive_control_ack(ack),
            kind="control-ack",
            message=ack,
        )

    def _receive_control_ack(self, ack: ControlAck) -> None:
        """Site-side arrival of a report ack: stop that retransmit loop."""
        if self._note_server_contact(ack.site, ack.incarnation) == "stale":
            return
        entry = self._unacked.pop((ack.site, ack.acked_seq), None)
        if entry is None:
            self.duplicate_acks += 1
            return
        if entry.timer is not None:
            entry.timer.cancel()

    # -- heartbeats / failure detection ----------------------------------------------

    def _site_alive(self, site: int) -> None:
        self._live.add(site)
        self._fail_times.pop(site, None)
        self._start_heartbeat(site)

    def _site_down(self, site: int) -> None:
        self._live.discard(site)
        timer = self._heartbeat_timers.pop(site, None)
        if timer is not None:
            timer.cancel()

    def _start_heartbeat(self, site: int) -> None:
        if (
            self.heartbeat_ms <= 0
            or self._quiesced
            or site in self._heartbeat_timers
        ):
            return
        self._heartbeat_timers[site] = self.sim.schedule_timer(
            self.heartbeat_ms,
            lambda: self._beat(site),
            interval_ms=self.heartbeat_ms,
        )

    def _beat(self, site: int) -> None:
        if site not in self._live or self._quiesced:
            return
        self.heartbeats_sent += 1
        message = Heartbeat(
            sent_ms=self.sim.now, epoch=self._site_epoch(site), site=site
        )
        self.link.transmit(
            site,
            self.delay_for(site),
            lambda: self._receive(message),
            kind="heartbeat",
            message=message,
        )

    def _receive_heartbeat(self, message: Heartbeat) -> None:
        site = message.site
        self.heartbeats_received += 1
        self._last_seen[site] = self.sim.now
        self.server.ensure_epoch_floor(message.epoch)
        if self._site_detector is not None:
            self._site_detector.observe(site, self.sim.now)
        if self.server_failover:
            # Answer every beat: the stream of these acks is what the
            # site's server-suspicion detector scores, and the
            # incarnation stamp is how a site first learns the server
            # came back.  Fire-and-forget — the next beat provokes the
            # next ack.
            ack = HeartbeatAck(
                sent_ms=self.sim.now,
                epoch=-1,
                site=site,
                incarnation=self.incarnation,
            )
            self.link.transmit(
                site,
                self.delay_for(site),
                lambda: self._receive_heartbeat_ack(ack),
                kind="heartbeat-ack",
                message=ack,
            )
        if not self.server.is_registered(site):
            # A zombie: alive enough to beat, but the server forgot it
            # (suspected across a partition, or every report was lost).
            # Ask it to rejoin; the request rides the same lossy link,
            # and the next beat re-provokes it if this copy drops.
            self.rejoin_requests += 1
            request = RejoinRequest(
                sent_ms=self.sim.now,
                epoch=-1,
                site=site,
                incarnation=self.incarnation,
            )
            self.link.transmit(
                site,
                self.delay_for(site),
                lambda: self._receive_rejoin(request),
                kind="rejoin",
                message=request,
            )

    def _receive_heartbeat_ack(self, ack: HeartbeatAck) -> None:
        """Site-side arrival of a heartbeat response (failover mode)."""
        self._note_server_contact(ack.site, ack.incarnation, beat=True)

    def _receive_rejoin(self, request: RejoinRequest) -> None:
        """Site-side arrival of a rejoin request: re-announce if alive."""
        site = request.site
        verdict = self._note_server_contact(site, request.incarnation)
        if verdict == "stale":
            return
        if site not in self._live:
            return  # left or died in the meantime: nothing to re-admit
        if verdict == "refreshed":
            return  # the incarnation bump already replayed a full refresh
        self.readmissions += 1
        rp = self.rps[site]
        self.advertise(rp.advertisement())
        self.subscribe(rp.aggregate_subscription())

    def _detect(self) -> None:
        """Recurring server-side sweep: suspect silent registered sites."""
        now = self.sim.now
        if self._site_detector is not None:
            for site in self.server.registered_sites():
                if self._site_detector.suspect(site, now):
                    self._suspect(site)
            return
        deadline = self.miss_threshold * self.heartbeat_ms
        for site in self.server.registered_sites():
            if now - self._last_seen.get(site, now) > deadline:
                self._suspect(site)

    def _suspect(self, site: int) -> None:
        """Withdraw a silent site server-side (detected failure)."""
        self.detected_failures += 1
        if site in self._live:
            self.false_suspicions += 1
        else:
            fail_ms = self._fail_times.pop(site, None)
            if fail_ms is not None:
                self.detection_latencies.append(self.sim.now - fail_ms)
        self._withdrawn.add(site)
        if self._site_detector is not None:
            self._site_detector.forget(site)
        self.server.withdraw_site(site)
        self._mark_dirty()

    # -- server crash / recovery -----------------------------------------------------

    def crash_server(self) -> None:
        """Kill the membership server: every piece of soft state dies.

        Registrations, epoch counters, dedup/withdraw floors, detector
        history, the open debounce window and every pending directive
        retransmit all lived in the server process — they vanish.
        Observability counters (and any durable checkpoint) survive,
        because they model the experimenter's view, not the server's.
        Idempotent; scheduled by :class:`~repro.pubsub.faults.ServerOutageWindow`
        starts or called directly by tests/runtimes.
        """
        if self._server_down:
            return
        self._server_down = True
        self.server_crashes += 1
        # Pending timers die with the process.
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
            self._trigger_ms = None
            self._coalesced = 0
        if self._detector is not None:
            self._detector.cancel()
            self._detector = None
        if self._checkpoint_timer is not None:
            self._checkpoint_timer.cancel()
            self._checkpoint_timer = None
        for entry in self._pending_directives.values():
            if entry.timer is not None:
                entry.timer.cancel()
            # The dead incarnation stops waiting on this site — same
            # settling as a retransmit give-up, so the round can still
            # converge and audit against the sites that did install.
            round_ = entry.round_
            round_._awaiting_ack.discard(entry.site)
            self._check_converged(round_)
            if entry.site in round_._awaiting_install:
                round_._awaiting_install.discard(entry.site)
                if not round_._awaiting_install:
                    self._finish_install(round_)
        self._pending_directives.clear()
        # Server-side per-site soft state.
        self._applied_seq.clear()
        self._withdraw_floor.clear()
        self._withdrawn.clear()
        self._last_seen.clear()
        self._fail_times.clear()
        if self._site_detector is not None:
            self._site_detector.reset()
        self._recovery_started = None
        self.server.crash()

    def recover_server(self) -> None:
        """Restart the server under the next incarnation.

        Warm when a checkpoint is held (registrations up to the last
        snapshot come back; only post-checkpoint deltas must be
        re-collected), cold otherwise (everything rebuilds from the
        sites' soft-state refresh).  Idempotent; scheduled by outage
        window ends.
        """
        if not self._server_down:
            return
        self._server_down = False
        self.incarnation += 1
        self.server_recoveries += 1
        if self._checkpoint is not None:
            self.server.restore(self._checkpoint)
            self.checkpoint_restores += 1
        self._recovery_started = self.sim.now
        self._check_recovered()
        if not self._quiesced:
            if self.heartbeat_ms > 0 and self._detector is None:
                self._detector = self.sim.schedule_timer(
                    self.heartbeat_ms,
                    self._detect,
                    interval_ms=self.heartbeat_ms,
                )
            if self.checkpoint_interval_ms > 0 and self._checkpoint_timer is None:
                self._checkpoint_timer = self.sim.schedule_timer(
                    self.checkpoint_interval_ms,
                    self._take_checkpoint,
                    interval_ms=self.checkpoint_interval_ms,
                )

    def _take_checkpoint(self) -> None:
        """Recurring durable snapshot of the server's registrations."""
        if self._server_down:
            return
        self._checkpoint = self.server.checkpoint()
        self.checkpoints_taken += 1

    def _check_recovered(self) -> None:
        """Close the open recovery-latency measurement once reconverged."""
        if self._recovery_started is None:
            return
        registered = set(self.server.registered_sites())
        if self._live <= registered:
            self.recovery_latencies.append(self.sim.now - self._recovery_started)
            self._recovery_started = None

    # -- client-side server suspicion ------------------------------------------------

    def _note_server_contact(
        self, site: int, incarnation: int, beat: bool = False
    ) -> str:
        """Site-side bookkeeping for one server-originated arrival.

        Returns ``"stale"`` (the caller must discard the message: it
        was sent by a dead incarnation), ``"refreshed"`` (first contact
        from a higher incarnation — parked reports were replayed and a
        full soft-state refresh was sent), or ``"ok"``.  ``incarnation
        == 0`` marks an unversioned envelope and is never stale.
        """
        known = self._known_incarnation.get(site, 1)
        if 0 < incarnation < known:
            self.stale_incarnation_discards += 1
            return "stale"
        if self.server_failover:
            now = self.sim.now
            self._server_last_seen[site] = now
            if self._server_detector is not None:
                if beat:
                    self._server_detector.observe(site, now)
                else:
                    self._server_detector.touch(site, now)
        if incarnation > known:
            self._known_incarnation[site] = incarnation
            self._refresh_site(site)
            return "refreshed"
        if site in self._suspecting:
            # Same incarnation answering again: the server never died
            # (ack starvation came from the link) — replay what we
            # parked, it dedups server-side if already applied.
            self._unsuspect(site)
        return "ok"

    def _refresh_site(self, site: int) -> None:
        """Full soft-state refresh after first contact with a new incarnation.

        Replays the site's parked reports first (their seqs predate any
        fresh ones, so arrival order matches seq order), then re-sends
        the authoritative advertise/subscribe pair the restarted server
        rebuilds its registrations from.
        """
        self._unsuspect(site)
        if site not in self._live:
            return
        self.refresh_replays += 1
        rp = self.rps[site]
        self.advertise(rp.advertisement())
        self.subscribe(rp.aggregate_subscription())

    def _client_detect(self) -> None:
        """Recurring site-side sweep: suspect a silent server (failover mode)."""
        now = self.sim.now
        deadline = self.miss_threshold * self.heartbeat_ms
        for site in sorted(self._live):
            if site in self._suspecting:
                continue
            last = self._server_last_seen.get(site)
            if last is None:
                continue  # never heard from the server: nothing to score
            if self._server_detector is not None:
                if not self._server_detector.suspect(site, now):
                    continue
            elif now - last <= deadline:
                continue
            self._suspect_server(site)

    def _suspect_server(self, site: int) -> None:
        """One site starts believing the server is down: park its traffic."""
        if site in self._suspecting:
            return
        self._suspecting.add(site)
        self.server_suspicions += 1
        for key in sorted(k for k in self._unacked if k[0] == site):
            entry = self._unacked.pop(key)
            if entry.timer is not None:
                entry.timer.cancel()
            entry.timer = None
            entry.attempts = 0
            self._parked[key] = entry
            self.reports_parked += 1
        self._ensure_linger(site)

    def _ensure_linger(self, site: int) -> None:
        """Keep a departed site alive until its parked farewell lands.

        A live site re-learns the server via heartbeat acks; a site that
        withdrew while suspecting has no heartbeats left, so without
        this probe its parked Withdraw would wait forever and the
        membership change would be lost.  The probe re-offers the
        oldest parked report at retransmit cadence; the ack it provokes
        carries the server's incarnation and triggers the normal full
        replay.  Quiescing cancels the probe — a site still parked at
        the horizon is exactly what ``unrecovered_reports`` counts.
        """
        if (
            not self.server_failover
            or self.retransmit_timeout_ms <= 0
            or self._quiesced
            or site in self._live
            or site in self._linger_timers
            or not any(k[0] == site for k in self._parked)
        ):
            return
        self._linger_timers[site] = self.sim.schedule_timer(
            self.retransmit_timeout_ms, lambda: self._linger_probe(site)
        )

    def _linger_probe(self, site: int) -> None:
        self._linger_timers.pop(site, None)
        keys = sorted(k for k in self._parked if k[0] == site)
        if not keys or site in self._live or self._quiesced:
            return
        entry = self._parked[keys[0]]
        message = entry.message
        self.linger_probes += 1
        self.link.transmit(
            site,
            self.delay_for(site),
            lambda: self._receive(message),
            kind=entry.kind,
            message=message,
        )
        self._linger_timers[site] = self.sim.schedule_timer(
            self.retransmit_timeout_ms * RETRANSMIT_BACKOFF_CAP,
            lambda: self._linger_probe(site),
        )

    def _unsuspect(self, site: int) -> None:
        """Server contact re-established: replay the site's parked reports."""
        self._suspecting.discard(site)
        timer = self._linger_timers.pop(site, None)
        if timer is not None:
            timer.cancel()
        if self._server_detector is not None:
            # The silence is explained (crash, not drift): start the
            # site's estimate of the new server's cadence fresh.
            self._server_detector.forget(site)
            self._server_last_seen.pop(site, None)
        for key in sorted(k for k in self._parked if k[0] == site):
            entry = self._parked.pop(key)
            self.reports_replayed += 1
            message = entry.message
            self.link.transmit(
                site,
                self.delay_for(site),
                lambda message=message: self._receive(message),
                kind=entry.kind,
                message=message,
            )
            if self.reliable and entry.kind != "heartbeat":
                self._unacked[key] = entry
                seq = message.seq
                entry.timer = self.sim.schedule_timer(
                    self.retransmit_timeout_ms,
                    lambda site=site, seq=seq: self._retransmit_report(site, seq),
                )

    # -- debounced build rounds ------------------------------------------------------

    def _mark_dirty(self) -> None:
        self._coalesced += 1
        if self._pending is None:
            self._trigger_ms = self.sim.now
            self._pending = self.sim.schedule_timer(
                self.debounce_ms, self._build_round
            )

    def _build_round(self) -> None:
        """Close the debounce window: build, then push the directive."""
        assert self._trigger_ms is not None
        trigger_ms = self._trigger_ms
        coalesced = self._coalesced
        self._pending = None
        self._trigger_ms = None
        self._coalesced = 0
        rng = self.build_rng.spawn(f"round-{self.server.epoch}")
        directive = self.server.build_overlay(rng)
        result = self.server.last_result
        assert result is not None
        installed = tuple(self.server.registered_sites())
        round_ = ControlRound(
            epoch=directive.epoch,
            trigger_ms=trigger_ms,
            incarnation=self.incarnation,
            built_ms=self.sim.now,
            mode=self.server.last_mode or "rebuild",
            assembly=self.server.last_assembly or "scratch",
            installed=installed,
            directive=directive,
            result=result,
            coalesced=coalesced,
        )
        round_._awaiting_install = set(installed)
        round_._awaiting_ack = set(installed)
        self.rounds.append(round_)
        if self.on_round is not None:
            self.on_round(round_)
        if not installed:
            # Nothing to install: the round converges at build time.
            round_.convergence_ms = self.sim.now - trigger_ms
            self._finish_install(round_)
            return
        for site in installed:
            self._push_directive(site, round_)

    # -- directive installation ------------------------------------------------------

    def _push_directive(self, site: int, round_: ControlRound) -> None:
        self.link.transmit(
            site,
            self.delay_for(site),
            lambda: self._deliver(site, round_),
            kind="directive",
            message=round_.directive,
        )
        if self.reliable:
            entry = _PendingDirective(site=site, round_=round_)
            self._pending_directives[(round_.epoch, site)] = entry
            entry.timer = self.sim.schedule_timer(
                self.retransmit_timeout_ms,
                lambda: self._retransmit_directive(site, round_.epoch),
            )

    def _retransmit_directive(self, site: int, epoch: int) -> None:
        entry = self._pending_directives.get((epoch, site))
        if entry is None:
            return
        round_ = entry.round_
        if entry.attempts >= self.max_retransmits:
            del self._pending_directives[(epoch, site)]
            self.retransmit_giveups += 1
            # Unreachable for this epoch (partitioned or dead): stop
            # waiting so the round can settle.  A later epoch, or the
            # site's re-admission, brings it back up to date.
            round_._awaiting_ack.discard(site)
            self._check_converged(round_)
            if site in round_._awaiting_install:
                round_._awaiting_install.discard(site)
                if not round_._awaiting_install:
                    self._finish_install(round_)
            return
        entry.attempts += 1
        self.retransmits += 1
        self.link.transmit(
            site,
            self.delay_for(site),
            lambda: self._deliver(site, round_),
            kind="directive",
            message=round_.directive,
            attempt=entry.attempts,
        )
        entry.timer = self.sim.schedule_timer(
            self._backoff(entry.attempts),
            lambda: self._retransmit_directive(site, epoch),
        )

    def _cancel_pending_directive(self, site: int, epoch: int) -> None:
        entry = self._pending_directives.pop((epoch, site), None)
        if entry is not None and entry.timer is not None:
            entry.timer.cancel()

    def _installed_key(self, site: int, incarnation: int) -> tuple[int, int]:
        """The ballot the site's installed table holds, for ordering
        against a directive from ``incarnation``.

        A site never installed through this service has no recorded
        ballot; its bare epoch is compared same-incarnation (the legacy
        numeric order), so crash-free behaviour is untouched.
        """
        recorded = self._installed_rounds.get(site)
        if recorded is None:
            return (incarnation, self.rps[site].epoch)
        return recorded

    def _deliver(self, site: int, round_: ControlRound) -> None:
        """One directive lands at one RP (apply, ack — or discard)."""
        if self._note_server_contact(site, round_.incarnation) == "stale":
            # A dead incarnation's directive still in flight: its round
            # was abandoned at the crash, nobody is waiting on this.
            return
        rp = self.rps[site]
        directive = round_.directive
        ballot = (round_.incarnation, directive.epoch)
        installed = self._installed_key(site, round_.incarnation)
        if site not in round_._awaiting_install:
            # A duplicate copy (link duplication, or a retransmit racing
            # its own ack).  The first arrival did the work; if the
            # server is still retransmitting because the ack was lost,
            # re-ack so it stops.
            self.duplicate_directives += 1
            if (
                self.reliable
                and site not in round_.stale_sites
                and installed >= ballot
            ):
                self._send_directive_ack(site, round_)
            return
        if installed >= ballot:
            # Out-of-order delivery: the RP already installed a newer
            # ballot, so this directive is stale and must not roll the
            # site back.  The round stops waiting on this site.
            self.stale_directives += 1
            round_.stale_sites = round_.stale_sites + (site,)
            round_._awaiting_ack.discard(site)
            self._cancel_pending_directive(site, round_.epoch)
            self._check_converged(round_)
        else:
            # Supersession: a higher incarnation replaces whatever the
            # dead one installed, even if it re-used the epoch number —
            # and never as a delta, whose base chain died with it.
            rp.apply_directive(
                directive, supersede=installed[0] != round_.incarnation
            )
            self._installed_rounds[site] = ballot
            self._send_directive_ack(site, round_)
        round_._awaiting_install.discard(site)
        if not round_._awaiting_install:
            self._finish_install(round_)

    def _send_directive_ack(self, site: int, round_: ControlRound) -> None:
        ack = DirectiveAck(
            sent_ms=self.sim.now, epoch=round_.directive.epoch, site=site
        )
        self.link.transmit(
            site,
            self.delay_for(site),
            lambda: self._receive_ack(ack, round_),
            kind="directive-ack",
            message=ack,
        )

    def _receive_ack(self, ack: DirectiveAck, round_: ControlRound) -> None:
        if self._server_down:
            self.messages_lost_to_outage += 1
            return
        if ack.epoch != round_.epoch:
            raise ProtocolError(
                f"ack for epoch {ack.epoch} routed to round {round_.epoch}"
            )
        self._cancel_pending_directive(ack.site, round_.epoch)
        if ack.site not in round_._awaiting_ack:
            self.duplicate_acks += 1
            return
        round_.acked[ack.site] = self.sim.now
        round_._awaiting_ack.discard(ack.site)
        self._check_converged(round_)

    def _check_converged(self, round_: ControlRound) -> None:
        if round_.convergence_ms is None and not round_._awaiting_ack:
            round_.convergence_ms = self.sim.now - round_.trigger_ms

    def _finish_install(self, round_: ControlRound) -> None:
        """All deliveries for the epoch landed: audit the installed state."""
        if round_._install_finished:
            return
        round_._install_finished = True
        if self.auditor is not None:
            # Audit the epoch against the sites actually holding *this*
            # round's table — matched by ballot, not epoch number: a
            # fast site may already be ahead (audited at its own
            # epoch's completion instead), and after a server restart a
            # partitioned site may hold the dead incarnation's table
            # under the same number.
            ballot = (round_.incarnation, round_.epoch)
            holding = {
                site: self.rps[site]
                for site in round_.installed
                if self._installed_key(site, round_.incarnation) == ballot
            }
            self.auditor.audit_round(
                round_.result,
                round_.directive,
                holding,
                holding.keys(),
                event=f"epoch-{round_.epoch}",
                time_ms=self.sim.now,
            )
        if self.on_installed is not None:
            self.on_installed(round_)

    # -- inspection ---------------------------------------------------------------

    @property
    def pending_build(self) -> bool:
        """True while a debounce window is open."""
        return self._pending is not None

    @property
    def live_sites(self) -> set[int]:
        """Sites the service-side transport currently considers alive."""
        return set(self._live)

    @property
    def armed_retransmit_state(self) -> int:
        """Sequenced messages still tracked for retransmission.

        Counts unacked reports plus unsettled directive pushes.  After
        a full drain this must be zero — every entry ends acked,
        cancelled, or given up; the scenario runtime asserts it.
        """
        return len(self._unacked) + len(self._pending_directives)

    @property
    def server_down(self) -> bool:
        """True while the membership server is crashed."""
        return self._server_down

    @property
    def parked_reports(self) -> int:
        """Reports buffered by sites suspecting the server that the
        server has not yet applied.

        Parked entries own no timers (they replay on server contact),
        so they are deliberately *not* armed retransmit state; any left
        after a drain are the unrecovered reports the scenario report
        gates on.  An entry only counts while delivering it would still
        change membership: an ack-starved report whose *acks* (not the
        report) died on the link is already applied server-side and
        moot, as is anything behind the site's withdraw floor or a
        farewell the site's own rejoin has since outrun — the same
        staleness rules ``_receive`` applies on delivery.
        """
        count = 0
        for (site, seq), entry in self._parked.items():
            if seq <= self._applied_seq.get((site, entry.kind), 0):
                continue  # already applied: only the acks were lost
            if entry.kind != "withdraw" and seq < self._withdraw_floor.get(
                site, 0
            ):
                continue  # behind the site's own departure
            if entry.kind == "withdraw" and 0 < seq < max(
                self._applied_seq.get((site, "advertise"), 0),
                self._applied_seq.get((site, "subscribe"), 0),
            ):
                continue  # pre-rejoin straggler: delivery would discard it
            count += 1
        return count

    @property
    def suspecting_sites(self) -> set[int]:
        """Sites currently believing the server is down."""
        return set(self._suspecting)

    def mean_recovery_ms(self) -> float:
        """Mean restart-to-reconverged latency over server recoveries."""
        if not self.recovery_latencies:
            return 0.0
        return sum(self.recovery_latencies) / len(self.recovery_latencies)

    def max_recovery_ms(self) -> float:
        """Worst-case restart-to-reconverged latency over server recoveries."""
        if not self.recovery_latencies:
            return 0.0
        return max(self.recovery_latencies)

    def converged_rounds(self) -> list[ControlRound]:
        """Rounds whose last ack has arrived."""
        return [round_ for round_ in self.rounds if round_.converged]

    def mean_convergence_ms(self) -> float:
        """Mean control-convergence latency over converged rounds."""
        converged = self.converged_rounds()
        if not converged:
            return 0.0
        return sum(r.convergence_ms for r in converged) / len(converged)

    def max_convergence_ms(self) -> float:
        """Worst-case control-convergence latency over converged rounds."""
        converged = self.converged_rounds()
        if not converged:
            return 0.0
        return max(r.convergence_ms for r in converged)

    def mean_detection_ms(self) -> float:
        """Mean silence-to-withdrawal latency over detected real failures."""
        if not self.detection_latencies:
            return 0.0
        return sum(self.detection_latencies) / len(self.detection_latencies)

    def max_detection_ms(self) -> float:
        """Worst-case detection latency over detected real failures."""
        if not self.detection_latencies:
            return 0.0
        return max(self.detection_latencies)

    def overlapping_rounds(self) -> int:
        """Rounds triggered while the previous round was still converging.

        This is the regime the synchronous model cannot express: a new
        dirty window opened (e.g. a site joined) before the previous
        epoch settled (last ack or stale discard) — a
        *mid-build/mid-install* overlap.
        """
        overlaps = 0
        for previous, current in zip(self.rounds, self.rounds[1:]):
            if previous.convergence_ms is None:
                overlaps += 1  # predecessor never settled at all
            elif current.trigger_ms < previous.trigger_ms + previous.convergence_ms:
                overlaps += 1
        return overlaps


def _kind_of(message: ControlEnvelope) -> str:
    """Wire-kind label of a site-to-server envelope (dedup/fault routing)."""
    if isinstance(message, Advertise):
        return "advertise"
    if isinstance(message, Subscribe):
        return "subscribe"
    if isinstance(message, Withdraw):
        return "withdraw"
    if isinstance(message, Heartbeat):
        return "heartbeat"
    return type(message).__name__.lower()
