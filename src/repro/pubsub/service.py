"""The event-driven membership service (async control plane).

The paper's centralized membership server is modeled synchronously in
:class:`~repro.pubsub.membership.MembershipServer`: advertise,
aggregate, build and install happen in one call, so control traffic has
no latency, rounds can never overlap, and a site cannot join while a
build is in flight.  :class:`MembershipService` lifts that same server
onto the deterministic :class:`~repro.sim.engine.Simulator` as an
*event-driven* service:

* RPs push timestamped control envelopes (:class:`~repro.pubsub.messages.Advertise`,
  :class:`~repro.pubsub.messages.Subscribe`,
  :class:`~repro.pubsub.messages.Withdraw`) over simulated control links
  with per-site propagation delay;
* arriving messages mark the membership state *dirty*; the first dirty
  message opens a **debounce window** (a cancellable
  :class:`~repro.sim.engine.Timer`), and every further message inside
  the window coalesces into the same epoch-numbered build round;
* when the window closes, the service builds the overlay exactly the
  way the synchronous server does (same builder, same rebuild policy,
  same ``round-<epoch>`` RNG labels) and *pushes* the resulting
  :class:`~repro.pubsub.messages.OverlayDirective` to every registered
  RP, again over the delayed links;
* each RP acknowledges installation with a
  :class:`~repro.pubsub.messages.DirectiveAck`; a directive that
  arrives after the RP already installed a newer epoch is **discarded
  as stale** (out-of-order delivery under per-site delay skew);
* per round the service records the **control-convergence latency** —
  the time from the dirty message that triggered the round to the last
  acknowledgment — the paper-level metric an interactive 3DTI session
  actually feels.

With ``control_delay_ms = debounce_ms = 0`` the service degenerates to
the synchronous model: every event triggers exactly one round at the
event's own timestamp and directives install instantly, so directives
are bit-identical to :meth:`PubSubSystem.run_control_round` /
:class:`~repro.scenarios.runtime.ScenarioRuntime`'s synchronous path
(the equivalence suite in ``tests/scenarios/test_async_control.py``
pins this per scenario x seed x builder).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.core.base import BuildResult
from repro.errors import ProtocolError
from repro.pubsub.membership import MembershipServer
from repro.pubsub.messages import (
    Advertise,
    Advertisement,
    ControlEnvelope,
    DirectiveAck,
    OverlayDirective,
    SiteSubscription,
    Subscribe,
    Withdraw,
)
from repro.pubsub.rp import RPAgent
from repro.sim.engine import Simulator, Timer
from repro.util.rng import RngStream
from repro.util.validation import check_non_negative

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.invariants import InvariantAuditor


@dataclass
class ControlRound:
    """Bookkeeping for one epoch-numbered asynchronous build round."""

    epoch: int
    #: Arrival time of the dirty message that opened the debounce window.
    trigger_ms: float
    #: Time the overlay was actually built (window close).
    built_ms: float
    #: ``"repair"`` or ``"rebuild"`` (the server's mode for the round).
    mode: str
    #: ``"diffed"`` or ``"scratch"`` — how the round's problem was
    #: assembled (the async plane reuses the shared server's evolved
    #: problem exactly like the synchronous plane does).
    assembly: str
    #: Sites the directive was pushed to (the server's registered set
    #: at build time).
    installed: tuple[int, ...]
    directive: OverlayDirective
    result: BuildResult
    #: Control messages coalesced into this round by the debounce window.
    coalesced: int = 1
    #: Ack arrival time per site (stale discards never ack).
    acked: dict[int, float] = field(default_factory=dict)
    #: Sites that discarded this round's directive as stale.
    stale_sites: tuple[int, ...] = ()
    #: Last-ack-minus-trigger; None while acks are still in flight.
    convergence_ms: float | None = None
    _awaiting_install: set[int] = field(default_factory=set, repr=False)
    _awaiting_ack: set[int] = field(default_factory=set, repr=False)

    @property
    def converged(self) -> bool:
        """True once every non-stale site has acknowledged."""
        return self.convergence_ms is not None


class MembershipService:
    """Event-driven façade over a :class:`MembershipServer`.

    Parameters
    ----------
    sim:
        The simulation clock everything runs on.
    server:
        The synchronous server doing the actual overlay construction;
        the service owns its registration state transitions.
    rps:
        Site-indexed RP agents the directives install into.
    build_rng:
        Parent stream for per-round build RNGs; round *e* draws from
        ``build_rng.spawn(f"round-{e}")`` — the same labels the
        synchronous scenario path uses, which is what makes the
        zero-delay case bit-identical.
    control_delay_ms / debounce_ms:
        One-way link delay and dirty-state coalescing window; ``None``
        resolves against the session's defaults.
    site_delays:
        Optional per-site delay overrides (read at send time, so tests
        can skew links mid-run to force out-of-order delivery).
    auditor:
        Optional invariant auditor; each epoch is audited when its last
        directive delivery lands, against the sites actually holding
        that epoch.
    """

    def __init__(
        self,
        sim: Simulator,
        server: MembershipServer,
        rps: Mapping[int, RPAgent],
        build_rng: RngStream,
        control_delay_ms: float | None = None,
        debounce_ms: float | None = None,
        site_delays: Mapping[int, float] | None = None,
        auditor: "InvariantAuditor | None" = None,
    ) -> None:
        session = server.session
        if control_delay_ms is None:
            control_delay_ms = session.control_delay_ms
        if debounce_ms is None:
            debounce_ms = session.debounce_ms
        check_non_negative("control_delay_ms", control_delay_ms)
        check_non_negative("debounce_ms", debounce_ms)
        self.sim = sim
        self.server = server
        self.rps = rps
        self.build_rng = build_rng
        self.control_delay_ms = control_delay_ms
        self.debounce_ms = debounce_ms
        self.site_delays = site_delays
        self.auditor = auditor
        #: Completed build rounds, in epoch order.
        self.rounds: list[ControlRound] = []
        #: Directives discarded because the RP was already ahead.
        self.stale_directives = 0
        #: Hook invoked right after each round is built (before any
        #: directive delivery): ``on_round(round)``.
        self.on_round: Callable[[ControlRound], None] | None = None
        #: Hook invoked when an epoch finishes installing (last
        #: delivery landed): ``on_installed(round)``.
        self.on_installed: Callable[[ControlRound], None] | None = None
        self._pending: Timer | None = None
        self._trigger_ms: float | None = None
        self._coalesced = 0

    # -- site-side transport entry points -----------------------------------------

    def advertise(self, advertisement: Advertisement) -> Advertise:
        """Send an advertisement over the site's control link."""
        message = Advertise(
            sent_ms=self.sim.now,
            epoch=self._site_epoch(advertisement.site),
            advertisement=advertisement,
        )
        self._send(message)
        return message

    def subscribe(self, subscription: SiteSubscription) -> Subscribe:
        """Send an aggregated subscription over the site's control link."""
        message = Subscribe(
            sent_ms=self.sim.now,
            epoch=self._site_epoch(subscription.site),
            subscription=subscription,
        )
        self._send(message)
        return message

    def withdraw(self, site: int) -> Withdraw:
        """Send a withdrawal (leave or declared failure) for ``site``."""
        message = Withdraw(
            sent_ms=self.sim.now, epoch=self._site_epoch(site), site=site
        )
        self._send(message)
        return message

    def mark_dirty(self) -> None:
        """Force a build round even without control traffic.

        The bootstrap path of an empty session uses this so the
        degenerate zero-site round still happens (the synchronous
        runtime always runs its bootstrap round).
        """
        self._mark_dirty()

    # -- message propagation -------------------------------------------------------

    def delay_for(self, site: int) -> float:
        """One-way control-link delay for ``site`` (read at send time)."""
        if self.site_delays is not None and site in self.site_delays:
            return self.site_delays[site]
        return self.control_delay_ms

    def _site_epoch(self, site: int) -> int:
        rp = self.rps.get(site)
        return rp.epoch if rp is not None else -1

    def _send(self, message: ControlEnvelope) -> None:
        site = message.site  # type: ignore[attr-defined]
        self.sim.schedule_in(
            self.delay_for(site), lambda: self._receive(message)
        )

    def _receive(self, message: ControlEnvelope) -> None:
        """Server-side arrival of one control envelope."""
        if isinstance(message, Advertise):
            self.server.register_advertisement(message.advertisement)
        elif isinstance(message, Subscribe):
            self.server.register_subscription(message.subscription)
        elif isinstance(message, Withdraw):
            self.server.withdraw_site(message.site)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected control message {message!r}")
        # Any arrival dirties the round — even a payload the dirty-tracked
        # registration skipped.  The synchronous model rebuilds on every
        # report, and randomized builders make "rebuild with unchanged
        # workload" an observable event, so triggering must not depend on
        # whether the payload changed.
        self._mark_dirty()

    # -- debounced build rounds ------------------------------------------------------

    def _mark_dirty(self) -> None:
        self._coalesced += 1
        if self._pending is None:
            self._trigger_ms = self.sim.now
            self._pending = self.sim.schedule_timer(
                self.debounce_ms, self._build_round
            )

    def _build_round(self) -> None:
        """Close the debounce window: build, then push the directive."""
        assert self._trigger_ms is not None
        trigger_ms = self._trigger_ms
        coalesced = self._coalesced
        self._pending = None
        self._trigger_ms = None
        self._coalesced = 0
        rng = self.build_rng.spawn(f"round-{self.server.epoch}")
        directive = self.server.build_overlay(rng)
        result = self.server.last_result
        assert result is not None
        installed = tuple(self.server.registered_sites())
        round_ = ControlRound(
            epoch=directive.epoch,
            trigger_ms=trigger_ms,
            built_ms=self.sim.now,
            mode=self.server.last_mode or "rebuild",
            assembly=self.server.last_assembly or "scratch",
            installed=installed,
            directive=directive,
            result=result,
            coalesced=coalesced,
        )
        round_._awaiting_install = set(installed)
        round_._awaiting_ack = set(installed)
        self.rounds.append(round_)
        if self.on_round is not None:
            self.on_round(round_)
        if not installed:
            # Nothing to install: the round converges at build time.
            round_.convergence_ms = self.sim.now - trigger_ms
            self._finish_install(round_)
            return
        for site in installed:
            self.sim.schedule_in(
                self.delay_for(site),
                lambda site=site: self._deliver(site, round_),
            )

    # -- directive installation ------------------------------------------------------

    def _deliver(self, site: int, round_: ControlRound) -> None:
        """One directive lands at one RP (apply, ack — or discard)."""
        rp = self.rps[site]
        directive = round_.directive
        if rp.epoch >= directive.epoch:
            # Out-of-order delivery: the RP already installed a newer
            # epoch, so this directive is stale and must not roll the
            # site back.  The round stops waiting on this site.
            self.stale_directives += 1
            round_.stale_sites = round_.stale_sites + (site,)
            round_._awaiting_ack.discard(site)
            self._check_converged(round_)
        else:
            rp.apply_directive(directive)
            ack = DirectiveAck(
                sent_ms=self.sim.now, epoch=directive.epoch, site=site
            )
            self.sim.schedule_in(
                self.delay_for(site), lambda: self._receive_ack(ack, round_)
            )
        round_._awaiting_install.discard(site)
        if not round_._awaiting_install:
            self._finish_install(round_)

    def _receive_ack(self, ack: DirectiveAck, round_: ControlRound) -> None:
        if ack.epoch != round_.epoch:
            raise ProtocolError(
                f"ack for epoch {ack.epoch} routed to round {round_.epoch}"
            )
        round_.acked[ack.site] = self.sim.now
        round_._awaiting_ack.discard(ack.site)
        self._check_converged(round_)

    def _check_converged(self, round_: ControlRound) -> None:
        if round_.convergence_ms is None and not round_._awaiting_ack:
            round_.convergence_ms = self.sim.now - round_.trigger_ms

    def _finish_install(self, round_: ControlRound) -> None:
        """All deliveries for the epoch landed: audit the installed state."""
        if self.auditor is not None:
            # Audit the epoch against the sites actually holding it;
            # under delay skew a fast site may already be ahead (it will
            # be audited at its own epoch's completion instead).
            holding = {
                site: self.rps[site]
                for site in round_.installed
                if self.rps[site].epoch == round_.epoch
            }
            self.auditor.audit_round(
                round_.result,
                round_.directive,
                holding,
                holding.keys(),
                event=f"epoch-{round_.epoch}",
                time_ms=self.sim.now,
            )
        if self.on_installed is not None:
            self.on_installed(round_)

    # -- inspection ---------------------------------------------------------------

    @property
    def pending_build(self) -> bool:
        """True while a debounce window is open."""
        return self._pending is not None

    def converged_rounds(self) -> list[ControlRound]:
        """Rounds whose last ack has arrived."""
        return [round_ for round_ in self.rounds if round_.converged]

    def mean_convergence_ms(self) -> float:
        """Mean control-convergence latency over converged rounds."""
        converged = self.converged_rounds()
        if not converged:
            return 0.0
        return sum(r.convergence_ms for r in converged) / len(converged)

    def max_convergence_ms(self) -> float:
        """Worst-case control-convergence latency over converged rounds."""
        converged = self.converged_rounds()
        if not converged:
            return 0.0
        return max(r.convergence_ms for r in converged)

    def overlapping_rounds(self) -> int:
        """Rounds triggered while the previous round was still converging.

        This is the regime the synchronous model cannot express: a new
        dirty window opened (e.g. a site joined) before the previous
        epoch settled (last ack or stale discard) — a
        *mid-build/mid-install* overlap.
        """
        overlaps = 0
        for previous, current in zip(self.rounds, self.rounds[1:]):
            if previous.convergence_ms is None:
                overlaps += 1  # predecessor never settled at all
            elif current.trigger_ms < previous.trigger_ms + previous.convergence_ms:
                overlaps += 1
        return overlaps
