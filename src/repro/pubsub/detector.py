"""φ-accrual failure detection (Hayashibara et al., SRDS 2004).

The static detector the chaos control plane shipped with (PR 7) declares
a site dead after ``miss_threshold x heartbeat_ms`` of silence — one
deadline for every link, so a quiet LAN pays WAN-sized detection latency
and a lossy WAN link still gets falsely suspected whenever a few beats
vanish in a row.  The φ-accrual detector replaces the boolean deadline
with a *suspicion level*: each monitored peer gets a sliding window of
observed heartbeat inter-arrival times, the current silence is scored
against that empirical distribution, and

``phi(t) = -log10( P(no arrival by t | the peer is alive) )``

crosses any fixed threshold *later* on links whose history is noisy
(loss inflates the observed inter-arrivals, widening the distribution)
and *sooner* on quiet ones (tight history, so even 1.5 missed beats is
wildly improbable).  The tail probability uses the standard logistic
approximation of the normal CDF (the same one production φ detectors
use), with the standard deviation floored so a perfectly regular link
cannot divide by zero.

The detector is pure bookkeeping: it makes no RNG draws, owns no
timers, and never touches the simulator — callers feed it arrivals via
:meth:`observe` and poll :meth:`suspect` from their own sweep.  Both
ends of the control plane share this one class: the membership server
scores every registered site's heartbeat stream, and (when server
failover is armed) each site scores the server's response stream to
decide when to start buffering reports.
"""

from __future__ import annotations

import math
from collections import deque

from repro.errors import ConfigurationError
from repro.util.validation import check_positive

#: Sliding-window length of remembered inter-arrival samples per peer.
DEFAULT_WINDOW = 32
#: Lowest admissible tail probability — phi saturates at 300 rather
#: than overflowing ``log10`` for astronomically long silences.
_MIN_P_LATER = 1e-300


class PhiAccrualDetector:
    """Per-peer adaptive failure detector.

    Parameters
    ----------
    threshold:
        Suspicion level above which :meth:`suspect` fires.  8 (the
        conventional default) means "the chance this peer is alive and
        merely slow is below 1e-8 given its own history".
    initial_interval_ms:
        Prior inter-arrival estimate seeding each peer's window on its
        first observation (use the configured heartbeat period) — a peer
        is scoreable from its very first beat instead of needing a
        warm-up.
    window:
        Inter-arrival samples remembered per peer.
    min_std_ms:
        Floor on the estimated standard deviation; defaults to a tenth
        of ``initial_interval_ms``.  Without it a jitter-free link has
        zero variance and a single late beat would read as infinitely
        suspicious.
    acceptable_pause_ms:
        Grace subtracted from the observed silence before scoring;
        defaults to one ``initial_interval_ms``.  A freshly seeded
        window knows only the nominal cadence, so without this margin
        the very first lost beat on an otherwise healthy link scores
        as many standard deviations of lateness — the margin rides out
        a single missed beat while the window is still learning the
        link's real spread, at the cost of one extra beat of detection
        latency everywhere.
    """

    def __init__(
        self,
        threshold: float,
        initial_interval_ms: float,
        window: int = DEFAULT_WINDOW,
        min_std_ms: float | None = None,
        acceptable_pause_ms: float | None = None,
    ) -> None:
        check_positive("phi threshold", threshold)
        check_positive("initial_interval_ms", initial_interval_ms)
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        if min_std_ms is None:
            min_std_ms = initial_interval_ms / 10.0
        check_positive("min_std_ms", min_std_ms)
        if acceptable_pause_ms is None:
            acceptable_pause_ms = initial_interval_ms
        if not acceptable_pause_ms >= 0:  # NaN-safe
            raise ConfigurationError(
                f"acceptable_pause_ms must be >= 0, got {acceptable_pause_ms}"
            )
        self.threshold = threshold
        self.initial_interval_ms = initial_interval_ms
        self.window = window
        self.min_std_ms = min_std_ms
        self.acceptable_pause_ms = acceptable_pause_ms
        self._samples: dict[int, deque[float]] = {}
        self._last_arrival: dict[int, float] = {}
        self._last_beat: dict[int, float] = {}

    # -- observation ---------------------------------------------------------------

    def observe(self, peer: int, now: float) -> None:
        """Record one *cadenced* arrival (a heartbeat) from ``peer``.

        Inter-arrival samples are taken between successive ``observe``
        calls only, so the window models the heartbeat cadence; use
        :meth:`touch` for arrivals that prove liveness without being
        part of the cadence (reports, acks) — those would otherwise
        pollute the distribution with near-zero intervals.
        """
        if peer not in self._last_arrival:
            # First contact: seed the window with the configured prior
            # so phi is defined immediately.
            self._samples[peer] = deque(
                [self.initial_interval_ms], maxlen=self.window
            )
        else:
            last_beat = self._last_beat.get(peer)
            if last_beat is not None:
                interval = now - last_beat
                if interval > 0:
                    self._samples[peer].append(interval)
        self._last_beat[peer] = now
        self._last_arrival[peer] = now

    def touch(self, peer: int, now: float) -> None:
        """Record a non-cadenced proof of life from ``peer``.

        Resets the silence clock (:meth:`phi` measures elapsed time from
        the last arrival of *any* kind) without contributing an
        inter-arrival sample.
        """
        if peer not in self._last_arrival:
            self._samples[peer] = deque(
                [self.initial_interval_ms], maxlen=self.window
            )
        self._last_arrival[peer] = now

    def forget(self, peer: int) -> None:
        """Drop ``peer``'s history (withdrawn, failed, or re-admitted)."""
        self._samples.pop(peer, None)
        self._last_arrival.pop(peer, None)
        self._last_beat.pop(peer, None)

    def reset(self) -> None:
        """Drop every peer's history (server crash: soft state is gone)."""
        self._samples.clear()
        self._last_arrival.clear()
        self._last_beat.clear()

    def known(self, peer: int) -> bool:
        """True once ``peer`` has been observed at least once."""
        return peer in self._last_arrival

    # -- scoring -------------------------------------------------------------------

    def phi(self, peer: int, now: float) -> float:
        """Current suspicion level of ``peer`` (0 when never observed)."""
        last = self._last_arrival.get(peer)
        if last is None:
            return 0.0
        elapsed = now - last
        if elapsed <= 0:
            return 0.0
        samples = self._samples[peer]
        mean = sum(samples) / len(samples)
        variance = sum((s - mean) ** 2 for s in samples) / len(samples)
        std = max(math.sqrt(variance), self.min_std_ms)
        y = (elapsed - mean - self.acceptable_pause_ms) / std
        if y <= 0:
            return 0.0
        # Logistic approximation of the standard normal tail:
        # P(X > y) ~= e / (1 + e) with e = exp(-y (1.5976 + 0.070566 y^2)).
        exponent = -y * (1.5976 + 0.070566 * y * y)
        if exponent < -690.0:  # exp underflow: tail is numerically zero
            return 300.0
        e = math.exp(exponent)
        p_later = e / (1.0 + e)
        return -math.log10(max(p_later, _MIN_P_LATER))

    def suspect(self, peer: int, now: float) -> bool:
        """True when ``peer``'s silence has become implausible."""
        return self.phi(peer, now) > self.threshold
