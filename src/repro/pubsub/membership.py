"""The centralized membership server (Sec. 3.2).

3DTI sessions are small-to-medium sized, so the paper takes the
centralized approach for simplicity: every RP reports its aggregated
subscription, the server assembles the global subscription workload,
solves the overlay construction problem with a pluggable builder, and
dictates the resulting forest to all RPs as an :class:`OverlayDirective`.

The server's ``rebuild_policy`` decides how each round's overlay is
obtained (see :mod:`repro.core.incremental`): ``"always"`` re-solves
from scratch (the paper's model); ``"incremental"`` repairs the previous
round's forest and only re-solves when the repair is infeasible;
``"hybrid"`` repairs but adopts the repair only while it stays within
``drift_budget`` of the from-scratch solution.  Per-round disruption
(:func:`~repro.core.incremental.churn_rate` against the previous round)
and repair-vs-rebuild counts are tracked for reporting.

Orthogonally, ``problem_assembly`` decides how each round's
:class:`~repro.core.problem.ForestProblem` is *assembled* before any
overlay work happens: ``"scratch"`` re-derives the dense O(N²)
cost/limit tables from the session every round, while ``"diffed"``
evolves the previous round's problem
(:meth:`~repro.core.problem.ForestProblem.evolve`), carrying the dense
matrix across rounds and patching only the groups the workload diff
touched.  ``"auto"`` (the default) uses diffed assembly whenever the
rebuild policy is not ``"always"`` — so incremental rounds stop paying
the per-round O(N²) the paper's always-rebuild model pays.  Diffed and
scratch assembly are equivalent (bit-identical build results); per-mode
counts are tracked for reporting.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import ProtocolError, SubscriptionError
from repro.core.base import BuildResult, OverlayBuilder
from repro.core.correlation import CorrelatedRandomJoinBuilder
from repro.core.incremental import (
    DEFAULT_DRIFT_BUDGET,
    IncrementalRepairer,
    churn_rate,
    overlay_cost,
    validate_rebuild_policy,
)
from repro.core.model import MulticastGroup
from repro.core.problem import ForestProblem, ProblemDelta
from repro.pubsub.messages import Advertisement, OverlayDirective, SiteSubscription
from repro.session.session import TISession
from repro.session.streams import StreamId
from repro.util.rng import RngStream
from repro.util.validation import (
    check_assembly_policy,
    check_delta_source,
    check_drift_mode,
    check_non_negative,
)
from repro.workload.spec import SubscriptionWorkload


@dataclass(frozen=True)
class ServerCheckpoint:
    """A durable snapshot of the membership server's soft state.

    Everything a warm restart needs: the registrations (from which all
    derived indices are rebuilt), the epoch counter (so post-restart
    directives outrank what sites already installed), and the last
    forest's edge summary.  Snapshots are plain immutable data — what a
    deployment would serialize to disk — taken periodically by the
    event-driven service when ``checkpoint_interval_ms`` is armed.
    """

    epoch: int
    advertised: tuple[tuple[int, tuple[StreamId, ...]], ...]
    subscriptions: tuple[tuple[int, tuple[StreamId, ...]], ...]
    #: Edge summary of the last emitted forest (None before any round).
    edges: tuple | None

    @property
    def registered(self) -> int:
        """Sites the checkpoint knows (either registration kind)."""
        return len(
            {site for site, _ in self.advertised}
            | {site for site, _ in self.subscriptions}
        )


@dataclass
class MembershipServer:
    """Collects subscriptions, solves the overlay, emits directives."""

    session: TISession
    builder: OverlayBuilder
    latency_bound_ms: float = 120.0
    #: Overlay maintenance policy; ``None`` adopts the session's default.
    rebuild_policy: str | None = None
    #: Per-round problem assembly ("auto" | "diffed" | "scratch");
    #: ``None`` adopts the session's default.
    problem_assembly: str | None = None
    #: Hybrid-mode quality budget: the repaired forest may cost at most
    #: ``(1 + drift_budget)`` times the scratch solution of the round.
    drift_budget: float = DEFAULT_DRIFT_BUDGET
    #: Where diffed assembly gets its per-round group delta ("dirty" |
    #: "scan"); ``None`` adopts the session's default.  ``dirty``
    #: derives it from the dirty-tracked registration indices in
    #: O(churn); ``scan`` re-walks the global workload (the equivalence
    #: baseline).
    delta_source: str | None = None
    #: How hybrid measures drift ("estimate" | "measure"); ``None``
    #: adopts the session's default.  ``measure`` solves from scratch
    #: every round (the original guard); ``estimate`` stays scratch-free
    #: until the accumulated repair-delta estimate crosses the budget or
    #: the repair carries rejections, then verifies with a real scratch
    #: solve.
    drift_mode: str | None = None
    _advertised: dict[int, tuple[StreamId, ...]] = field(default_factory=dict)
    _subscriptions: dict[int, tuple[StreamId, ...]] = field(default_factory=dict)
    #: Advertiser count per stream — a stream is *available* (its groups
    #: may exist) while the count is positive.
    _available: dict[StreamId, int] = field(default_factory=dict)
    #: Inverted subscription index: stream -> subscribing sites.
    _subscribers_by_stream: dict[StreamId, set[int]] = field(default_factory=dict)
    #: Streams whose effective group may differ from the last assembled
    #: problem's — the only streams dirty-delta derivation looks at.
    _dirty_streams: set[StreamId] = field(default_factory=set)
    #: Stream -> group of the last assembled problem (the diff base).
    _group_index: dict[StreamId, MulticastGroup] = field(default_factory=dict)
    _epoch: int = 0
    _last_problem: ForestProblem | None = None
    _last_result: BuildResult | None = None
    _last_edges: tuple | None = None
    _repairs: int = 0
    _rebuilds: int = 0
    _assemblies_diffed: int = 0
    _assemblies_scratch: int = 0
    _last_assembly: str | None = None
    _last_disruption: float | None = None
    _last_mode: str | None = None
    _registrations_applied: int = 0
    _registrations_skipped: int = 0
    _verifications: int = 0

    def __post_init__(self) -> None:
        if self.rebuild_policy is None:
            self.rebuild_policy = self.session.rebuild_policy
        validate_rebuild_policy(self.rebuild_policy)
        if self.problem_assembly is None:
            self.problem_assembly = self.session.problem_assembly
        check_assembly_policy(self.problem_assembly)
        if self.delta_source is None:
            self.delta_source = self.session.delta_source
        check_delta_source(self.delta_source)
        if self.drift_mode is None:
            self.drift_mode = self.session.drift_mode
        check_drift_mode(self.drift_mode)
        check_non_negative("drift_budget", self.drift_budget)
        # Repair joins mirror the configured builder: same parent
        # policy, and the CO-RJ victim swap only when the builder itself
        # is correlation-aware — keeping repair and rebuild semantics
        # aligned per algorithm.
        self._repairer = IncrementalRepairer(
            policy=self.builder.parent_policy,
            use_swap=isinstance(self.builder, CorrelatedRandomJoinBuilder),
        )

    # -- registration ------------------------------------------------------------

    def register_advertisement(self, advertisement: Advertisement) -> bool:
        """Record which streams a site publishes.

        Registration is dirty-tracked: re-registering an identical
        payload is skipped (no re-validation, no state write) and
        returns False, so control planes that re-report every round pay
        only for actual changes.
        """
        self._check_site(advertisement.site)
        if self._advertised.get(advertisement.site) == advertisement.streams:
            self._registrations_skipped += 1
            return False
        for stream in advertisement.streams:
            if stream not in self.session.registry:
                raise ProtocolError(
                    f"site {advertisement.site} advertises unknown stream {stream}"
                )
        before = self._advertised.get(advertisement.site, ())
        self._advertised[advertisement.site] = advertisement.streams
        self._index_advertised(set(before), set(advertisement.streams))
        self._registrations_applied += 1
        return True

    def register_subscription(self, subscription: SiteSubscription) -> bool:
        """Record a site's aggregated subscription (replaces previous).

        Dirty-tracked like :meth:`register_advertisement`: an unchanged
        payload is skipped and returns False.
        """
        self._check_site(subscription.site)
        if self._subscriptions.get(subscription.site) == subscription.streams:
            self._registrations_skipped += 1
            return False
        # Validate the payload up front (the same rules the workload
        # constructor enforces) so the dirty-delta assembly path — which
        # never materializes a workload — admits only well-formed state.
        for stream in subscription.streams:
            if stream.site == subscription.site:
                raise SubscriptionError(
                    f"site {subscription.site} subscribes to its own "
                    f"stream {stream}"
                )
            if not 0 <= stream.site < self.session.n_sites:
                raise SubscriptionError(
                    f"stream {stream} originates outside the session"
                )
        before = self._subscriptions.get(subscription.site, ())
        self._subscriptions[subscription.site] = subscription.streams
        self._index_subscribed(
            subscription.site, set(before), set(subscription.streams)
        )
        self._registrations_applied += 1
        return True

    def withdraw_site(self, site: int) -> None:
        """Forget a site's advertisement and subscription (leave/failure).

        Subsequent rounds build as if the site never reported: its streams
        stop being available (subscriptions to them are dropped by the
        advertisement matching in :meth:`global_workload`) and it requests
        nothing.  Idempotent.
        """
        self._check_site(site)
        advertised = self._advertised.pop(site, None)
        if advertised:
            self._index_advertised(set(advertised), set())
        subscribed = self._subscriptions.pop(site, None)
        if subscribed:
            self._index_subscribed(site, set(subscribed), set())

    def _index_advertised(
        self, before: set[StreamId], after: set[StreamId]
    ) -> None:
        """Track stream availability across an advertisement change."""
        for stream in before - after:
            count = self._available.get(stream, 0) - 1
            if count > 0:
                self._available[stream] = count
            else:
                self._available.pop(stream, None)
            self._dirty_streams.add(stream)
        for stream in after - before:
            self._available[stream] = self._available.get(stream, 0) + 1
            self._dirty_streams.add(stream)

    def _index_subscribed(
        self, site: int, before: set[StreamId], after: set[StreamId]
    ) -> None:
        """Track per-stream subscriber sets across a subscription change."""
        for stream in before - after:
            members = self._subscribers_by_stream.get(stream)
            if members is not None:
                members.discard(site)
                if not members:
                    del self._subscribers_by_stream[stream]
            self._dirty_streams.add(stream)
        for stream in after - before:
            self._subscribers_by_stream.setdefault(stream, set()).add(site)
            self._dirty_streams.add(stream)

    def _check_site(self, site: int) -> None:
        if not 0 <= site < self.session.n_sites:
            raise ProtocolError(f"unknown site {site}")

    def registered_sites(self) -> list[int]:
        """Sites with a live advertisement or subscription, sorted.

        These are the sites a directive must be pushed to — the
        event-driven service's install set for each round.
        """
        return sorted(set(self._advertised) | set(self._subscriptions))

    def is_registered(self, site: int) -> bool:
        """True while ``site`` has a live advertisement or subscription.

        The failure detector and the withdraw-dedup path probe this:
        a withdrawal for an unregistered site is redundant, and a
        heartbeat from one marks a zombie needing re-admission.
        """
        return site in self._advertised or site in self._subscriptions

    # -- crash / checkpoint / recovery --------------------------------------------

    def crash(self) -> None:
        """Drop every piece of in-memory soft state (the server died).

        Registrations, derived indices, the epoch counter, the carried
        problem/result/forest — everything a process restart would
        vaporize.  Observability counters survive (they model the
        operator's metrics pipeline, not the server's memory).
        Recovery is the inverse protocol: :meth:`restore` from a
        checkpoint for a warm start, then sites replay their soft state
        and :meth:`ensure_epoch_floor` fast-forwards past whatever
        epochs they still hold.
        """
        self._advertised.clear()
        self._subscriptions.clear()
        self._available.clear()
        self._subscribers_by_stream.clear()
        self._dirty_streams.clear()
        self._group_index.clear()
        self._epoch = 0
        self._last_problem = None
        self._last_result = None
        self._last_edges = None
        self._repairer.reset_drift()

    def checkpoint(self) -> ServerCheckpoint:
        """Snapshot the soft state a warm restart would reload."""
        return ServerCheckpoint(
            epoch=self._epoch,
            advertised=tuple(sorted(self._advertised.items())),
            subscriptions=tuple(sorted(self._subscriptions.items())),
            edges=self._last_edges,
        )

    def restore(self, snapshot: ServerCheckpoint) -> None:
        """Warm restart: reload a checkpoint into a just-crashed server.

        Registrations and the epoch counter come back; the derived
        availability/subscriber indices are rebuilt from them.  The
        dense problem and builder state are *not* checkpointed (they
        are caches), so the first post-restore round assembles from
        scratch — only post-checkpoint registration deltas then need to
        be re-collected from the sites' refresh replay.
        """
        self.crash()
        self._epoch = snapshot.epoch
        self._last_edges = snapshot.edges
        for site, streams in snapshot.advertised:
            self._advertised[site] = streams
            self._index_advertised(set(), set(streams))
        for site, streams in snapshot.subscriptions:
            self._subscriptions[site] = streams
            self._index_subscribed(site, set(), set(streams))
        # The indices above dirtied every restored stream, but with no
        # carried problem the next assembly is scratch and re-anchors
        # the diff base anyway.
        self._dirty_streams.clear()

    def ensure_epoch_floor(self, epoch: int) -> None:
        """Fast-forward the epoch counter to at least ``epoch``.

        After a cold crash the counter restarts at 0 while sites still
        hold the old incarnation's epochs — without a floor, every
        recovery directive would be discarded as stale.  The service
        calls this with the installed epoch each arriving envelope
        reports; in a crash-free run a site's epoch never exceeds the
        server's, so the call is inert there.
        """
        if epoch > self._epoch:
            self._epoch = epoch

    def soft_state_digest(self) -> str:
        """SHA-256 over the registrations — the reconstruction invariant.

        Two servers with equal digests will assemble identical
        workloads.  The crash/recovery suite pins a recovered server's
        digest equal to a never-crashed reference run's, which is the
        whole point of soft-state reconstruction.
        """
        digest = hashlib.sha256()
        for site, streams in sorted(self._advertised.items()):
            digest.update(f"A{site}:{streams!r};".encode())
        for site, streams in sorted(self._subscriptions.items()):
            digest.update(f"S{site}:{streams!r};".encode())
        return digest.hexdigest()

    # -- overlay construction ------------------------------------------------------

    def global_workload(self) -> SubscriptionWorkload:
        """Assemble the global subscription workload from the reports.

        Subscriptions to streams that were never advertised are dropped
        (the publisher is gone), mirroring broker-side matching of
        interests against advertisements.
        """
        available: set[StreamId] = set()
        for streams in self._advertised.values():
            available.update(streams)
        site_sets = {
            site: tuple(s for s in streams if s in available)
            for site, streams in self._subscriptions.items()
        }
        return SubscriptionWorkload.from_site_sets(self.session.n_sites, site_sets)

    def build_overlay(self, rng: RngStream) -> OverlayDirective:
        """Obtain the round's forest (repair or re-solve) and emit the directive.

        The first round always builds from scratch; afterwards the
        configured ``rebuild_policy`` decides whether the previous forest
        is repaired in place or the problem is re-solved, and the
        configured ``problem_assembly`` whether the round's problem is
        evolved from the previous one or re-derived from the session.
        """
        problem = self._assemble_problem()
        previous = self._last_result
        result: BuildResult | None = None
        mode = "rebuild"
        if self.rebuild_policy != "always" and previous is not None:
            repair = self._repairer.repair(previous, problem)
            if self.rebuild_policy == "incremental":
                if repair.feasible:
                    result, mode = repair.result, "repair"
            else:
                result, mode = self._guard_hybrid(repair, problem, rng)
        if result is None:
            result = self.builder.build(problem, rng)
        if mode == "rebuild":
            # Any scratch-anchored round resets the drift estimate: the
            # adopted forest *is* the from-scratch solution.
            self._repairer.reset_drift()
        if mode == "repair":
            self._repairs += 1
        else:
            self._rebuilds += 1
        self._last_mode = mode
        self._last_disruption = (
            churn_rate(previous, result) if previous is not None else None
        )
        self._last_result = result
        self._epoch += 1
        edges = tuple(sorted(result.forest.edges()))
        rejected = tuple(result.rejected)
        previous_edges = self._last_edges
        self._last_edges = edges
        if mode == "repair" and previous_edges is not None:
            # Delta directive: the repairer left most of the forest in
            # place, so ship only the adds/removes against the previous
            # epoch (the full set rides along for auditing/gap recovery).
            old_set, new_set = set(previous_edges), set(edges)
            return OverlayDirective(
                epoch=self._epoch,
                edges=edges,
                rejected=rejected,
                base_epoch=self._epoch - 1,
                added=tuple(sorted(new_set - old_set)),
                removed=tuple(sorted(old_set - new_set)),
            )
        return OverlayDirective(epoch=self._epoch, edges=edges, rejected=rejected)

    def _assemble_problem(self) -> ForestProblem:
        """Assemble the round's problem: evolve the previous one or start over.

        ``auto`` resolves to diffed assembly exactly when the rebuild
        policy is not ``"always"`` — the paper's model keeps paying the
        per-round O(N²) scratch assembly it specifies, while repair
        rounds skip it.  The first round (no previous problem) is always
        scratch.

        Diffed assembly reads its group delta per ``delta_source``:
        ``dirty`` consumes the dirty-tracked registration indices —
        O(churned streams), the global workload is never materialized —
        while ``scan`` re-walks the workload's groups like PR 5 did.
        Both are digest-pinned bit-identical.
        """
        mode = self.problem_assembly
        if mode == "auto":
            mode = "scratch" if self.rebuild_policy == "always" else "diffed"
        previous = self._last_problem
        if mode == "diffed" and previous is not None:
            if self.delta_source == "dirty":
                delta = self._consume_dirty_delta()
                problem = ForestProblem.evolve_delta(previous, delta)
                self._patch_group_index(delta)
            else:
                problem = ForestProblem.evolve(previous, self.global_workload())
                self._reset_group_index(problem)
            self._assemblies_diffed += 1
            self._last_assembly = "diffed"
        else:
            problem = ForestProblem.from_workload(
                self.session, self.global_workload(), self.latency_bound_ms
            )
            self._reset_group_index(problem)
            self._assemblies_scratch += 1
            self._last_assembly = "scratch"
        self._last_problem = problem
        return problem

    def _consume_dirty_delta(self) -> ProblemDelta:
        """Derive the round's group delta from the dirty stream set.

        For each dirty stream the *effective* group (its subscriber set,
        provided the stream is still advertised and requested by anyone)
        is compared against the last assembled problem's group; streams
        that ended up unchanged — withdraw-then-resubscribe races,
        re-registrations of identical payloads routed through different
        tuples — drop out.  Iteration is stream-sorted so the delta's
        category ordering matches :meth:`ProblemDelta.between` on the
        scan-derived group lists.
        """
        added: list[MulticastGroup] = []
        removed: list[MulticastGroup] = []
        changed: list[tuple[MulticastGroup, MulticastGroup]] = []
        index = self._group_index
        for stream in sorted(self._dirty_streams):
            old = index.get(stream)
            members = self._subscribers_by_stream.get(stream)
            live = members if (members and stream in self._available) else None
            if old is None:
                if live:
                    added.append(
                        MulticastGroup(stream=stream, subscribers=frozenset(live))
                    )
            elif live is None:
                removed.append(old)
            elif old.subscribers != live:
                changed.append(
                    (old, MulticastGroup(stream=stream, subscribers=frozenset(live)))
                )
        self._dirty_streams.clear()
        return ProblemDelta(
            added=tuple(added), removed=tuple(removed), changed=tuple(changed)
        )

    def _patch_group_index(self, delta: ProblemDelta) -> None:
        """Advance the diff base by the delta just applied (O(churn))."""
        index = self._group_index
        for group in delta.removed:
            del index[group.stream]
        for _old, group in delta.changed:
            index[group.stream] = group
        for group in delta.added:
            index[group.stream] = group

    def _reset_group_index(self, problem: ForestProblem) -> None:
        """Re-anchor the diff base on a freshly scanned/assembled problem."""
        self._group_index = {group.stream: group for group in problem.groups}
        self._dirty_streams.clear()

    def _guard_hybrid(
        self, repair, problem: ForestProblem, rng: RngStream
    ) -> tuple[BuildResult | None, str]:
        """Hybrid adoption: quality-guard the repair against scratch.

        ``measure`` mode solves from scratch every round and compares
        directly (the original guard).  ``estimate`` mode skips the
        scratch solve while the repair is feasible, rejection-free and
        the accumulated repair-delta estimate stays inside the drift
        budget; otherwise it *verifies*: solves from scratch under the
        same ``"scratch"`` RNG label — spawning is stateless, so skipped
        rounds leave every other draw untouched and a verification round
        is bit-identical to a measured round — and applies the real
        guard.  A verification that keeps the repair re-anchors the
        estimate on the drift it actually measured.
        """
        if self.drift_mode == "estimate" and repair.feasible:
            if (
                not repair.result.rejected
                and self._repairer.drift_estimate <= self.drift_budget
            ):
                return repair.result, "repair"
            self._verifications += 1
        scratch = self.builder.build(problem, rng.spawn("scratch"))
        if repair.feasible and self._within_budget(repair.result, scratch):
            scratch_cost = overlay_cost(scratch)
            measured = (
                overlay_cost(repair.result) / scratch_cost - 1.0
                if scratch_cost > 0.0
                else 0.0
            )
            self._repairer.reset_drift(max(0.0, measured))
            return repair.result, "repair"
        return scratch, "rebuild"

    def _within_budget(self, repaired: BuildResult, scratch: BuildResult) -> bool:
        """Hybrid adoption rule: no extra rejections, bounded cost drift."""
        if len(repaired.rejected) > len(scratch.rejected):
            return False
        budget = overlay_cost(scratch) * (1.0 + self.drift_budget)
        return overlay_cost(repaired) <= budget + 1e-9

    # -- inspection ---------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Number of control rounds completed."""
        return self._epoch

    @property
    def last_result(self) -> BuildResult | None:
        """The most recent build result (None before the first round)."""
        return self._last_result

    @property
    def repairs(self) -> int:
        """Rounds served by incremental repair."""
        return self._repairs

    @property
    def rebuilds(self) -> int:
        """Rounds served by a from-scratch rebuild."""
        return self._rebuilds

    @property
    def last_mode(self) -> str | None:
        """``"repair"`` or ``"rebuild"`` for the latest round (None before)."""
        return self._last_mode

    @property
    def assemblies_diffed(self) -> int:
        """Rounds whose problem was evolved from the previous round's."""
        return self._assemblies_diffed

    @property
    def assemblies_scratch(self) -> int:
        """Rounds whose problem was re-derived from the session."""
        return self._assemblies_scratch

    @property
    def last_assembly(self) -> str | None:
        """``"diffed"`` or ``"scratch"`` for the latest round (None before)."""
        return self._last_assembly

    @property
    def registrations_applied(self) -> int:
        """Registrations that actually changed server state."""
        return self._registrations_applied

    @property
    def registrations_skipped(self) -> int:
        """Re-registrations skipped because the payload was unchanged."""
        return self._registrations_skipped

    @property
    def verifications(self) -> int:
        """Estimator-triggered scratch verifications (hybrid "estimate")."""
        return self._verifications

    @property
    def drift_estimate(self) -> float:
        """The repairer's accumulated drift estimate since its last anchor."""
        return self._repairer.drift_estimate

    @property
    def last_disruption(self) -> float | None:
        """Fraction of surviving requests whose parent moved last round.

        ``None`` for the first round (nothing to compare against).
        """
        return self._last_disruption
