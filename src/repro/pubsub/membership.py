"""The centralized membership server (Sec. 3.2).

3DTI sessions are small-to-medium sized, so the paper takes the
centralized approach for simplicity: every RP reports its aggregated
subscription, the server assembles the global subscription workload,
solves the overlay construction problem with a pluggable builder, and
dictates the resulting forest to all RPs as an :class:`OverlayDirective`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.core.base import BuildResult, OverlayBuilder
from repro.core.problem import ForestProblem
from repro.pubsub.messages import Advertisement, OverlayDirective, SiteSubscription
from repro.session.session import TISession
from repro.session.streams import StreamId
from repro.util.rng import RngStream
from repro.workload.spec import SubscriptionWorkload


@dataclass
class MembershipServer:
    """Collects subscriptions, solves the overlay, emits directives."""

    session: TISession
    builder: OverlayBuilder
    latency_bound_ms: float = 120.0
    _advertised: dict[int, tuple[StreamId, ...]] = field(default_factory=dict)
    _subscriptions: dict[int, tuple[StreamId, ...]] = field(default_factory=dict)
    _epoch: int = 0
    _last_result: BuildResult | None = None

    # -- registration ------------------------------------------------------------

    def register_advertisement(self, advertisement: Advertisement) -> None:
        """Record which streams a site publishes."""
        self._check_site(advertisement.site)
        for stream in advertisement.streams:
            if stream not in self.session.registry:
                raise ProtocolError(
                    f"site {advertisement.site} advertises unknown stream {stream}"
                )
        self._advertised[advertisement.site] = advertisement.streams

    def register_subscription(self, subscription: SiteSubscription) -> None:
        """Record a site's aggregated subscription (replaces previous)."""
        self._check_site(subscription.site)
        self._subscriptions[subscription.site] = subscription.streams

    def withdraw_site(self, site: int) -> None:
        """Forget a site's advertisement and subscription (leave/failure).

        Subsequent rounds build as if the site never reported: its streams
        stop being available (subscriptions to them are dropped by the
        advertisement matching in :meth:`global_workload`) and it requests
        nothing.  Idempotent.
        """
        self._check_site(site)
        self._advertised.pop(site, None)
        self._subscriptions.pop(site, None)

    def _check_site(self, site: int) -> None:
        if not 0 <= site < self.session.n_sites:
            raise ProtocolError(f"unknown site {site}")

    # -- overlay construction ------------------------------------------------------

    def global_workload(self) -> SubscriptionWorkload:
        """Assemble the global subscription workload from the reports.

        Subscriptions to streams that were never advertised are dropped
        (the publisher is gone), mirroring broker-side matching of
        interests against advertisements.
        """
        available: set[StreamId] = set()
        for streams in self._advertised.values():
            available.update(streams)
        site_sets = {
            site: tuple(s for s in streams if s in available)
            for site, streams in self._subscriptions.items()
        }
        return SubscriptionWorkload.from_site_sets(self.session.n_sites, site_sets)

    def build_overlay(self, rng: RngStream) -> OverlayDirective:
        """Solve the forest problem and emit the next directive."""
        workload = self.global_workload()
        problem = ForestProblem.from_workload(
            self.session, workload, self.latency_bound_ms
        )
        result = self.builder.build(problem, rng)
        self._last_result = result
        self._epoch += 1
        edges = tuple(sorted(result.forest.edges()))
        rejected = tuple(result.rejected)
        return OverlayDirective(epoch=self._epoch, edges=edges, rejected=rejected)

    # -- inspection ---------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Number of control rounds completed."""
        return self._epoch

    @property
    def last_result(self) -> BuildResult | None:
        """The most recent build result (None before the first round)."""
        return self._last_result
