"""The centralized membership server (Sec. 3.2).

3DTI sessions are small-to-medium sized, so the paper takes the
centralized approach for simplicity: every RP reports its aggregated
subscription, the server assembles the global subscription workload,
solves the overlay construction problem with a pluggable builder, and
dictates the resulting forest to all RPs as an :class:`OverlayDirective`.

The server's ``rebuild_policy`` decides how each round's overlay is
obtained (see :mod:`repro.core.incremental`): ``"always"`` re-solves
from scratch (the paper's model); ``"incremental"`` repairs the previous
round's forest and only re-solves when the repair is infeasible;
``"hybrid"`` repairs but adopts the repair only while it stays within
``drift_budget`` of the from-scratch solution.  Per-round disruption
(:func:`~repro.core.incremental.churn_rate` against the previous round)
and repair-vs-rebuild counts are tracked for reporting.

Orthogonally, ``problem_assembly`` decides how each round's
:class:`~repro.core.problem.ForestProblem` is *assembled* before any
overlay work happens: ``"scratch"`` re-derives the dense O(N²)
cost/limit tables from the session every round, while ``"diffed"``
evolves the previous round's problem
(:meth:`~repro.core.problem.ForestProblem.evolve`), carrying the dense
matrix across rounds and patching only the groups the workload diff
touched.  ``"auto"`` (the default) uses diffed assembly whenever the
rebuild policy is not ``"always"`` — so incremental rounds stop paying
the per-round O(N²) the paper's always-rebuild model pays.  Diffed and
scratch assembly are equivalent (bit-identical build results); per-mode
counts are tracked for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.core.base import BuildResult, OverlayBuilder
from repro.core.correlation import CorrelatedRandomJoinBuilder
from repro.core.incremental import (
    DEFAULT_DRIFT_BUDGET,
    IncrementalRepairer,
    churn_rate,
    overlay_cost,
    validate_rebuild_policy,
)
from repro.core.problem import ForestProblem
from repro.pubsub.messages import Advertisement, OverlayDirective, SiteSubscription
from repro.session.session import TISession
from repro.session.streams import StreamId
from repro.util.rng import RngStream
from repro.util.validation import check_assembly_policy, check_non_negative
from repro.workload.spec import SubscriptionWorkload


@dataclass
class MembershipServer:
    """Collects subscriptions, solves the overlay, emits directives."""

    session: TISession
    builder: OverlayBuilder
    latency_bound_ms: float = 120.0
    #: Overlay maintenance policy; ``None`` adopts the session's default.
    rebuild_policy: str | None = None
    #: Per-round problem assembly ("auto" | "diffed" | "scratch");
    #: ``None`` adopts the session's default.
    problem_assembly: str | None = None
    #: Hybrid-mode quality budget: the repaired forest may cost at most
    #: ``(1 + drift_budget)`` times the scratch solution of the round.
    drift_budget: float = DEFAULT_DRIFT_BUDGET
    _advertised: dict[int, tuple[StreamId, ...]] = field(default_factory=dict)
    _subscriptions: dict[int, tuple[StreamId, ...]] = field(default_factory=dict)
    _epoch: int = 0
    _last_problem: ForestProblem | None = None
    _last_result: BuildResult | None = None
    _last_edges: tuple | None = None
    _repairs: int = 0
    _rebuilds: int = 0
    _assemblies_diffed: int = 0
    _assemblies_scratch: int = 0
    _last_assembly: str | None = None
    _last_disruption: float | None = None
    _last_mode: str | None = None
    _registrations_applied: int = 0
    _registrations_skipped: int = 0

    def __post_init__(self) -> None:
        if self.rebuild_policy is None:
            self.rebuild_policy = self.session.rebuild_policy
        validate_rebuild_policy(self.rebuild_policy)
        if self.problem_assembly is None:
            self.problem_assembly = self.session.problem_assembly
        check_assembly_policy(self.problem_assembly)
        check_non_negative("drift_budget", self.drift_budget)
        # Repair joins mirror the configured builder: same parent
        # policy, and the CO-RJ victim swap only when the builder itself
        # is correlation-aware — keeping repair and rebuild semantics
        # aligned per algorithm.
        self._repairer = IncrementalRepairer(
            policy=self.builder.parent_policy,
            use_swap=isinstance(self.builder, CorrelatedRandomJoinBuilder),
        )

    # -- registration ------------------------------------------------------------

    def register_advertisement(self, advertisement: Advertisement) -> bool:
        """Record which streams a site publishes.

        Registration is dirty-tracked: re-registering an identical
        payload is skipped (no re-validation, no state write) and
        returns False, so control planes that re-report every round pay
        only for actual changes.
        """
        self._check_site(advertisement.site)
        if self._advertised.get(advertisement.site) == advertisement.streams:
            self._registrations_skipped += 1
            return False
        for stream in advertisement.streams:
            if stream not in self.session.registry:
                raise ProtocolError(
                    f"site {advertisement.site} advertises unknown stream {stream}"
                )
        self._advertised[advertisement.site] = advertisement.streams
        self._registrations_applied += 1
        return True

    def register_subscription(self, subscription: SiteSubscription) -> bool:
        """Record a site's aggregated subscription (replaces previous).

        Dirty-tracked like :meth:`register_advertisement`: an unchanged
        payload is skipped and returns False.
        """
        self._check_site(subscription.site)
        if self._subscriptions.get(subscription.site) == subscription.streams:
            self._registrations_skipped += 1
            return False
        self._subscriptions[subscription.site] = subscription.streams
        self._registrations_applied += 1
        return True

    def withdraw_site(self, site: int) -> None:
        """Forget a site's advertisement and subscription (leave/failure).

        Subsequent rounds build as if the site never reported: its streams
        stop being available (subscriptions to them are dropped by the
        advertisement matching in :meth:`global_workload`) and it requests
        nothing.  Idempotent.
        """
        self._check_site(site)
        self._advertised.pop(site, None)
        self._subscriptions.pop(site, None)

    def _check_site(self, site: int) -> None:
        if not 0 <= site < self.session.n_sites:
            raise ProtocolError(f"unknown site {site}")

    def registered_sites(self) -> list[int]:
        """Sites with a live advertisement or subscription, sorted.

        These are the sites a directive must be pushed to — the
        event-driven service's install set for each round.
        """
        return sorted(set(self._advertised) | set(self._subscriptions))

    def is_registered(self, site: int) -> bool:
        """True while ``site`` has a live advertisement or subscription.

        The failure detector and the withdraw-dedup path probe this:
        a withdrawal for an unregistered site is redundant, and a
        heartbeat from one marks a zombie needing re-admission.
        """
        return site in self._advertised or site in self._subscriptions

    # -- overlay construction ------------------------------------------------------

    def global_workload(self) -> SubscriptionWorkload:
        """Assemble the global subscription workload from the reports.

        Subscriptions to streams that were never advertised are dropped
        (the publisher is gone), mirroring broker-side matching of
        interests against advertisements.
        """
        available: set[StreamId] = set()
        for streams in self._advertised.values():
            available.update(streams)
        site_sets = {
            site: tuple(s for s in streams if s in available)
            for site, streams in self._subscriptions.items()
        }
        return SubscriptionWorkload.from_site_sets(self.session.n_sites, site_sets)

    def build_overlay(self, rng: RngStream) -> OverlayDirective:
        """Obtain the round's forest (repair or re-solve) and emit the directive.

        The first round always builds from scratch; afterwards the
        configured ``rebuild_policy`` decides whether the previous forest
        is repaired in place or the problem is re-solved, and the
        configured ``problem_assembly`` whether the round's problem is
        evolved from the previous one or re-derived from the session.
        """
        workload = self.global_workload()
        problem = self._assemble_problem(workload)
        previous = self._last_result
        result: BuildResult | None = None
        mode = "rebuild"
        if self.rebuild_policy != "always" and previous is not None:
            repair = self._repairer.repair(previous, problem)
            if self.rebuild_policy == "incremental":
                if repair.feasible:
                    result, mode = repair.result, "repair"
            else:  # hybrid: quality-guard the repair against scratch
                scratch = self.builder.build(problem, rng.spawn("scratch"))
                if repair.feasible and self._within_budget(repair.result, scratch):
                    result, mode = repair.result, "repair"
                else:
                    result = scratch
        if result is None:
            result = self.builder.build(problem, rng)
        if mode == "repair":
            self._repairs += 1
        else:
            self._rebuilds += 1
        self._last_mode = mode
        self._last_disruption = (
            churn_rate(previous, result) if previous is not None else None
        )
        self._last_result = result
        self._epoch += 1
        edges = tuple(sorted(result.forest.edges()))
        rejected = tuple(result.rejected)
        previous_edges = self._last_edges
        self._last_edges = edges
        if mode == "repair" and previous_edges is not None:
            # Delta directive: the repairer left most of the forest in
            # place, so ship only the adds/removes against the previous
            # epoch (the full set rides along for auditing/gap recovery).
            old_set, new_set = set(previous_edges), set(edges)
            return OverlayDirective(
                epoch=self._epoch,
                edges=edges,
                rejected=rejected,
                base_epoch=self._epoch - 1,
                added=tuple(sorted(new_set - old_set)),
                removed=tuple(sorted(old_set - new_set)),
            )
        return OverlayDirective(epoch=self._epoch, edges=edges, rejected=rejected)

    def _assemble_problem(self, workload: SubscriptionWorkload) -> ForestProblem:
        """Assemble the round's problem: evolve the previous one or start over.

        ``auto`` resolves to diffed assembly exactly when the rebuild
        policy is not ``"always"`` — the paper's model keeps paying the
        per-round O(N²) scratch assembly it specifies, while repair
        rounds skip it.  The first round (no previous problem) is always
        scratch.
        """
        mode = self.problem_assembly
        if mode == "auto":
            mode = "scratch" if self.rebuild_policy == "always" else "diffed"
        previous = self._last_problem
        if mode == "diffed" and previous is not None:
            problem = ForestProblem.evolve(previous, workload)
            self._assemblies_diffed += 1
            self._last_assembly = "diffed"
        else:
            problem = ForestProblem.from_workload(
                self.session, workload, self.latency_bound_ms
            )
            self._assemblies_scratch += 1
            self._last_assembly = "scratch"
        self._last_problem = problem
        return problem

    def _within_budget(self, repaired: BuildResult, scratch: BuildResult) -> bool:
        """Hybrid adoption rule: no extra rejections, bounded cost drift."""
        if len(repaired.rejected) > len(scratch.rejected):
            return False
        budget = overlay_cost(scratch) * (1.0 + self.drift_budget)
        return overlay_cost(repaired) <= budget + 1e-9

    # -- inspection ---------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Number of control rounds completed."""
        return self._epoch

    @property
    def last_result(self) -> BuildResult | None:
        """The most recent build result (None before the first round)."""
        return self._last_result

    @property
    def repairs(self) -> int:
        """Rounds served by incremental repair."""
        return self._repairs

    @property
    def rebuilds(self) -> int:
        """Rounds served by a from-scratch rebuild."""
        return self._rebuilds

    @property
    def last_mode(self) -> str | None:
        """``"repair"`` or ``"rebuild"`` for the latest round (None before)."""
        return self._last_mode

    @property
    def assemblies_diffed(self) -> int:
        """Rounds whose problem was evolved from the previous round's."""
        return self._assemblies_diffed

    @property
    def assemblies_scratch(self) -> int:
        """Rounds whose problem was re-derived from the session."""
        return self._assemblies_scratch

    @property
    def last_assembly(self) -> str | None:
        """``"diffed"`` or ``"scratch"`` for the latest round (None before)."""
        return self._last_assembly

    @property
    def registrations_applied(self) -> int:
        """Registrations that actually changed server state."""
        return self._registrations_applied

    @property
    def registrations_skipped(self) -> int:
        """Re-registrations skipped because the payload was unchanged."""
        return self._registrations_skipped

    @property
    def last_disruption(self) -> float | None:
        """Fraction of surviving requests whose parent moved last round.

        ``None`` for the first round (nothing to compare against).
        """
        return self._last_disruption
