"""End-to-end pub-sub façade: displays -> RPs -> server -> forwarding tables.

:class:`PubSubSystem` wires one :class:`~repro.pubsub.rp.RPAgent` per
site to a :class:`~repro.pubsub.membership.MembershipServer` and runs
complete control rounds.  Display subscriptions can be given either as
explicit stream sets or as geometric FOVs resolved through the ViewCast
selector — the two subscription forms of Sec. 3.2.

Rounds are synchronous here (the paper's model);
:meth:`PubSubSystem.async_service` lifts the same server and RPs onto a
simulator as an event-driven :class:`~repro.pubsub.service.MembershipService`
when control latency, debouncing and overlapping rounds matter.
Registration is dirty-tracked server-side, so the per-round full
re-report below only costs on sites whose state actually changed
(see ``MembershipServer.registrations_applied`` / ``_skipped``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.core.base import BuildResult, OverlayBuilder
from repro.fov.viewcast import ViewCastSelector
from repro.fov.viewpoint import FieldOfView
from repro.pubsub.membership import MembershipServer
from repro.pubsub.messages import DisplaySubscription, OverlayDirective
from repro.pubsub.rp import RPAgent
from repro.session.session import TISession
from repro.session.streams import StreamId
from repro.util.rng import RngStream


@dataclass
class PubSubSystem:
    """One control-plane instance over a session."""

    session: TISession
    builder: OverlayBuilder
    latency_bound_ms: float = 120.0
    #: Overlay maintenance policy; ``None`` adopts the session's default.
    rebuild_policy: str | None = None
    #: Per-round problem assembly ("auto" | "diffed" | "scratch");
    #: ``None`` adopts the session's default.
    problem_assembly: str | None = None
    #: Group-delta source for diffed assembly ("dirty" | "scan");
    #: ``None`` adopts the session's default.
    delta_source: str | None = None
    #: Hybrid drift mode ("estimate" | "measure"); ``None`` adopts the
    #: session's default.
    drift_mode: str | None = None
    rps: dict[int, RPAgent] = field(default_factory=dict)
    server: MembershipServer = field(init=False)

    def __post_init__(self) -> None:
        if not self.rps:
            self.rps = {
                site.index: RPAgent(site) for site in self.session.sites
            }
        self.server = MembershipServer(
            session=self.session,
            builder=self.builder,
            latency_bound_ms=self.latency_bound_ms,
            rebuild_policy=self.rebuild_policy,
            problem_assembly=self.problem_assembly,
            delta_source=self.delta_source,
            drift_mode=self.drift_mode,
        )

    # -- subscription entry points --------------------------------------------------

    def subscribe_display(
        self, site: int, display_id: str, streams: list[StreamId]
    ) -> None:
        """Explicit-subset subscription for one display."""
        rp = self._rp(site)
        rp.submit_display_subscription(
            DisplaySubscription(
                display_id=display_id, site=site, streams=tuple(sorted(streams))
            )
        )

    def subscribe_display_fov(
        self,
        site: int,
        display_id: str,
        fov: FieldOfView,
        target_site: int,
        max_streams: int = 4,
    ) -> list[StreamId]:
        """FOV subscription: resolve ``fov`` against ``target_site``'s cameras.

        Returns the resolved stream subset (also installed at the RP).
        """
        target = self.session.site(target_site)
        if target_site == site:
            raise ProtocolError(f"site {site} cannot aim an FOV at itself")
        poses = {
            camera.stream_id: camera.pose
            for camera in target.cameras
            if camera.pose is not None
        }
        if not poses:
            raise ProtocolError(f"site {target_site} has no camera poses")
        selector = ViewCastSelector(camera_poses=poses, max_streams=max_streams)
        streams = selector.select(fov)
        self.subscribe_display(site, display_id, streams)
        return streams

    # -- control round ---------------------------------------------------------------

    def run_control_round(self, rng: RngStream) -> OverlayDirective:
        """One full round: advertise, aggregate, build, install."""
        for rp in self.rps.values():
            self.server.register_advertisement(rp.advertisement())
            self.server.register_subscription(rp.aggregate_subscription())
        directive = self.server.build_overlay(rng)
        for rp in self.rps.values():
            rp.apply_directive(directive)
        return directive

    # -- event-driven control ----------------------------------------------------------

    def async_service(
        self,
        sim,
        build_rng: RngStream,
        control_delay_ms: float | None = None,
        debounce_ms: float | None = None,
        site_delays: dict[int, float] | None = None,
        auditor=None,
        faults=None,
        chaos_rng: RngStream | None = None,
        heartbeat_ms: float | None = None,
        miss_threshold: int | None = None,
        retransmit_timeout_ms: float | None = None,
        phi_threshold: float | None = None,
        checkpoint_interval_ms: float | None = None,
        server_failover: bool | None = None,
    ):
        """Attach this system's server and RPs to an event-driven service.

        Returns a :class:`~repro.pubsub.service.MembershipService` on
        ``sim``; delay/debounce — and the chaos knobs (fault model,
        heartbeat detection, retransmission) — default to the session's
        values.  The synchronous :meth:`run_control_round` and the
        service share one server, so don't interleave the two control
        styles in one run.
        """
        from repro.pubsub.service import MembershipService

        return MembershipService(
            sim=sim,
            server=self.server,
            rps=self.rps,
            build_rng=build_rng,
            control_delay_ms=control_delay_ms,
            debounce_ms=debounce_ms,
            site_delays=site_delays,
            auditor=auditor,
            faults=faults,
            chaos_rng=chaos_rng,
            heartbeat_ms=heartbeat_ms,
            miss_threshold=miss_threshold,
            retransmit_timeout_ms=retransmit_timeout_ms,
            phi_threshold=phi_threshold,
            checkpoint_interval_ms=checkpoint_interval_ms,
            server_failover=server_failover,
        )

    # -- inspection --------------------------------------------------------------------

    def _rp(self, site: int) -> RPAgent:
        try:
            return self.rps[site]
        except KeyError:
            raise ProtocolError(f"unknown site {site}") from None

    @property
    def last_result(self) -> BuildResult | None:
        """The build result behind the most recent directive."""
        return self.server.last_result

    def satisfaction_report(self) -> dict[int, float]:
        """Per-site fraction of the aggregated subscription being received."""
        return {
            site: rp.satisfied_fraction() for site, rp in sorted(self.rps.items())
        }
