"""The rendezvous-point agent.

Within a site the RP forms a star network to the cameras and displays:
it collects all local streams for publication and receives all streams
intended for local participants (Sec. 3.1).  This agent implements the
control-plane half of that role — subscription aggregation and the
forwarding table — which the data-plane simulator then executes.
"""

from __future__ import annotations

from repro.errors import ProtocolError
from repro.pubsub.messages import (
    Advertisement,
    DisplaySubscription,
    OverlayDirective,
    SiteSubscription,
)
from repro.session.entities import Site
from repro.session.streams import StreamId


class RPAgent:
    """Control-plane state machine of one site's rendezvous point."""

    def __init__(self, site: Site) -> None:
        self.site = site
        self._display_subs: dict[str, tuple[StreamId, ...]] = {}
        self._forwarding: dict[StreamId, list[int]] = {}
        self._receiving: set[StreamId] = set()
        self._epoch = -1

    # -- local star: displays ------------------------------------------------------

    def submit_display_subscription(self, subscription: DisplaySubscription) -> None:
        """Accept a display's stream set; replaces any previous one."""
        if subscription.site != self.site.index:
            raise ProtocolError(
                f"display {subscription.display_id} belongs to site "
                f"{subscription.site}, not {self.site.index}"
            )
        known = {display.display_id for display in self.site.displays}
        if subscription.display_id not in known:
            raise ProtocolError(
                f"unknown display {subscription.display_id!r} at site "
                f"{self.site.index}"
            )
        self._display_subs[subscription.display_id] = subscription.streams

    def clear_display_subscription(self, display_id: str) -> None:
        """Drop a display's subscription (display switched off)."""
        self._display_subs.pop(display_id, None)

    def aggregate_subscription(self) -> SiteSubscription:
        """Union of the local displays' subscriptions (Sec. 3.2).

        "Each RP requests only those streams that are subscribed by at
        least one of its local displays."
        """
        union: set[StreamId] = set()
        for streams in self._display_subs.values():
            union.update(streams)
        return SiteSubscription(
            site=self.site.index, streams=tuple(sorted(union))
        )

    # -- local star: cameras ---------------------------------------------------------

    def advertisement(self) -> Advertisement:
        """Advertise the streams the local camera array publishes."""
        return Advertisement(
            site=self.site.index, streams=tuple(sorted(self.site.stream_ids))
        )

    # -- overlay directive -----------------------------------------------------------

    def apply_directive(
        self, directive: OverlayDirective, supersede: bool = False
    ) -> None:
        """Install the forwarding table dictated by the membership server.

        A delta directive whose ``base_epoch`` matches the installed
        epoch is applied incrementally — only the added/removed edges
        touch the tables.  On an epoch gap (this RP missed a round, or
        never installed one) the full edge set is installed instead.

        ``supersede`` bypasses the monotonic-epoch guard and forces a
        full install: a restarted membership server may re-number epochs
        its dead predecessor already used, so its directives order by
        incarnation, not by epoch — and the delta base chain of the old
        incarnation is meaningless to the new one.
        """
        if not supersede and directive.epoch <= self._epoch:
            raise ProtocolError(
                f"stale directive epoch {directive.epoch} at site "
                f"{self.site.index} (current {self._epoch})"
            )
        if not supersede and directive.is_delta and directive.base_epoch == self._epoch:
            self._apply_delta(directive)
        else:
            forwarding: dict[StreamId, list[int]] = {}
            for stream, child in directive.edges_of_site(self.site.index):
                forwarding.setdefault(stream, []).append(child)
            self._forwarding = forwarding
            self._receiving = directive.streams_received_by(self.site.index)
        self._epoch = directive.epoch

    def _apply_delta(self, directive: OverlayDirective) -> None:
        """Patch the installed tables with the directive's edge delta.

        Removals run first so a parent switch (remove + add of the same
        (stream, child) pair under different parents) nets out to an
        unchanged receiving set.
        """
        me = self.site.index
        for stream, parent, child in directive.removed:
            if parent == me:
                children = self._forwarding.get(stream)
                if children is None or child not in children:
                    raise ProtocolError(
                        f"delta removes unknown edge {stream}:{parent}->"
                        f"{child} at site {me}"
                    )
                children.remove(child)
                if not children:
                    del self._forwarding[stream]
            if child == me:
                self._receiving.discard(stream)
        for stream, parent, child in directive.added:
            if parent == me:
                children = self._forwarding.setdefault(stream, [])
                children.append(child)
                # Keep the child list in the order a full install yields
                # (edges are dictated sorted), so delta and full paths
                # produce identical tables.
                children.sort()
            if child == me:
                self._receiving.add(stream)

    # -- forwarding-table queries ------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Epoch of the installed directive (-1 before the first one)."""
        return self._epoch

    def next_hops(self, stream: StreamId) -> list[int]:
        """Children sites this RP must relay ``stream`` to."""
        return list(self._forwarding.get(stream, []))

    def is_receiving(self, stream: StreamId) -> bool:
        """True when some tree edge delivers ``stream`` to this site."""
        return stream in self._receiving

    def received_streams(self) -> set[StreamId]:
        """All streams delivered to this site by the current overlay."""
        return set(self._receiving)

    def displays_for(self, stream: StreamId) -> list[str]:
        """Local displays whose subscription includes ``stream``."""
        return [
            display_id
            for display_id, streams in self._display_subs.items()
            if stream in streams
        ]

    def satisfied_fraction(self) -> float:
        """Fraction of this site's aggregated subscription actually arriving."""
        wanted = set(self.aggregate_subscription().streams)
        if not wanted:
            return 1.0
        return len(wanted & self._receiving) / len(wanted)
